"""Setuptools shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` requires wheel support that is not
available offline here; `python setup.py develop` provides the same
editable install using only setuptools.  All real metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
