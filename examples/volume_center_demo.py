"""Transparent volume center: piggybacks without server cooperation.

Two legacy origin servers know nothing about volumes.  A volume center on
the path between the proxy and the origins observes the request/response
stream, builds volumes on the servers' behalf, and splices piggyback
messages into passing responses — including cross-site information when
configured with a shared store (the paper's multi-site piggybacks).

Run:  python examples/volume_center_demo.py
"""

from repro.core.filters import ProxyFilter
from repro.core.protocol import ProxyRequest, ServerResponse, OK, NOT_FOUND
from repro.proxy.proxy import PiggybackProxy, ProxyConfig
from repro.server.volume_center import TransparentVolumeCenter
from repro.volumes.sitewide import CrossHostVolumeStore


class LegacyOrigin:
    """An origin server with no piggyback support at all."""

    def __init__(self, resources: dict[str, int]):
        self.resources = resources

    def handle(self, request: ProxyRequest) -> ServerResponse:
        size = self.resources.get(request.url)
        if size is None:
            return ServerResponse(url=request.url, status=NOT_FOUND,
                                  timestamp=request.timestamp)
        return ServerResponse(url=request.url, status=OK,
                              timestamp=request.timestamp,
                              last_modified=100.0, size=size)


def main() -> None:
    news = LegacyOrigin({
        "news.example/world/today.html": 18_000,
        "news.example/world/photo.jpg": 42_000,
    })
    weather = LegacyOrigin({
        "weather.example/eu/forecast.html": 6_000,
    })
    origins = {"news.example": news, "weather.example": weather}

    # One shared cross-host store: piggybacks may mix sites that clients
    # habitually visit together.
    center = TransparentVolumeCenter(shared_store=CrossHostVolumeStore())

    def on_path(request: ProxyRequest) -> ServerResponse:
        host = request.url.split("/", 1)[0]
        response = origins[host].handle(request)
        return center.annotate(request, response)

    proxy = PiggybackProxy(on_path, ProxyConfig(name="edge-proxy",
                                                freshness_interval=600.0))

    print("morning ritual: news, photo, then the weather")
    for now, url in (
        (0.0, "news.example/world/today.html"),
        (2.0, "news.example/world/photo.jpg"),
        (10.0, "weather.example/eu/forecast.html"),
    ):
        result = proxy.handle_client_get(url, now)
        print(f"  t={now:4.0f}  {url:<36} -> {result.outcome.value}, "
              f"piggyback={result.piggyback_elements}")

    # The forecast response was annotated by the center with resources
    # from *both* hosts (they co-occur in the center's shared volume).
    print(f"\nvolume center: observed {center.stats.observed_responses} responses, "
          f"annotated {center.stats.annotated_responses}")
    print(f"proxy received {proxy.stats.piggyback_elements_received} piggyback "
          f"elements without either origin being modified")
    assert center.stats.annotated_responses > 0


if __name__ == "__main__":
    main()
