"""The Section-5 extensions working together.

A two-level proxy hierarchy in front of an origin server, with
cache-hit reporting, a popularity fallback volume, and delta-encoded
refreshes of changed resources — every future-work item the paper lists,
composed into one running system.

Run:  python examples/extensions_demo.py
"""

from repro.httpmodel.delta import delta_stats
from repro.proxy.hierarchy import build_chain
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.traces.clean import CleaningConfig, clean_trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.popularity import (
    FallbackVolumeStore,
    PopularityConfig,
    PopularityVolumeStore,
)
from repro.workloads.synth import server_log_preset


def main() -> None:
    raw, site = server_log_preset("aiusa", scale=0.15)
    trace, _ = clean_trace(raw, CleaningConfig(min_accesses=5))
    print(f"workload: {len(trace)} requests over {trace.duration / 86400:.1f} days")

    # Origin: directory volumes with a popular-resources fallback.
    resources = ResourceStore.from_site(site)
    volume_store = FallbackVolumeStore(
        DirectoryVolumeStore(DirectoryVolumeConfig(level=1)),
        PopularityVolumeStore(PopularityConfig(top_count=8)),
    )
    server = PiggybackServer(resources, volume_store)

    # Two proxy levels; the child reports its cache hits upstream.
    child, parent, boundary = build_chain(
        server.handle,
        ProxyConfig(name="regional-parent", freshness_interval=3600.0,
                    report_cache_hits=True),
        ProxyConfig(name="campus-child", freshness_interval=300.0,
                    report_cache_hits=True),
    )

    for record in trace:
        child.handle_client_get(record.url, record.timestamp)

    print("\nhierarchy funnel:")
    print(f"  client requests        {child.stats.client_requests:8d}")
    print(f"  child -> parent        {boundary.stats.requests:8d}")
    print(f"  parent -> origin       {server.stats.requests:8d}")
    print(f"  validated at parent    {boundary.stats.validated_at_parent:8d}")

    print("\npiggyback flow:")
    print(f"  origin messages        {server.stats.piggyback_messages:8d}")
    print(f"  forwarded to child     {boundary.stats.piggybacks_forwarded:8d}")
    print(f"  child freshenings      {child.coherency.stats.freshened:8d}")

    print("\nhidden demand restored by hit reporting:")
    print(f"  cache hits reported    {server.stats.reported_cache_hits:8d}")

    # Delta encoding: what a changed popular page would cost to refresh.
    hot_url = max(trace.url_counts().items(), key=lambda kv: kv[1])[0]
    size = site.resources[hot_url].size
    old = (b"<!-- v1 -->" + b"stable content " * (size // 15))[:size]
    new = old[: size // 2] + b"<!-- breaking update -->" + old[size // 2:]
    stats = delta_stats(old, new)
    print("\ndelta refresh of the hottest page "
          f"({hot_url.rsplit('/', 1)[-1]}, {stats.new_size} B):")
    print(f"  delta transfer         {stats.delta_size:8d} B "
          f"({stats.ratio:.0%} of a full transfer)")

    assert server.stats.requests < child.stats.client_requests
    assert server.stats.reported_cache_hits > 0
    assert boundary.stats.piggybacks_forwarded > 0


if __name__ == "__main__":
    main()
