"""The Section 2.3 HTTP/1.1 embedding, over real loopback sockets.

Starts an origin HTTP server (chunked responses with ``P-volume``
trailers) and a piggybacking caching proxy in front of it, then issues
client requests and prints the actual wire artifacts: the ``Piggy-filter``
request header the proxy sends and the ``P-volume`` trailer the origin
answers with — the exact exchange sketched in the paper.

Run:  python examples/wire_protocol_demo.py
"""

import itertools

from repro.core.filters import ProxyFilter
from repro.httpmodel.messages import HttpRequest
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER, format_piggy_filter
from repro.httpwire.netclient import HttpConnection, fetch_once
from repro.httpwire.netproxy import PiggybackHttpProxy
from repro.httpwire.netserver import PiggybackHttpServer
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeStore

HOST = "www.sig.com"


def fake_clock(start: float = 1_000_000.0):
    counter = itertools.count()
    return lambda: start + next(counter) * 0.5


def main() -> None:
    resources = ResourceStore()
    resources.add(f"{HOST}/mafia.html", size=4_000, last_modified=866362345.0)
    resources.add(f"{HOST}/fig1.gif", size=1_500, last_modified=866362000.0)
    resources.add(f"{HOST}/fig2.gif", size=1_200, last_modified=866362000.0)
    engine = PiggybackServer(resources, DirectoryVolumeStore())

    with PiggybackHttpServer(engine, site_host=HOST, clock=fake_clock()) as origin:
        print(f"origin server listening on {origin.address}:{origin.port}")

        # --- talk to the origin directly, as a piggyback-aware proxy would
        piggy_filter = ProxyFilter(max_elements=10)
        print("\nProxy GET request headers (paper Section 2.3):")
        print(f"  GET /mafia.html HTTP/1.1")
        print(f"  Host: {HOST}")
        print(f"  TE: chunked")
        print(f"  Piggy-filter: {format_piggy_filter(piggy_filter)}")

        with HttpConnection(origin.address, origin.port) as connection:
            for path in ("/fig1.gif", "/fig2.gif", "/mafia.html"):
                request = HttpRequest(method="GET", target=path)
                request.headers.set("Host", HOST)
                request.headers.set("TE", "chunked")
                request.headers.set(
                    "Piggy-filter", format_piggy_filter(piggy_filter)
                )
                response = connection.request(request)
                trailer = response.trailers.get(P_VOLUME_HEADER)
                print(f"\n  GET {path} -> {response.status}, "
                      f"{len(response.body)} body bytes")
                print(f"  Transfer-Encoding: {response.headers.get('Transfer-Encoding')}")
                print(f"  Trailer {P_VOLUME_HEADER}: {trailer}")

        # --- now put the caching proxy in between ------------------------
        proxy = PiggybackHttpProxy(
            origins={HOST: (origin.address, origin.port)},
            config=ProxyConfig(name="wire-proxy", freshness_interval=3600.0),
            clock=fake_clock(2_000_000.0),
        )
        with proxy:
            print(f"\ncaching proxy listening on {proxy.address}:{proxy.port}")
            for path in ("/fig1.gif", "/mafia.html", "/fig1.gif"):
                request = HttpRequest(method="GET", target=f"http://{HOST}{path}")
                response = fetch_once(proxy.address, proxy.port, request)
                print(f"  client GET {path} -> {response.status} "
                      f"[X-Cache: {response.headers.get('X-Cache')}] "
                      f"{len(response.body)} bytes")
            print(f"\nproxy piggybacks received: {proxy.engine.stats.piggybacks_received}; "
                  f"cache freshened {proxy.engine.coherency.stats.freshened} entries")


if __name__ == "__main__":
    main()
