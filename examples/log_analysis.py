"""Trace-driven evaluation workflow, end to end.

Reproduces the paper's analysis pipeline on a synthetic Sun-like log:
generate -> write/read Common Log Format -> clean (Appendix A) ->
characterize (Table 3) -> build directory and probability volumes ->
replay and compare recall/precision/size (Figures 3 vs 6-8) -> pick an
operating point.

Run:  python examples/log_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis.prediction import ReplayConfig, replay
from repro.traces.clean import CleaningConfig, clean_trace
from repro.traces.common_log import read_log, write_log
from repro.traces.stats import characterize_server_log
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.probability import (
    PairwiseConfig,
    PairwiseEstimator,
    ProbabilityVolumeStore,
    build_probability_volumes,
)
from repro.volumes.thinning import measure_effectiveness, thin_by_effectiveness
from repro.workloads.synth import server_log_preset


def main() -> None:
    # 1. Generate and round-trip through Common Log Format.
    raw, _site = server_log_preset("sun", scale=0.08)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "access.log"
        write_log(raw, path)
        loaded = read_log(path)
    print(f"wrote and re-read {len(loaded)} CLF records")

    # 2. Clean per Appendix A.
    trace, report = clean_trace(loaded, CleaningConfig(min_accesses=10))
    print(f"cleaning kept {report.kept_fraction:.1%} "
          f"({report.dropped_unpopular} unpopular records dropped)")

    # CLF lines do not carry the host, so restore it for prefix analysis.
    trace = trace.map_urls(lambda u: "www.sun.example" + u if u.startswith("/") else u)

    # 3. Characterize (Table 3 row).
    stats = characterize_server_log(trace)
    print(f"log: {stats.requests} requests, {stats.unique_resources} resources, "
          f"{stats.requests_per_source:.1f} requests/source, "
          f"top-10% share {stats.top_decile_request_share:.0%}\n")

    # 4. Evaluate volume construction schemes.
    print(f"{'scheme':<28} {'avg size':>8} {'recall':>7} {'precision':>9}")

    for level in (1, 2):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=level))
        metrics = replay(trace, store, ReplayConfig(max_elements=200, access_filter=50))
        print(f"{f'directory level {level} (f=50)':<28} "
              f"{metrics.mean_piggyback_size:>8.1f} "
              f"{metrics.fraction_predicted:>7.1%} "
              f"{metrics.true_prediction_fraction:>9.1%}")

    estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
    estimator.observe_trace(trace)
    for threshold in (0.1, 0.25):
        base = build_probability_volumes(estimator, threshold)
        effectiveness = measure_effectiveness(trace, base, window=300.0)
        thinned = thin_by_effectiveness(base, effectiveness, 0.2)
        for name, volumes in ((f"probability p_t={threshold}", base),
                              (f"  + effective 0.2", thinned)):
            metrics = replay(trace, ProbabilityVolumeStore(volumes),
                             ReplayConfig(max_elements=200))
            print(f"{name:<28} {metrics.mean_piggyback_size:>8.1f} "
                  f"{metrics.fraction_predicted:>7.1%} "
                  f"{metrics.true_prediction_fraction:>9.1%}")

    print("\nthe paper's conclusion, visible above: probability volumes with")
    print("effectiveness thinning reach directory-level recall at a fraction")
    print("of the piggyback size, with far better precision.")


if __name__ == "__main__":
    main()
