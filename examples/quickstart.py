"""Quickstart: a piggybacking server and proxy in twenty lines.

Builds a three-resource origin server with 1-level directory volumes,
puts a piggybacking proxy in front of it, and walks through the exchange
of Section 2.1: a GET returns the resource *plus* a piggyback message
naming related resources, which the proxy uses to keep its cache fresh
without extra validation traffic.

Run:  python examples/quickstart.py
"""

from repro import (
    DirectoryVolumeStore,
    PiggybackProxy,
    PiggybackServer,
    ProxyConfig,
    ResourceStore,
)


def main() -> None:
    # -- the origin server ------------------------------------------------
    resources = ResourceStore()
    resources.add("www.sig.com/papers/mafia.html", size=24_000, last_modified=100.0)
    resources.add("www.sig.com/papers/fig1.gif", size=9_000, last_modified=100.0)
    resources.add("www.sig.com/papers/fig2.gif", size=7_000, last_modified=100.0)
    server = PiggybackServer(resources, DirectoryVolumeStore())

    # -- the proxy ---------------------------------------------------------
    proxy = PiggybackProxy(
        server.handle,
        ProxyConfig(name="campus-proxy", freshness_interval=200.0),
    )

    # A first client session touches the figures, then the paper.
    print("client GETs, in order:")
    for now, url in (
        (1000.0, "www.sig.com/papers/fig1.gif"),
        (1002.0, "www.sig.com/papers/fig2.gif"),
        (1040.0, "www.sig.com/papers/mafia.html"),
    ):
        result = proxy.handle_client_get(url, now)
        print(f"  t={now:6.0f}  {url:<35} -> {result.outcome.value:<11}"
              f" piggyback={result.piggyback_elements} elements")

    # The mafia.html response piggybacked both figures (same volume),
    # pushing their expirations out to t=1240.  Without the piggyback,
    # fig1.gif would have expired at t=1200 and needed an
    # If-Modified-Since round trip; at t=1230 it is still fresh.
    result = proxy.handle_client_get("www.sig.com/papers/fig1.gif", 1230.0)
    print(f"  t=  1230  {'www.sig.com/papers/fig1.gif':<35} -> {result.outcome.value}")
    assert result.outcome.value == "cache-fresh"

    print()
    print(f"server saw {server.stats.requests} requests "
          f"({server.stats.piggyback_messages} with piggybacks, "
          f"{server.stats.piggyback_bytes} piggyback bytes)")
    print(f"proxy answered {proxy.stats.client_requests} client requests with "
          f"{proxy.stats.server_requests} server contacts "
          f"({proxy.cache.stats.fresh_hits} fresh cache hits, "
          f"{proxy.coherency.stats.freshened} piggyback freshenings)")
    assert proxy.stats.server_requests < proxy.stats.client_requests


if __name__ == "__main__":
    main()
