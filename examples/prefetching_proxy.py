"""Prefetching from piggybacks on a realistic workload (Section 4).

Generates the scaled Apache-like server log, builds probability-based
volumes thinned by effective probability (the paper's most accurate
volumes), and runs the end-to-end simulator twice — with and without
prefetching — to measure what speculation buys and what it wastes.

Run:  python examples/prefetching_proxy.py
"""

from repro.analysis.simulator import EndToEndSimulator, SimulationConfig
from repro.proxy.prefetch import PrefetchPolicy
from repro.proxy.proxy import ProxyConfig
from repro.traces.clean import CleaningConfig, clean_trace
from repro.volumes.probability import (
    PairwiseConfig,
    PairwiseEstimator,
    ProbabilityVolumeStore,
    build_probability_volumes,
)
from repro.volumes.thinning import measure_effectiveness, thin_by_effectiveness
from repro.workloads.synth import server_log_preset


def build_volumes(trace):
    """The paper's recipe: p_t=0.25, effective probability 0.2, T=300s."""
    estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
    estimator.observe_trace(trace)
    base = build_probability_volumes(estimator, 0.25)
    effectiveness = measure_effectiveness(trace, base, window=300.0)
    return thin_by_effectiveness(base, effectiveness, 0.2)


def simulate(trace, site, volumes, prefetch: bool):
    config = SimulationConfig(
        proxy=ProxyConfig(
            freshness_interval=600.0,
            prefetch=PrefetchPolicy(enabled=prefetch, max_resource_size=65_536),
        ),
    )
    simulator = EndToEndSimulator(
        site, ProbabilityVolumeStore(volumes), config,
        horizon=trace.end_time + 1.0,
    )
    return simulator, simulator.run(trace)


def main() -> None:
    raw, site = server_log_preset("apache", scale=0.25)
    trace, report = clean_trace(raw, CleaningConfig(min_accesses=10))
    print(f"workload: {len(trace)} requests, {len(trace.urls())} resources "
          f"({report.kept_fraction:.0%} of the raw log kept)")

    volumes = build_volumes(trace)
    print(f"volumes: {len(volumes)} antecedents, "
          f"{volumes.implication_count()} implications after thinning\n")

    for label, prefetch in (("baseline (no prefetch)", False), ("prefetching", True)):
        simulator, result = simulate(trace, site, volumes, prefetch)
        prefetch_stats = simulator.proxy.prefetcher.stats
        print(f"{label}:")
        print(f"  fresh cache hits   {result.fresh_hit_rate:8.1%}")
        print(f"  server contacts    {result.server_requests:8d}")
        print(f"  stale served       {result.stale_rate:8.2%}")
        if prefetch:
            print(f"  prefetches issued  {prefetch_stats.issued:8d}")
            print(f"  ... useful         {prefetch_stats.useful:8d}")
            print(f"  ... futile         {prefetch_stats.futile:8d} "
                  f"({prefetch_stats.futile_fraction:.0%})")
            print(f"  wasted bytes       {prefetch_stats.wasted_bytes:8d}")
        print()


if __name__ == "__main__":
    main()
