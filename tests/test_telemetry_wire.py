"""Wire-level telemetry: trace propagation and the metrics endpoint.

These tests drive the real socket stack — ``netclient`` →
``PiggybackHttpProxy`` → ``PiggybackHttpServer`` — with telemetry
enabled, then assert that one client request produces spans on every hop
sharing a single trace id, and that the ``/.repro/metrics`` endpoint
serves a parseable snapshot in both exposition formats.
"""

from __future__ import annotations

import itertools
import json

import pytest

import repro.telemetry as telemetry
from repro.httpmodel.messages import HttpRequest
from repro.httpwire.connbase import METRICS_PATH
from repro.httpwire.netclient import fetch_once
from repro.httpwire.netproxy import PiggybackHttpProxy
from repro.httpwire.netserver import PiggybackHttpServer
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.telemetry import TRACE_HEADER, parse_prometheus
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.tele.example"


class FakeClock:
    def __init__(self, start=1000.0):
        self._counter = itertools.count()
        self.start = start

    def __call__(self):
        return self.start + next(self._counter) * 0.5


@pytest.fixture()
def telemetry_on():
    telemetry.enable()
    telemetry.TRACER.reset()
    try:
        yield
    finally:
        telemetry.disable()


@pytest.fixture()
def origin():
    resources = ResourceStore()
    resources.add(f"{HOST}/a/page.html", size=1200, last_modified=100.0)
    resources.add(f"{HOST}/a/img.gif", size=300, last_modified=100.0)
    engine = PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )
    server = PiggybackHttpServer(engine, site_host=HOST, clock=FakeClock())
    with server:
        yield server


@pytest.fixture()
def proxy(origin):
    proxy = PiggybackHttpProxy(
        origins={HOST: (origin.address, origin.port)},
        config=ProxyConfig(name="tele-proxy", freshness_interval=3600.0),
        clock=FakeClock(start=2000.0),
    )
    with proxy:
        yield proxy


def get(target, trace_header=None):
    request = HttpRequest(method="GET", target=target)
    request.headers.set("Host", HOST)
    if trace_header is not None:
        request.headers.set(TRACE_HEADER, trace_header)
    return request


class TestTracePropagation:
    CLIENT_HEADER = "deadbeefdeadbeef-cafef00d"

    def test_trace_id_spans_client_proxy_server(self, telemetry_on, origin, proxy):
        response = fetch_once(
            proxy.address,
            proxy.port,
            get(f"http://{HOST}/a/page.html", trace_header=self.CLIENT_HEADER),
        )
        assert response.status == 200
        records = telemetry.TRACER.recent()
        by_name = {record.name: record for record in records}
        # Both wire hops (proxy and origin run in this process) plus the
        # proxy's upstream fetch are on the client's trace.
        assert "wire.request" in by_name
        assert "proxy.upstream_fetch" in by_name
        in_trace = [r for r in records if r.trace_id == "deadbeefdeadbeef"]
        names = {record.name for record in in_trace}
        assert {"wire.request", "proxy.upstream_fetch"} <= names
        # Two wire.request spans: one per hop.
        wire_spans = [r for r in in_trace if r.name == "wire.request"]
        assert len(wire_spans) == 2
        # The proxy-side wire span is parented on the client's span id.
        assert any(r.parent_id == "cafef00d" for r in wire_spans)

    def test_server_hop_parented_on_upstream_fetch(self, telemetry_on, origin, proxy):
        fetch_once(
            proxy.address,
            proxy.port,
            get(f"http://{HOST}/a/img.gif", trace_header=self.CLIENT_HEADER),
        )
        records = [
            r for r in telemetry.TRACER.recent()
            if r.trace_id == "deadbeefdeadbeef"
        ]
        upstream = next(r for r in records if r.name == "proxy.upstream_fetch")
        server_span = next(
            r for r in records
            if r.name == "wire.request" and r.parent_id == upstream.span_id
        )
        assert server_span.tags["target"] == "/a/img.gif"

    def test_requests_without_header_get_fresh_traces(self, telemetry_on, origin):
        first = fetch_once(origin.address, origin.port, get("/a/page.html"))
        second = fetch_once(origin.address, origin.port, get("/a/page.html"))
        assert first.status == second.status == 200
        wire_spans = [
            r for r in telemetry.TRACER.recent() if r.name == "wire.request"
        ]
        assert len(wire_spans) == 2
        assert wire_spans[0].trace_id != wire_spans[1].trace_id
        assert all(r.parent_id is None for r in wire_spans)

    def test_disabled_telemetry_adds_no_header_and_no_spans(self, origin, proxy):
        assert not telemetry.enabled()
        before = len(telemetry.TRACER.recent())
        response = fetch_once(
            proxy.address, proxy.port, get(f"http://{HOST}/a/page.html")
        )
        assert response.status == 200
        assert len(telemetry.TRACER.recent()) == before


class TestMetricsEndpoint:
    def test_prometheus_exposition(self, telemetry_on, origin):
        fetch_once(origin.address, origin.port, get("/a/page.html"))
        response = fetch_once(origin.address, origin.port, get(METRICS_PATH))
        assert response.status == 200
        assert response.headers.get("Content-Type", "").startswith("text/plain")
        snapshot = parse_prometheus(response.body.decode("utf-8"))
        assert snapshot.counters["wire_requests_served_total"] >= 1
        assert "wire_request_seconds" in snapshot.histograms

    def test_json_exposition_includes_spans(self, telemetry_on, origin):
        fetch_once(origin.address, origin.port, get("/a/page.html"))
        response = fetch_once(
            origin.address, origin.port, get(f"{METRICS_PATH}?format=json")
        )
        assert response.status == 200
        document = json.loads(response.body.decode("utf-8"))
        assert document["counters"]["wire_requests_served_total"] >= 1
        span_names = {span["name"] for span in document["spans"]}
        assert "wire.request" in span_names

    def test_endpoint_requests_not_traced(self, telemetry_on, origin):
        telemetry.TRACER.reset()
        fetch_once(origin.address, origin.port, get(METRICS_PATH))
        assert all(
            record.tags.get("target") != METRICS_PATH
            for record in telemetry.TRACER.recent()
        )

    def test_endpoint_works_with_telemetry_disabled(self, origin):
        assert not telemetry.enabled()
        response = fetch_once(origin.address, origin.port, get(METRICS_PATH))
        assert response.status == 200
        snapshot = parse_prometheus(response.body.decode("utf-8"))
        # Counters exist (registration always happens) but don't move.
        assert "wire_requests_served_total" in snapshot.counters


class TestProxyCacheCounters:
    def test_cache_outcomes_counted(self, telemetry_on, origin, proxy):
        before = telemetry.REGISTRY.snapshot().counters
        request_target = f"http://{HOST}/a/page.html"
        fetch_once(proxy.address, proxy.port, get(request_target))
        fetch_once(proxy.address, proxy.port, get(request_target))
        after = telemetry.REGISTRY.snapshot().counters
        assert (
            after["proxy_client_requests_total"]
            - before["proxy_client_requests_total"]
        ) == 2
        assert (
            after["proxy_cache_misses_total"] - before["proxy_cache_misses_total"]
        ) == 1
        assert (
            after["proxy_cache_fresh_hits_total"]
            - before["proxy_cache_fresh_hits_total"]
        ) >= 1
        assert (
            after["server_requests_total"] - before["server_requests_total"]
        ) == 1
