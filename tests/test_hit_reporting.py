"""Tests for proxy-to-server cache-hit reporting (Section 5 extension)."""

import pytest

from repro.core.protocol import ProxyRequest
from repro.httpmodel.piggy_codec import (
    PiggyCodecError,
    format_piggy_report,
    parse_piggy_report,
)
from repro.proxy.proxy import PiggybackProxy, ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore


def make_pair(report=True):
    resources = ResourceStore()
    resources.add("h/a/page.html", size=1000, last_modified=10.0)
    resources.add("h/a/img.gif", size=500, last_modified=10.0)
    server = PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )
    proxy = PiggybackProxy(
        server.handle,
        ProxyConfig(name="p", freshness_interval=1000.0, report_cache_hits=report),
    )
    return proxy, server


class TestReportCodec:
    def test_round_trip(self):
        report = (("h/a/x.html", 5), ("h/b y.html", 2))
        parsed = parse_piggy_report(format_piggy_report(report))
        assert parsed == report

    def test_empty_report_no_header(self):
        assert format_piggy_report(()) is None
        assert parse_piggy_report(None) == ()

    def test_malformed_values(self):
        with pytest.raises(PiggyCodecError):
            parse_piggy_report("x=1")
        with pytest.raises(PiggyCodecError):
            parse_piggy_report("r=/a|b|c")
        with pytest.raises(PiggyCodecError):
            parse_piggy_report("r=/a|not-a-number")


class TestProxySide:
    def test_hits_accumulate_and_flush_on_next_contact(self):
        proxy, server = make_pair()
        proxy.handle_client_get("h/a/page.html", now=0.0)     # fetch
        proxy.handle_client_get("h/a/page.html", now=10.0)    # fresh hit
        proxy.handle_client_get("h/a/page.html", now=20.0)    # fresh hit
        captured = []
        original = proxy.upstream

        def spying_upstream(request: ProxyRequest):
            captured.append(request.cache_hit_report)
            return original(request)

        proxy.upstream = spying_upstream
        proxy.handle_client_get("h/a/img.gif", now=30.0)      # server contact
        assert captured == [(("h/a/page.html", 2),)]

    def test_report_cleared_after_flush(self):
        proxy, server = make_pair()
        proxy.handle_client_get("h/a/page.html", now=0.0)
        proxy.handle_client_get("h/a/page.html", now=10.0)
        proxy.handle_client_get("h/a/img.gif", now=20.0)      # flush
        assert proxy._take_hit_report("h") == ()

    def test_disabled_by_default(self):
        proxy, _ = make_pair(report=False)
        proxy.handle_client_get("h/a/page.html", now=0.0)
        proxy.handle_client_get("h/a/page.html", now=10.0)
        assert proxy._take_hit_report("h") == ()

    def test_report_bounded_and_sorted_by_count(self):
        proxy, server = make_pair()
        config = ProxyConfig(name="p", freshness_interval=1e6,
                             report_cache_hits=True, max_report_entries=1)
        proxy = PiggybackProxy(server.handle, config)
        proxy.handle_client_get("h/a/page.html", now=0.0)
        proxy.handle_client_get("h/a/img.gif", now=1.0)
        for t in (10.0, 20.0, 30.0):
            proxy.handle_client_get("h/a/page.html", now=t)
        proxy.handle_client_get("h/a/img.gif", now=40.0)
        report = proxy._take_hit_report("h")
        assert report == (("h/a/page.html", 3),)


class TestServerSide:
    def test_reported_hits_feed_volume_maintenance(self):
        resources = ResourceStore()
        resources.add("h/a/hidden.html", size=100, last_modified=1.0)
        resources.add("h/a/other.html", size=100, last_modified=1.0)
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        server = PiggybackServer(resources, store)

        request = ProxyRequest(
            url="h/a/other.html", timestamp=100.0, source="p",
            cache_hit_report=(("h/a/hidden.html", 4),),
        )
        response = server.handle(request)
        assert server.stats.reported_cache_hits == 4
        # hidden.html entered the volume via the report alone, so it can
        # be piggybacked even though the server never served it directly.
        assert response.piggyback is not None
        assert "h/a/hidden.html" in response.piggyback.urls()

    def test_unknown_urls_in_report_ignored(self):
        proxy, server = make_pair()
        request = ProxyRequest(
            url="h/a/page.html", timestamp=0.0, source="p",
            cache_hit_report=(("h/elsewhere/x.html", 3), ("h/a/img.gif", 0)),
        )
        server.handle(request)
        assert server.stats.reported_cache_hits == 0

    def test_end_to_end_popularity_restoration(self):
        proxy, server = make_pair()
        # page becomes a cache hit repeatedly; without reporting the
        # server would see it exactly once.
        proxy.handle_client_get("h/a/page.html", now=0.0)
        for t in range(1, 6):
            proxy.handle_client_get("h/a/page.html", now=float(t))
        proxy.handle_client_get("h/a/img.gif", now=10.0)
        lookup = server.volume_store.lookup("h/a/img.gif").materialized()
        page = next(c for c in lookup.candidates if c.url == "h/a/page.html")
        assert page.access_count == 6  # 1 direct + 5 reported
