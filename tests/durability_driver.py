"""Subprocess driver and shared helpers for the crash-recovery chaos tests.

Run as a script, this process opens a durable state directory, observes a
deterministic stream of records (printing ``ACK <i>`` after each one is
durably applied), optionally snapshots mid-stream, and exits — unless the
``REPRO_DURABILITY_KILL`` switch the parent set SIGKILLs it first at a
precise byte offset inside a journal or snapshot write.

Imported as a module, it provides the pieces both sides share: the store
factory, the deterministic record stream, the trailer oracle (serialized
``P-volume`` bytes for every URL, computed exactly the way the serving
path does), and the subprocess runner.
"""

from __future__ import annotations

import os
import random
import subprocess
import sys
from pathlib import Path

from repro.core.filters import ProxyFilter
from repro.httpmodel.piggy_codec import format_p_volume
from repro.server.durability import DurableState
from repro.traces.records import LogRecord
from repro.volumes.base import VolumeStore
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.chaos.example"
FILTER = ProxyFilter(max_elements=10, min_access_count=2)
_SRC = Path(__file__).resolve().parents[1] / "src"


def make_store() -> DirectoryVolumeStore:
    """The store factory both the child and every oracle must share."""
    return DirectoryVolumeStore(
        DirectoryVolumeConfig(level=1, max_volume_size=6)
    )


def make_records(seed: int, count: int) -> list[LogRecord]:
    """A deterministic request stream: same (seed, count) -> same records."""
    rng = random.Random(seed)
    records = []
    for i in range(count):
        directory = rng.randrange(4)
        page = rng.randrange(8)
        extension = rng.choice(["html", "gif", "css"])
        records.append(
            LogRecord(
                timestamp=1000.0 + i,
                source=f"client{rng.randrange(3)}",
                url=f"{HOST}/d{directory}/page{page}.{extension}",
                size=500 + 97 * page,
                last_modified=900.0 + 7.0 * page,
            )
        )
    return records


def record_urls(records: list[LogRecord]) -> list[str]:
    return sorted({record.url for record in records})


def trailer_map(
    store: VolumeStore, urls: list[str], proxy_filter: ProxyFilter = FILTER
) -> dict[str, str | None]:
    """Serialized P-volume trailer per URL, via the real serving path.

    This is the differential oracle's unit of comparison: two stores are
    equivalent exactly when every URL yields bit-identical trailer bytes
    (or identically no trailer).
    """
    trailers: dict[str, str | None] = {}
    for url in urls:
        snapshot = store.snapshot_lookup(url)
        if snapshot is None:
            trailers[url] = None
            continue
        lookup, _version = snapshot
        message = proxy_filter.apply(lookup.volume_id, lookup.candidates, url)
        trailers[url] = None if message is None else format_p_volume(message)
    return trailers


def feed(store: VolumeStore, records: list[LogRecord]) -> VolumeStore:
    """Observe *records* into *store* under its lock; returns the store."""
    with store.lock:
        for record in records:
            store.observe(record)
    return store


def run_driver(
    state_dir: str | Path,
    seed: int,
    count: int,
    *,
    snapshot_at: int = -1,
    kill: str | None = None,
    timeout: float = 60.0,
) -> tuple[int, int, str]:
    """Run this module as a child process; returns (rc, acked, stdout).

    ``acked`` counts the ``ACK`` lines the child printed before exiting
    (or being killed) — every acked record was durably journaled first.
    """
    env = dict(os.environ)
    env.pop("REPRO_DURABILITY_KILL", None)
    if kill is not None:
        env["REPRO_DURABILITY_KILL"] = kill
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        str(_SRC) if not existing else str(_SRC) + os.pathsep + existing
    )
    proc = subprocess.run(
        [
            sys.executable,
            str(Path(__file__).resolve()),
            str(state_dir),
            str(seed),
            str(count),
            str(snapshot_at),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    acked = sum(
        1 for line in proc.stdout.splitlines() if line.startswith("ACK ")
    )
    return proc.returncode, acked, proc.stdout


def main(argv: list[str]) -> int:
    state_dir, seed, count, snapshot_at = (
        argv[1],
        int(argv[2]),
        int(argv[3]),
        int(argv[4]),
    )
    state = DurableState(state_dir, make_store)
    records = make_records(seed, count)
    for index, record in enumerate(records):
        with state.store.lock:
            state.store.observe(record)
        # The observe returned, so the journal append was fsynced: this
        # record survives any crash from here on.  Say so.
        print(f"ACK {index}", flush=True)
        if index == snapshot_at:
            state.snapshot_now()
            print("SNAPSHOT", flush=True)
    state.close()
    print("DONE", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
