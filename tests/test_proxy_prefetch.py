"""Unit tests for prefetch policy and usefulness accounting."""

import pytest

from repro.core.piggyback import PiggybackElement
from repro.proxy.prefetch import PrefetchEngine, PrefetchPolicy


def elements():
    return (
        PiggybackElement("h/small.html", last_modified=0.0, size=1000),
        PiggybackElement("h/big.mpg", last_modified=0.0, size=10_000_000),
        PiggybackElement("h/hot.html", last_modified=999.0, size=500),
    )


class TestPolicySelection:
    def test_size_limit(self):
        policy = PrefetchPolicy(max_resource_size=5000)
        chosen = policy.select(elements(), now=1000.0)
        assert [e.url for e in chosen] == ["h/small.html", "h/hot.html"]

    def test_recently_modified_excluded(self):
        # "The proxy may decide not to prefetch items that have a recent
        # Last-Modified time" (Section 4).
        policy = PrefetchPolicy(max_resource_size=None, min_modified_age=100.0)
        chosen = policy.select(elements(), now=1000.0)
        assert "h/hot.html" not in [e.url for e in chosen]

    def test_max_per_message(self):
        policy = PrefetchPolicy(max_resource_size=None, max_per_message=1)
        chosen = policy.select(elements(), now=1000.0)
        assert len(chosen) == 1

    def test_disabled_selects_nothing(self):
        policy = PrefetchPolicy(enabled=False)
        assert policy.select(elements(), now=0.0) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PrefetchPolicy(max_resource_size=-1)
        with pytest.raises(ValueError):
            PrefetchPolicy(min_modified_age=-1.0)


class TestEngineAccounting:
    def make_engine(self, window=100.0):
        return PrefetchEngine(
            policy=PrefetchPolicy(max_resource_size=None), usefulness_window=window
        )

    def test_useful_prefetch(self):
        engine = self.make_engine()
        selected = engine.consider((PiggybackElement("h/a", 0.0, 100),), now=0.0)
        assert [e.url for e in selected] == ["h/a"]
        assert engine.on_client_request("h/a", now=50.0)
        assert engine.stats.useful == 1
        assert engine.stats.bytes_useful == 100

    def test_futile_prefetch_expires(self):
        engine = self.make_engine(window=100.0)
        engine.consider((PiggybackElement("h/a", 0.0, 100),), now=0.0)
        assert not engine.on_client_request("h/a", now=500.0)
        assert engine.stats.futile == 1

    def test_unrelated_request_not_covered(self):
        engine = self.make_engine()
        engine.consider((PiggybackElement("h/a", 0.0, 100),), now=0.0)
        assert not engine.on_client_request("h/other", now=1.0)

    def test_duplicate_prefetch_coalesced(self):
        engine = self.make_engine()
        first = engine.consider((PiggybackElement("h/a", 0.0, 100),), now=0.0)
        second = engine.consider((PiggybackElement("h/a", 0.0, 100),), now=1.0)
        assert len(first) == 1 and len(second) == 0
        assert engine.stats.issued == 1

    def test_finalize_marks_outstanding_futile(self):
        engine = self.make_engine()
        engine.consider((PiggybackElement("h/a", 0.0, 100),
                         PiggybackElement("h/b", 0.0, 200)), now=0.0)
        engine.on_client_request("h/a", now=1.0)
        engine.finalize()
        assert engine.stats.useful == 1
        assert engine.stats.futile == 1
        assert engine.stats.futile_fraction == pytest.approx(0.5)
        assert engine.stats.wasted_bytes == 200

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            PrefetchEngine(usefulness_window=0.0)
