"""Unit tests for probability-volume persistence."""

import json

import pytest

from repro.volumes.persistence import (
    VolumeFormatError,
    load_volumes,
    save_volumes,
)
from repro.volumes.probability import ProbabilityVolumes


def sample_volumes():
    return ProbabilityVolumes(
        {
            "h/a": [("h/b", 0.9), ("h/c", 0.25)],
            "h/d": [("h/e", 0.5)],
        }
    )


class TestRoundTrip:
    def test_volumes_survive_round_trip(self, tmp_path):
        path = tmp_path / "volumes.json"
        save_volumes(sample_volumes(), path, probability_threshold=0.2,
                     window=300.0, effectiveness_threshold=0.2,
                     combine_level=None, source_log="sun")
        artifact = load_volumes(path)
        assert artifact.volumes.members_of("h/a") == [("h/b", 0.9), ("h/c", 0.25)]
        assert artifact.volumes.members_of("h/d") == [("h/e", 0.5)]
        assert artifact.probability_threshold == 0.2
        assert artifact.window == 300.0
        assert artifact.effectiveness_threshold == 0.2
        assert artifact.combine_level is None
        assert artifact.source_log == "sun"

    def test_none_parameters_preserved(self, tmp_path):
        path = tmp_path / "v.json"
        save_volumes(sample_volumes(), path, probability_threshold=0.5)
        artifact = load_volumes(path)
        assert artifact.effectiveness_threshold is None
        assert artifact.combine_level is None

    def test_empty_volumes(self, tmp_path):
        path = tmp_path / "empty.json"
        save_volumes(ProbabilityVolumes({}), path, probability_threshold=0.1)
        artifact = load_volumes(path)
        assert len(artifact.volumes) == 0

    def test_output_is_deterministic(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        save_volumes(sample_volumes(), first, probability_threshold=0.2)
        save_volumes(sample_volumes(), second, probability_threshold=0.2)
        assert first.read_text() == second.read_text()


class TestErrorHandling:
    def test_not_json(self, tmp_path):
        path = tmp_path / "bad"
        path.write_text("this is not json")
        with pytest.raises(VolumeFormatError):
            load_volumes(path)

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else", "version": 1}))
        with pytest.raises(VolumeFormatError):
            load_volumes(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "future.json"
        payload = {"format": "repro-probability-volumes", "version": 99,
                   "parameters": {}, "volumes": {}}
        path.write_text(json.dumps(payload))
        with pytest.raises(VolumeFormatError):
            load_volumes(path)

    def test_missing_parameters(self, tmp_path):
        path = tmp_path / "partial.json"
        payload = {"format": "repro-probability-volumes", "version": 1,
                   "parameters": {}, "volumes": {}}
        path.write_text(json.dumps(payload))
        with pytest.raises(VolumeFormatError):
            load_volumes(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_volumes(tmp_path / "nope.json")
