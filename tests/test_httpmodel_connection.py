"""Unit tests for the packet model and persistent-connection pool."""

import pytest

from repro.httpmodel.connection import ConnectionPool, PacketModel
from repro.httpmodel.dates import format_http_date, parse_http_date


class TestPacketModel:
    def test_packets_for_boundaries(self):
        model = PacketModel(mss=1460)
        assert model.packets_for(0) == 0
        assert model.packets_for(1) == 1
        assert model.packets_for(1460) == 1
        assert model.packets_for(1461) == 2

    def test_small_piggyback_often_free(self):
        # Section 2.3: a ~398-byte piggyback usually fits in the response's
        # final packet.
        model = PacketModel(mss=1460)
        assert model.extra_packets_for_piggyback(body_bytes=1000, piggyback_bytes=398) == 0

    def test_piggyback_can_cost_one_packet(self):
        model = PacketModel(mss=1460)
        assert model.extra_packets_for_piggyback(body_bytes=1400, piggyback_bytes=398) == 1

    def test_net_packet_change_counts_avoided_connections(self):
        model = PacketModel(mss=1460)
        # One extra packet but two avoided connections => net -3.
        change = model.net_packet_change(
            body_bytes=1400, piggyback_bytes=398, connections_avoided=2
        )
        assert change == 1 - 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            PacketModel(mss=0)
        with pytest.raises(ValueError):
            PacketModel().packets_for(-1)


class TestConnectionPool:
    def test_first_use_opens(self):
        pool = ConnectionPool(idle_timeout=60.0)
        assert not pool.acquire("a.com", now=0.0)
        assert pool.stats.opened == 1

    def test_reuse_within_timeout(self):
        pool = ConnectionPool(idle_timeout=60.0)
        pool.acquire("a.com", now=0.0)
        assert pool.acquire("a.com", now=30.0)
        assert pool.stats.reused == 1
        assert pool.stats.reuse_rate == pytest.approx(0.5)

    def test_idle_timeout_closes(self):
        pool = ConnectionPool(idle_timeout=60.0)
        pool.acquire("a.com", now=0.0)
        assert not pool.acquire("a.com", now=100.0)
        assert pool.stats.closed_idle == 1

    def test_extend_timeout_keeps_connection_warm(self):
        pool = ConnectionPool(idle_timeout=60.0)
        pool.acquire("a.com", now=0.0)
        pool.extend_timeout("a.com", now=0.0, extra=120.0)
        assert pool.acquire("a.com", now=150.0)

    def test_capacity_evicts_lru(self):
        pool = ConnectionPool(idle_timeout=1e9, max_connections=2)
        pool.acquire("a.com", now=0.0)
        pool.acquire("b.com", now=1.0)
        pool.acquire("c.com", now=2.0)
        assert len(pool) == 2
        assert pool.stats.closed_evicted == 1
        assert not pool.acquire("a.com", now=3.0)  # was evicted

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ConnectionPool(idle_timeout=0.0)
        with pytest.raises(ValueError):
            ConnectionPool(max_connections=0)
        pool = ConnectionPool()
        with pytest.raises(ValueError):
            pool.extend_timeout("a.com", 0.0, extra=-1.0)


class TestHttpDates:
    def test_round_trip(self):
        stamp = 899721000.0
        assert parse_http_date(format_http_date(stamp)) == stamp

    def test_format_is_rfc1123(self):
        assert format_http_date(899721000.0) == "Mon, 06 Jul 1998 10:30:00 GMT"

    def test_unparseable_raises(self):
        with pytest.raises(ValueError):
            parse_http_date("not a date")
