"""Unit tests for trace characterization (Tables 2 and 3)."""

import pytest

from repro.traces.records import Trace
from repro.traces.stats import (
    characterize_client_log,
    characterize_server_log,
    top_fraction_share,
)

from conftest import make_record


class TestTopFractionShare:
    def test_uniform_counts(self):
        counts = {f"u{i}": 1 for i in range(10)}
        assert top_fraction_share(counts, 0.1) == pytest.approx(0.1)

    def test_skewed_counts(self):
        counts = {"hot": 90, "a": 5, "b": 5}
        assert top_fraction_share(counts, 0.33) == pytest.approx(0.9)

    def test_empty(self):
        assert top_fraction_share({}, 0.1) == 0.0

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            top_fraction_share({"a": 1}, 0.0)
        with pytest.raises(ValueError):
            top_fraction_share({"a": 1}, 1.5)

    def test_always_at_least_one_key(self):
        counts = {"a": 10, "b": 1, "c": 1}
        # 1% of 3 keys rounds up to one key.
        assert top_fraction_share(counts, 0.01) == pytest.approx(10 / 12)


class TestServerLogStats:
    def build(self):
        records = []
        for i in range(50):
            records.append(
                make_record(i * 3600.0, "10.0.0.%d" % (i % 5),
                            "www.s.example/p%d.html" % (i % 10), size=1000)
            )
        return Trace(records)

    def test_core_counts(self):
        stats = characterize_server_log(self.build())
        assert stats.requests == 50
        assert stats.clients == 5
        assert stats.unique_resources == 10
        assert stats.requests_per_source == pytest.approx(10.0)

    def test_days_span(self):
        stats = characterize_server_log(self.build())
        assert stats.days == pytest.approx(49 * 3600.0 / 86400.0)

    def test_size_statistics(self):
        stats = characterize_server_log(self.build())
        assert stats.mean_response_size == pytest.approx(1000.0)
        assert stats.median_response_size == pytest.approx(1000.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterize_server_log(Trace([]))


class TestClientLogStats:
    def build(self):
        records = []
        for i in range(40):
            host = "www.s%d.example" % (i % 4)
            status = 304 if i % 10 == 0 else 200
            records.append(
                make_record(i * 60.0, "c%d" % (i % 3), f"{host}/p{i % 8}.html",
                            status=status, size=0 if status == 304 else 500)
            )
        return Trace(records)

    def test_core_counts(self):
        stats = characterize_client_log(self.build())
        assert stats.requests == 40
        assert stats.distinct_servers == 4

    def test_not_modified_fraction(self):
        stats = characterize_client_log(self.build())
        assert stats.not_modified_fraction == pytest.approx(4 / 40)

    def test_mean_size_ignores_empty_responses(self):
        stats = characterize_client_log(self.build())
        assert stats.mean_response_size == pytest.approx(500.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            characterize_client_log(Trace([]))
