"""Tests for online (periodic) probability-volume construction."""

import pytest

from repro.analysis.prediction import ReplayConfig, replay
from repro.traces.records import Trace
from repro.volumes.online import OnlineProbabilityVolumeStore, OnlineVolumeConfig
from repro.volumes.probability import PairwiseConfig

from conftest import make_record


def burst(source, start, urls=("h/a/p.html", "h/a/i1.gif", "h/a/i2.gif")):
    return [make_record(start + i, source, url) for i, url in enumerate(urls)]


def daily_trace(days=3, bursts_per_day=5):
    records = []
    for day in range(days):
        for burst_index in range(bursts_per_day):
            start = day * 86_400.0 + burst_index * 3_600.0
            records.extend(burst(f"s{burst_index}", start))
    return Trace(records)


def make_store(rebuild_interval=86_400.0, min_observations=0, threshold=0.5):
    return OnlineProbabilityVolumeStore(
        OnlineVolumeConfig(
            probability_threshold=threshold,
            rebuild_interval=rebuild_interval,
            pairwise=PairwiseConfig(window=300.0),
            min_observations=min_observations,
        )
    )


class TestRebuildSchedule:
    def test_no_volumes_before_first_rebuild(self):
        store = make_store()
        for record in burst("s", 0.0):
            store.observe(record)
        assert store.rebuilds == 0
        assert store.lookup("h/a/p.html") is None

    def test_rebuild_fires_after_interval(self):
        store = make_store()
        store.observe_trace(daily_trace(days=2))
        assert store.rebuilds >= 1
        lookup = store.lookup("h/a/p.html")
        assert lookup is not None
        urls = {c.url for c in lookup.candidates}
        assert urls == {"h/a/i1.gif", "h/a/i2.gif"}

    def test_rebuild_count_tracks_days(self):
        store = make_store()
        store.observe_trace(daily_trace(days=4))
        # Rebuilds happen at most once per elapsed interval.
        assert 2 <= store.rebuilds <= 4

    def test_min_observations_gate(self):
        store = make_store(min_observations=10_000)
        store.observe_trace(daily_trace(days=3))
        assert store.rebuilds == 0

    def test_quiet_period_catches_up_without_burst_rebuilds(self):
        store = make_store()
        records = burst("s", 0.0) + burst("s", 10 * 86_400.0)
        for record in Trace(records):
            store.observe(record)
        # A 10-day gap triggers one rebuild, not ten.
        assert store.rebuilds == 1

    def test_manual_rebuild(self):
        store = make_store()
        for record in burst("s", 0.0):
            store.observe(record)
        store.rebuild()
        assert store.rebuilds == 1
        assert store.lookup("h/a/p.html") is not None


class TestServing:
    def test_volume_ids_stable_across_rebuilds(self):
        store = make_store()
        store.observe_trace(daily_trace(days=2))
        first = store.lookup("h/a/p.html").volume_id
        store.rebuild()
        assert store.lookup("h/a/p.html").volume_id == first

    def test_candidates_sorted_by_probability(self):
        store = make_store(threshold=0.0)
        store.observe_trace(daily_trace(days=2))
        lookup = store.lookup("h/a/p.html")
        probabilities = [c.probability for c in lookup.candidates]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_replay_works_end_to_end(self):
        trace = daily_trace(days=3, bursts_per_day=8)
        store = make_store()
        metrics = replay(trace, store, ReplayConfig(max_elements=10))
        # After the first rebuild, later bursts are predicted.
        assert metrics.predicted_requests > 0
        assert metrics.piggyback_messages > 0


class TestValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            OnlineVolumeConfig(probability_threshold=2.0)
        with pytest.raises(ValueError):
            OnlineVolumeConfig(rebuild_interval=0.0)
        with pytest.raises(ValueError):
            OnlineVolumeConfig(min_observations=-1)
