"""Smoke tests: the fast runnable examples must execute cleanly.

The two trace-heavy examples (prefetching_proxy, log_analysis) are
exercised indirectly by the analysis tests and benchmarks; running them
here would double the suite's runtime for no extra coverage.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "wire_protocol_demo.py",
    "volume_center_demo.py",
    "extensions_demo.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples must narrate what they do"


def test_all_examples_present():
    found = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "prefetching_proxy.py", "log_analysis.py",
            "wire_protocol_demo.py", "volume_center_demo.py",
            "extensions_demo.py"} <= found
