"""Tests for the runtime lock-order detector (``repro.devtools.lockorder``).

The core scenario is the classic latent deadlock: thread 1 takes A then B,
thread 2 takes B then A.  Under REPRO_LOCKORDER instrumentation the second
ordering must raise :class:`LockOrderError` *before* blocking, instead of
wedging — that's what lets the stress suites in CI run with the detector
on and fail fast on an ordering regression.
"""

from __future__ import annotations

import threading

import pytest

from repro.devtools.lockorder import (
    InstrumentedLock,
    LockOrderError,
    LockOrderMonitor,
    enabled,
    make_lock,
    make_rlock,
    monitor,
)


@pytest.fixture()
def fresh_monitor():
    """Isolate each test from the process-wide acquisition graph."""
    mon = LockOrderMonitor()
    yield mon
    mon.reset()


def pair(mon: LockOrderMonitor) -> tuple[InstrumentedLock, InstrumentedLock]:
    a = InstrumentedLock(threading.Lock(), "A", mon)
    b = InstrumentedLock(threading.Lock(), "B", mon)
    return a, b


def test_inverted_order_raises(fresh_monitor):
    a, b = pair(fresh_monitor)
    with a:
        with b:
            pass
    with pytest.raises(LockOrderError) as excinfo:
        with b:
            with a:
                pass
    assert excinfo.value.cycle[0] == excinfo.value.cycle[-1]
    assert {"A", "B"} <= set(excinfo.value.cycle)


def test_inverted_order_across_threads(fresh_monitor):
    """Thread 1 A->B, thread 2 B->A: the second thread fails fast."""
    a, b = pair(fresh_monitor)
    ready = threading.Event()
    errors: list[BaseException] = []

    def forward():
        with a:
            with b:
                pass
        ready.set()

    def backward():
        ready.wait(timeout=5.0)
        try:
            with b:
                with a:
                    pass
        except LockOrderError as exc:
            errors.append(exc)

    threads = [
        threading.Thread(target=forward, daemon=True),
        threading.Thread(target=backward, daemon=True),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=5.0)
    assert len(errors) == 1
    assert isinstance(errors[0], LockOrderError)


def test_consistent_order_is_fine(fresh_monitor):
    a, b = pair(fresh_monitor)
    for _ in range(3):
        with a:
            with b:
                pass
    assert fresh_monitor.edges() == {"A": frozenset({"B"})}


def test_three_lock_cycle(fresh_monitor):
    """A->B, B->C, then C->A closes a cycle longer than a pair swap."""
    mon = fresh_monitor
    a = InstrumentedLock(threading.Lock(), "A", mon)
    b = InstrumentedLock(threading.Lock(), "B", mon)
    c = InstrumentedLock(threading.Lock(), "C", mon)
    with a:
        with b:
            pass
    with b:
        with c:
            pass
    with pytest.raises(LockOrderError) as excinfo:
        with c:
            with a:
                pass
    assert set(excinfo.value.cycle) == {"A", "B", "C"}


def test_reentrant_same_role_is_ignored(fresh_monitor):
    lock = InstrumentedLock(threading.RLock(), "R", fresh_monitor)
    with lock:
        with lock:
            pass
    assert fresh_monitor.edges() == {}


def test_failed_acquire_does_not_push_stack(fresh_monitor):
    inner = threading.Lock()
    lock = InstrumentedLock(inner, "A", fresh_monitor)
    inner.acquire()
    try:
        assert lock.acquire(blocking=False) is False
        assert fresh_monitor.held() == ()
    finally:
        inner.release()


def test_held_tracks_stack_outermost_first(fresh_monitor):
    a, b = pair(fresh_monitor)
    with a:
        with b:
            assert fresh_monitor.held() == ("A", "B")
        assert fresh_monitor.held() == ("A",)
    assert fresh_monitor.held() == ()


def test_reset_clears_graph(fresh_monitor):
    a, b = pair(fresh_monitor)
    with a:
        with b:
            pass
    assert fresh_monitor.edges()
    fresh_monitor.reset()
    assert fresh_monitor.edges() == {}
    # After a reset the inverted order becomes the (new) canonical one.
    with b:
        with a:
            pass


# -- environment gating ---------------------------------------------------


def test_factories_plain_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_LOCKORDER", raising=False)
    monkeypatch.delenv("REPRO_RACE", raising=False)
    assert not enabled()
    assert isinstance(make_lock("x"), type(threading.Lock()))
    assert not isinstance(make_lock("x"), InstrumentedLock)
    assert not isinstance(make_rlock("x"), InstrumentedLock)


def test_factories_instrumented_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_LOCKORDER", "1")
    monkeypatch.delenv("REPRO_RACE", raising=False)
    assert enabled()
    lock = make_lock("gate.test.lock")
    rlock = make_rlock("gate.test.rlock")
    assert isinstance(lock, InstrumentedLock)
    assert isinstance(rlock, InstrumentedLock)
    assert lock.name == "gate.test.lock"
    # Instrumented locks keep the threading surface the wire stack uses.
    assert lock.acquire(blocking=False) is True
    assert lock.locked()
    lock.release()
    monitor().reset()


def test_factories_compose_race_layer(monkeypatch):
    from repro.devtools.racecheck import RaceLock

    monkeypatch.setenv("REPRO_LOCKORDER", "1")
    monkeypatch.setenv("REPRO_RACE", "1")
    lock = make_lock("gate.test.composed")
    # RaceLock outermost, lock-order instrumentation inside: one acquire
    # feeds both detectors.
    assert isinstance(lock, RaceLock)
    assert isinstance(lock._inner, InstrumentedLock)
    assert lock.acquire(blocking=False) is True
    assert lock.locked()
    lock.release()
    monitor().reset()


@pytest.mark.parametrize("value", ["true", "YES", " on "])
def test_enabled_accepts_truthy_spellings(monkeypatch, value):
    monkeypatch.setenv("REPRO_LOCKORDER", value)
    assert enabled()


@pytest.mark.parametrize("value", ["0", "false", "", "off"])
def test_enabled_rejects_falsy_spellings(monkeypatch, value):
    monkeypatch.setenv("REPRO_LOCKORDER", value)
    assert not enabled()


def test_wire_stack_under_instrumentation(monkeypatch):
    """End-to-end: a server built with REPRO_LOCKORDER=1 serves requests
    through instrumented locks without tripping the detector."""
    monkeypatch.setenv("REPRO_LOCKORDER", "1")
    monitor().reset()
    try:
        from repro.httpmodel.headers import Headers
        from repro.httpmodel.messages import HttpRequest
        from repro.httpwire.netclient import HttpConnection
        from repro.httpwire.netserver import PlainHttpServer

        server = PlainHttpServer({"/x": (b"payload", 0.0)})
        server.start()
        try:
            connection = HttpConnection("127.0.0.1", server.port, timeout=5.0)
            try:
                request = HttpRequest(method="GET", target="/x", headers=Headers())
                request.headers.set("Host", "test")
                response = connection.request(request)
                assert response.status == 200
                assert response.body == b"payload"
            finally:
                connection.close()
        finally:
            server.stop()
    finally:
        monitor().reset()
