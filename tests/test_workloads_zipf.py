"""Unit tests for the Zipf sampler."""

import random

import pytest

from repro.workloads.zipf import ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_alpha_one_harmonic(self):
        weights = zipf_weights(4, 1.0)
        assert weights == pytest.approx([1.0, 0.5, 1 / 3, 0.25])

    def test_alpha_zero_uniform(self):
        assert zipf_weights(5, 0.0) == [1.0] * 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, -0.5)


class TestZipfSampler:
    def test_first_item_most_popular(self):
        sampler = ZipfSampler(["a", "b", "c", "d"], alpha=1.0)
        rng = random.Random(1)
        draws = sampler.sample_many(rng, 4000)
        counts = {item: draws.count(item) for item in "abcd"}
        assert counts["a"] > counts["b"] > counts["d"]

    def test_empirical_matches_theoretical_probability(self):
        sampler = ZipfSampler(list(range(10)), alpha=1.0)
        rng = random.Random(2)
        draws = sampler.sample_many(rng, 20000)
        empirical = draws.count(0) / len(draws)
        assert empirical == pytest.approx(sampler.probability_of_rank(0), abs=0.02)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(list(range(7)), alpha=0.8)
        total = sum(sampler.probability_of_rank(i) for i in range(7))
        assert total == pytest.approx(1.0)

    def test_deterministic_given_seeded_rng(self):
        sampler = ZipfSampler(list(range(100)), alpha=1.0)
        first = sampler.sample_many(random.Random(42), 50)
        second = sampler.sample_many(random.Random(42), 50)
        assert first == second

    def test_single_item(self):
        sampler = ZipfSampler(["only"])
        assert sampler.sample(random.Random(0)) == "only"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler([])

    def test_rank_out_of_range(self):
        sampler = ZipfSampler([1, 2, 3])
        with pytest.raises(IndexError):
            sampler.probability_of_rank(3)

    def test_negative_count_rejected(self):
        sampler = ZipfSampler([1])
        with pytest.raises(ValueError):
            sampler.sample_many(random.Random(0), -1)
