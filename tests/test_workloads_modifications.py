"""Unit tests for the resource modification process."""

import pytest

from repro.workloads.modifications import ModificationConfig, ModificationProcess


class TestModificationProcess:
    def make(self, **kwargs):
        config = ModificationConfig(
            fast_fraction=kwargs.pop("fast_fraction", 0.5),
            fast_mean_interval=kwargs.pop("fast_mean_interval", 100.0),
            slow_mean_interval=kwargs.pop("slow_mean_interval", 1e7),
            seed=kwargs.pop("seed", 0),
        )
        return ModificationProcess(0.0, kwargs.pop("end", 10_000.0), config)

    def test_last_modified_monotone_in_time(self):
        process = self.make()
        url = "h/a.html"
        values = [process.last_modified(url, t) for t in (0, 100, 1000, 5000, 10000)]
        assert values == sorted(values)

    def test_last_modified_never_exceeds_query_time(self):
        process = self.make()
        for t in (0.0, 123.0, 9999.0):
            assert process.last_modified("h/x.html", t) <= t

    def test_creation_time_is_start(self):
        process = self.make()
        assert process.last_modified("h/y.html", 0.0) == 0.0

    def test_deterministic_per_url_and_seed(self):
        a = self.make(seed=1)
        b = self.make(seed=1)
        assert a.last_modified("h/z.html", 5000.0) == b.last_modified("h/z.html", 5000.0)

    def test_different_urls_have_independent_schedules(self):
        process = self.make()
        times = {process.last_modified(f"h/u{i}.html", 9000.0) for i in range(30)}
        assert len(times) > 1

    def test_modified_between(self):
        process = self.make(fast_fraction=1.0, fast_mean_interval=50.0)
        url = "h/hot.html"
        full = process.modified_between(url, 0.0, 10_000.0)
        assert full  # a 50s-mean process certainly fires within 10ks
        # An interval before the first change must report unmodified.
        first_change = min(
            t for t in (process.last_modified(url, x) for x in range(0, 10000, 10))
            if t > 0.0
        )
        assert not process.modified_between(url, first_change, first_change)

    def test_modification_count_scales_with_rate(self):
        fast = self.make(fast_fraction=1.0, fast_mean_interval=50.0)
        slow = self.make(fast_fraction=0.0)
        fast_total = sum(fast.modification_count(f"h/u{i}") for i in range(20))
        slow_total = sum(slow.modification_count(f"h/u{i}") for i in range(20))
        assert fast_total > slow_total

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            ModificationProcess(10.0, 5.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ModificationConfig(fast_fraction=1.5)
        with pytest.raises(ValueError):
            ModificationConfig(fast_mean_interval=0.0)
