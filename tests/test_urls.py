"""Unit tests for URL canonicalization and directory prefixes."""

import pytest

from repro import urls


class TestCanonicalize:
    def test_strips_http_scheme(self):
        assert urls.canonicalize("http://www.foo.com/a/b.html") == "www.foo.com/a/b.html"

    def test_strips_https_scheme(self):
        assert urls.canonicalize("https://www.foo.com/x") == "www.foo.com/x"

    def test_lowercases_host_only(self):
        assert urls.canonicalize("WWW.Foo.COM/A/B.html") == "www.foo.com/A/B.html"

    def test_folds_trailing_slash_with_bare_host(self):
        # The Appendix-A rule: http://www.foo.com/ == http://www.foo.com
        assert urls.canonicalize("http://www.foo.com/") == urls.canonicalize("http://www.foo.com")

    def test_removes_default_port(self):
        assert urls.canonicalize("www.foo.com:80/a") == "www.foo.com/a"

    def test_removes_fragment(self):
        assert urls.canonicalize("www.foo.com/a.html#sec2") == "www.foo.com/a.html"

    def test_keeps_query_string(self):
        assert urls.canonicalize("www.foo.com/a?q=1") == "www.foo.com/a?q=1"

    def test_strips_surrounding_whitespace(self):
        assert urls.canonicalize("  www.foo.com/a \n") == "www.foo.com/a"


class TestDirectoryPrefix:
    def test_level_zero_is_host(self):
        assert urls.directory_prefix("www.foo.com/a/b.html", 0) == "www.foo.com"

    def test_paper_example_level_one(self):
        # From Section 3.2.1: a/b.html and a/d/e.html share a 1-level volume.
        one = urls.directory_prefix("www.foo.com/a/b.html", 1)
        two = urls.directory_prefix("www.foo.com/a/d/e.html", 1)
        other = urls.directory_prefix("www.foo.com/f/g.html", 1)
        assert one == two == "www.foo.com/a"
        assert other == "www.foo.com/f"

    def test_paper_example_level_zero_groups_all(self):
        prefixes = {
            urls.directory_prefix(u, 0)
            for u in (
                "www.foo.com/a/b.html",
                "www.foo.com/a/d/e.html",
                "www.foo.com/f/g.html",
            )
        }
        assert prefixes == {"www.foo.com"}

    def test_resource_name_never_counts(self):
        assert urls.directory_prefix("www.foo.com/b.html", 3) == "www.foo.com"

    def test_deep_level_clamps_to_available_directories(self):
        assert urls.directory_prefix("www.foo.com/a/b/c.html", 9) == "www.foo.com/a/b"

    def test_bare_host(self):
        assert urls.directory_prefix("www.foo.com", 2) == "www.foo.com"

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            urls.directory_prefix("www.foo.com/a", -1)


class TestHelpers:
    def test_split_host_path(self):
        assert urls.split_host_path("www.foo.com/a/b") == ("www.foo.com", "a/b")
        assert urls.split_host_path("www.foo.com") == ("www.foo.com", "")

    def test_path_components(self):
        assert urls.path_components("h/a/b/c.html") == ["a", "b", "c.html"]
        assert urls.path_components("h") == []

    def test_directory_levels(self):
        assert urls.directory_levels("h/a/b/c.html") == 2
        assert urls.directory_levels("h/c.html") == 0
        assert urls.directory_levels("h") == 0

    def test_uncachable_detects_cgi_and_query(self):
        assert urls.looks_uncachable("www.foo.com/cgi-bin/x")
        assert urls.looks_uncachable("www.foo.com/a?q=1")
        assert not urls.looks_uncachable("www.foo.com/a/b.html")

    def test_content_type_of(self):
        assert urls.content_type_of("h/a/p.html") == "text"
        assert urls.content_type_of("h/a/i.GIF") == "image"
        assert urls.content_type_of("h/a/x.jpeg") == "image"
        assert urls.content_type_of("h/a/app.class") == "applet"
        assert urls.content_type_of("h/a/noext") == "text"
        assert urls.content_type_of("h/a/v.mpg") == "video"
