"""Unit tests for pseudo-proxy trace extraction."""

import pytest

from repro.traces.pseudo_proxy import aggregate_sources, extract_pseudo_proxies
from repro.traces.records import Trace

from conftest import make_record


def build_trace():
    records = []
    for i in range(6):
        records.append(make_record(float(i), "10.1.1.5", "h/a%d" % i))
    for i in range(3):
        records.append(make_record(10.0 + i, "10.1.1.9", "h/b%d" % i))
    records.append(make_record(20.0, "dialup.example.net", "h/c"))
    return Trace(records)


class TestExtractPseudoProxies:
    def test_one_proxy_per_source(self):
        proxies = list(extract_pseudo_proxies(build_trace()))
        assert [p.source for p in proxies] == ["10.1.1.5", "10.1.1.9", "dialup.example.net"]

    def test_ordered_by_request_count_descending(self):
        proxies = list(extract_pseudo_proxies(build_trace()))
        counts = [p.request_count for p in proxies]
        assert counts == sorted(counts, reverse=True)

    def test_min_requests_filters_small_sources(self):
        proxies = list(extract_pseudo_proxies(build_trace(), min_requests=3))
        assert {p.source for p in proxies} == {"10.1.1.5", "10.1.1.9"}

    def test_requests_in_time_order(self):
        proxy = next(iter(extract_pseudo_proxies(build_trace())))
        times = [r.timestamp for r in proxy.requests]
        assert times == sorted(times)

    def test_urls_helper(self):
        proxy = next(iter(extract_pseudo_proxies(build_trace())))
        assert proxy.urls() == {"h/a%d" % i for i in range(6)}

    def test_invalid_min_requests(self):
        with pytest.raises(ValueError):
            list(extract_pseudo_proxies(build_trace(), min_requests=0))


class TestAggregateSources:
    def test_collapses_shared_prefix(self):
        merged = aggregate_sources(build_trace(), prefix_octets=3)
        assert merged.sources() == {"10.1.1", "dialup.example.net"}

    def test_prefix_of_two_octets(self):
        merged = aggregate_sources(build_trace(), prefix_octets=2)
        assert "10.1" in merged.sources()

    def test_non_ip_sources_untouched(self):
        merged = aggregate_sources(build_trace())
        assert "dialup.example.net" in merged.sources()

    def test_record_payload_preserved(self):
        merged = aggregate_sources(build_trace())
        assert len(merged) == len(build_trace())
        assert merged.urls() == build_trace().urls()

    def test_invalid_prefix_octets(self):
        with pytest.raises(ValueError):
            aggregate_sources(build_trace(), prefix_octets=0)
        with pytest.raises(ValueError):
            aggregate_sources(build_trace(), prefix_octets=5)
