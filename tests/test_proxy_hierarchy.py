"""Tests for two-level cache hierarchies."""


from repro.proxy.hierarchy import build_chain
from repro.proxy.proxy import ClientOutcome, ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore


def make_origin():
    resources = ResourceStore()
    resources.add("h/a/page.html", size=2000, last_modified=100.0)
    resources.add("h/a/img.gif", size=900, last_modified=100.0)
    resources.add("h/a/more.html", size=700, last_modified=100.0)
    return PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    ), resources


def make_chain(parent_delta=600.0, child_delta=120.0):
    server, resources = make_origin()
    child, parent, boundary = build_chain(
        server.handle,
        ProxyConfig(name="parent", freshness_interval=parent_delta),
        ProxyConfig(name="child", freshness_interval=child_delta),
    )
    return child, parent, boundary, server, resources


class TestChainBasics:
    def test_miss_propagates_to_origin(self):
        child, parent, boundary, server, _ = make_chain()
        result = child.handle_client_get("h/a/page.html", now=1000.0)
        assert result.outcome is ClientOutcome.FETCHED
        assert server.stats.requests == 1
        assert boundary.stats.requests == 1
        assert "h/a/page.html" in parent.cache
        assert "h/a/page.html" in child.cache

    def test_child_fresh_hit_touches_nobody(self):
        child, parent, boundary, server, _ = make_chain()
        child.handle_client_get("h/a/page.html", now=1000.0)
        result = child.handle_client_get("h/a/page.html", now=1050.0)
        assert result.outcome is ClientOutcome.CACHE_FRESH
        assert boundary.stats.requests == 1
        assert server.stats.requests == 1

    def test_parent_cache_absorbs_child_expiry(self):
        child, parent, boundary, server, _ = make_chain(
            parent_delta=10_000.0, child_delta=100.0
        )
        child.handle_client_get("h/a/page.html", now=1000.0)
        # Child's copy expired, parent's is still fresh: the revalidation
        # is answered at the parent without contacting the origin.
        result = child.handle_client_get("h/a/page.html", now=1500.0)
        assert result.outcome is ClientOutcome.VALIDATED
        assert boundary.stats.validated_at_parent == 1
        assert server.stats.requests == 1

    def test_unknown_resource_fails_through_chain(self):
        child, _, _, _, _ = make_chain()
        result = child.handle_client_get("h/missing.html", now=0.0)
        assert result.outcome is ClientOutcome.FAILED


class TestPiggybackPropagation:
    def test_piggybacks_forwarded_to_child(self):
        child, parent, boundary, server, _ = make_chain()
        child.handle_client_get("h/a/img.gif", now=1000.0)
        result = child.handle_client_get("h/a/page.html", now=1001.0)
        # The origin's piggyback (naming img.gif) crossed both hops.
        assert result.piggyback is not None
        assert "h/a/img.gif" in result.piggyback.urls()
        assert boundary.stats.piggybacks_forwarded >= 1
        assert child.stats.piggybacks_received >= 1

    def test_child_filter_rescopes_forwarded_message(self):
        server, _ = make_origin()
        child, parent, boundary = build_chain(
            server.handle,
            ProxyConfig(name="parent", freshness_interval=600.0),
            ProxyConfig(name="child", freshness_interval=600.0,
                        max_piggyback_resource_size=100),
        )
        child.handle_client_get("h/a/img.gif", now=1000.0)
        result = child.handle_client_get("h/a/page.html", now=1001.0)
        # img.gif (900 B) exceeds the child's piggyback size limit.
        assert result.piggyback is None
        assert boundary.stats.piggybacks_refiltered_away >= 1

    def test_child_coherency_from_forwarded_piggyback(self):
        child, parent, boundary, server, resources = make_chain(
            parent_delta=10_000.0, child_delta=10_000.0
        )
        child.handle_client_get("h/a/img.gif", now=1000.0)
        resources.set_modified("h/a/img.gif", 1050.0)
        # Parent revalidates page... actually fetches it; its piggyback
        # names img.gif with the new mtime, invalidating the child's copy.
        child.handle_client_get("h/a/page.html", now=1100.0)
        assert "h/a/img.gif" not in child.cache

    def test_parent_cache_hits_carry_no_piggyback(self):
        child, parent, boundary, server, _ = make_chain(
            parent_delta=10_000.0, child_delta=50.0
        )
        child.handle_client_get("h/a/page.html", now=1000.0)
        result = child.handle_client_get("h/a/page.html", now=2000.0)
        # The parent answered from cache: no origin contact, no piggyback.
        assert result.outcome is ClientOutcome.VALIDATED
        assert result.piggyback is None


class TestApplyToMessage:
    def test_refilter_respects_rpv(self):
        from repro.core.filters import ProxyFilter
        from repro.core.piggyback import PiggybackElement, PiggybackMessage

        message = PiggybackMessage(3, (PiggybackElement("h/x", 1.0, 10),))
        hit = ProxyFilter(recently_piggybacked=frozenset({3}))
        assert hit.apply_to_message(message, "h/req") is None
        miss = ProxyFilter(recently_piggybacked=frozenset({4}))
        assert miss.apply_to_message(message, "h/req") is not None

    def test_refilter_count_criteria_pass_through(self):
        from repro.core.filters import ProxyFilter
        from repro.core.piggyback import PiggybackElement, PiggybackMessage

        message = PiggybackMessage(1, (PiggybackElement("h/x", 1.0, 10),))
        # Counts are unknown across hops; min_access_count must not zero
        # out forwarded messages.
        strict = ProxyFilter(min_access_count=100)
        assert strict.apply_to_message(message, "h/req") is not None
