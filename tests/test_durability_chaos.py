"""The crash-recovery chaos harness: SIGKILL at precise byte offsets.

A child process (``durability_driver.py``) serves a deterministic record
stream into a durable state directory and prints ``ACK i`` after each
record is durably applied.  The parent kills it — via the
``REPRO_DURABILITY_KILL`` switch — at seeded byte offsets inside journal
appends and snapshot writes, then proves two properties per kill point:

1. **Acked means durable**: recovery applies at least every record the
   child acknowledged before dying.
2. **Prefix consistency + warm-restart equivalence**: the recovered
   store is bit-identical (serialized ``P-volume`` trailers) to a fresh
   store fed exactly the applied prefix, and a warm restart that then
   observes the remainder of the stream ends bit-identical to a process
   that never died at all.

The default sweep uses 50+ seeded kill points; ``REPRO_STRESS_PROFILE=long``
roughly doubles it.
"""

from __future__ import annotations

import os
import random
import signal

import pytest

import durability_driver as driver
from repro.server.durability import DurableState, recover_state

SEED = 11
COUNT = 40
RECORDS = driver.make_records(SEED, COUNT)
URLS = driver.record_urls(RECORDS)
NEVER_DIED = driver.trailer_map(driver.feed(driver.make_store(), RECORDS), URLS)

_LONG = os.environ.get("REPRO_STRESS_PROFILE") == "long"
JOURNAL_KILL_POINTS = 96 if _LONG else 44
SNAPSHOT_KILL_POINTS = 16 if _LONG else 8


@pytest.fixture(scope="module")
def clean_run(tmp_path_factory):
    """One un-killed child run: baseline sizes and the full-journal bytes."""
    state_dir = tmp_path_factory.mktemp("clean")
    rc, acked, _ = driver.run_driver(state_dir, SEED, COUNT)
    assert rc == 0 and acked == COUNT
    journal_bytes = sum(
        entry.stat().st_size
        for entry in state_dir.iterdir()
        if entry.name.startswith("journal-")
    )
    return {"journal_bytes": journal_bytes}


@pytest.fixture(scope="module")
def clean_snapshot_run(tmp_path_factory):
    """An un-killed run that snapshots mid-stream: snapshot size baseline."""
    state_dir = tmp_path_factory.mktemp("clean-snap")
    rc, acked, out = driver.run_driver(
        state_dir, SEED, COUNT, snapshot_at=COUNT // 2
    )
    assert rc == 0 and acked == COUNT and "SNAPSHOT" in out
    return {"snapshot_bytes": (state_dir / "snapshot.json").stat().st_size}


def _assert_crash_then_recovery(state_dir, kill: str, *, snapshot_at: int = -1):
    """Kill the child per *kill*, then prove both oracle properties."""
    rc, acked, _ = driver.run_driver(
        state_dir, SEED, COUNT, snapshot_at=snapshot_at, kill=kill
    )
    assert rc == -signal.SIGKILL, f"{kill}: child exited {rc}, expected SIGKILL"

    recovered, report = recover_state(state_dir, driver.make_store)
    applied = report.last_seq
    assert applied >= acked, (
        f"{kill}: durability violated — child acked {acked} records but "
        f"recovery applied only {applied}"
    )
    assert applied <= COUNT

    prefix_store = driver.feed(driver.make_store(), RECORDS[:applied])
    assert driver.trailer_map(recovered, URLS) == driver.trailer_map(
        prefix_store, URLS
    ), f"{kill}: recovered state is not the applied prefix"

    # Warm restart: pick up where the crash left off and finish the stream.
    resumed = DurableState(state_dir, driver.make_store)
    assert resumed.recovery.last_seq == applied
    driver.feed(resumed.store, RECORDS[applied:])
    final = driver.trailer_map(resumed.store, URLS)
    resumed.close()
    assert final == NEVER_DIED, (
        f"{kill}: warm-restarted trailers differ from the never-died process"
    )
    return report


def test_sigkill_sweep_over_journal_offsets(tmp_path, clean_run):
    total = clean_run["journal_bytes"]
    rng = random.Random(0xC0FFEE)
    offsets = sorted(
        {0, 1, 7, total - 1}
        | {rng.randrange(total) for _ in range(JOURNAL_KILL_POINTS)}
    )
    assert len(offsets) >= 40
    torn_tails = 0
    for offset in offsets:
        state_dir = tmp_path / f"kill-{offset}"
        state_dir.mkdir()
        report = _assert_crash_then_recovery(state_dir, f"journal:{offset}")
        if report.torn_tail_bytes:
            torn_tails += 1
    # Mid-frame offsets dominate, so the sweep must have seen torn tails.
    assert torn_tails > len(offsets) // 4


def test_sigkill_sweep_over_snapshot_offsets(tmp_path, clean_snapshot_run):
    total = clean_snapshot_run["snapshot_bytes"]
    rng = random.Random(0xBADC0DE)
    offsets = sorted({0, 1, total - 1}
                     | {rng.randrange(total) for _ in range(SNAPSHOT_KILL_POINTS)})
    for offset in offsets:
        state_dir = tmp_path / f"snapkill-{offset}"
        state_dir.mkdir()
        report = _assert_crash_then_recovery(
            state_dir, f"snapshot:{offset}", snapshot_at=COUNT // 2
        )
        # The kill struck the snapshot temp write, which is invisible to
        # recovery: either no snapshot exists or only a complete one does.
        assert not report.snapshot_loaded
        # Everything up to (at least) the snapshot trigger was journaled.
        assert report.last_seq >= COUNT // 2


def test_sigkill_at_the_snapshot_replace_boundary(tmp_path):
    report = _assert_crash_then_recovery(
        tmp_path, "point:snapshot-replace", snapshot_at=COUNT // 2
    )
    # The rename completed before the kill: recovery loads the snapshot
    # and replays only the journal records after its high-water mark.
    assert report.snapshot_loaded
    assert report.snapshot_seq == COUNT // 2 + 1


def test_total_kill_point_count_meets_the_floor(clean_run, clean_snapshot_run):
    """The acceptance criterion asks for >= 50 seeded kill points."""
    rng = random.Random(0xC0FFEE)
    journal_offsets = {0, 1, 7, clean_run["journal_bytes"] - 1} | {
        rng.randrange(clean_run["journal_bytes"])
        for _ in range(JOURNAL_KILL_POINTS)
    }
    rng = random.Random(0xBADC0DE)
    snapshot_offsets = {0, 1, clean_snapshot_run["snapshot_bytes"] - 1} | {
        rng.randrange(clean_snapshot_run["snapshot_bytes"])
        for _ in range(SNAPSHOT_KILL_POINTS)
    }
    assert len(journal_offsets) + len(snapshot_offsets) + 1 >= 50
