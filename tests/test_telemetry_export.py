"""Tests for snapshot exposition: Prometheus text, JSON, flusher JSONL."""

from __future__ import annotations

import json
import math
import time

import pytest

from repro.telemetry import (
    JSON_SCHEMA_VERSION,
    MetricsRegistry,
    PeriodicFlusher,
    Tracer,
    merge_snapshots,
    parse_prometheus,
    parse_snapshot_json,
    render_json,
    render_prometheus,
    sparkline,
)

GOLDEN_PROMETHEUS = """\
# HELP demo_total requests served
# TYPE demo_total counter
demo_total 3
# TYPE demo_gauge gauge
demo_gauge 1.5
# HELP demo_seconds latency
# TYPE demo_seconds histogram
demo_seconds_bucket{le="1"} 1
demo_seconds_bucket{le="2"} 1
demo_seconds_bucket{le="+Inf"} 2
demo_seconds_sum 3.5
demo_seconds_count 2
"""


@pytest.fixture()
def demo_registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("demo_total", "requests served").inc(3)
    registry.gauge("demo_gauge").set(1.5)
    histogram = registry.histogram("demo_seconds", "latency", buckets=(1.0, 2.0))
    histogram.observe(0.5)
    histogram.observe(3.0)
    return registry


class TestPrometheusText:
    def test_golden_rendering(self, demo_registry):
        assert render_prometheus(demo_registry.snapshot()) == GOLDEN_PROMETHEUS

    def test_parse_inverts_render(self, demo_registry):
        snapshot = demo_registry.snapshot()
        parsed = parse_prometheus(render_prometheus(snapshot))
        assert parsed.counters == snapshot.counters
        assert parsed.gauges == snapshot.gauges
        assert parsed.help["demo_total"] == "requests served"
        histogram = parsed.histograms["demo_seconds"]
        original = snapshot.histograms["demo_seconds"]
        assert histogram.bounds == original.bounds
        assert histogram.counts == original.counts
        assert histogram.count == original.count
        assert histogram.sum == pytest.approx(original.sum)

    def test_parse_tolerates_blank_and_comment_lines(self):
        text = "\n# just a comment\n# TYPE lone_total counter\nlone_total 9\n\n"
        parsed = parse_prometheus(text)
        assert parsed.counters == {"lone_total": 9}

    def test_empty_histogram_round_trips(self):
        registry = MetricsRegistry(enabled=True)
        registry.histogram("quiet_seconds", buckets=(1.0,))
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        histogram = parsed.histograms["quiet_seconds"]
        assert histogram.count == 0
        assert histogram.min == 0.0
        assert histogram.max == 0.0


class TestJson:
    def test_schema_and_shape(self, demo_registry):
        document = json.loads(render_json(demo_registry.snapshot()))
        assert document["schema"] == JSON_SCHEMA_VERSION
        assert document["enabled"] is True
        assert document["counters"] == {"demo_total": 3}
        assert document["gauges"] == {"demo_gauge": 1.5}
        histogram = document["histograms"]["demo_seconds"]
        assert histogram["bounds"] == [1.0, 2.0]
        assert histogram["counts"] == [1, 0, 1]  # 0.5 -> le=1, 3.0 -> overflow
        assert histogram["count"] == 2
        assert "spans" not in document

    def test_spans_embedded_when_given(self, demo_registry):
        tracer = Tracer(enabled=True, seed=5)
        with tracer.span("render"):
            pass
        spans = [record.to_json() for record in tracer.recent()]
        document = json.loads(render_json(demo_registry.snapshot(), spans))
        assert document["spans"][0]["name"] == "render"

    def test_parse_inverts_render(self, demo_registry):
        snapshot = demo_registry.snapshot()
        parsed = parse_snapshot_json(render_json(snapshot))
        assert parsed.counters == snapshot.counters
        assert parsed.gauges == snapshot.gauges
        assert parsed.histograms == snapshot.histograms
        assert parsed.help == snapshot.help

    def test_non_snapshot_json_rejected(self):
        with pytest.raises(ValueError):
            parse_snapshot_json('{"some": "other json"}')


class TestMergeSnapshots:
    def test_union_of_disjoint_registries(self):
        first = MetricsRegistry(enabled=True)
        first.counter("left_total").inc(1)
        second = MetricsRegistry(enabled=True)
        second.counter("right_total").inc(2)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged.counters == {"left_total": 1, "right_total": 2}
        assert merged.enabled

    def test_later_snapshot_wins_on_clash(self):
        first = MetricsRegistry(enabled=True)
        first.counter("same_total").inc(1)
        second = MetricsRegistry(enabled=True)
        second.counter("same_total").inc(5)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert merged.counters == {"same_total": 5}


class TestPeriodicFlusher:
    def test_final_flush_writes_totals(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        counter = registry.counter("flush_total")
        histogram = registry.histogram("flush_seconds", keep_samples=True)
        path = tmp_path / "series.jsonl"
        flusher = PeriodicFlusher([registry], str(path), interval=10.0)
        flusher.start()
        counter.inc(4)
        histogram.observe(0.25)
        flusher.stop()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert lines  # at least the final flush
        record = json.loads(lines[-1])
        assert record["counters"]["flush_total"] == 4
        assert record["histograms"]["flush_seconds"]["count"] == 1
        # Percentiles in the series are bucket-estimated from the snapshot;
        # the single 0.25s sample lands in the (0.2048, 0.4096] bucket.
        assert 0.2 <= record["histograms"]["flush_seconds"]["p50"] <= 0.41
        assert record["elapsed"] >= 0.0
        assert record["time"] > 0.0

    def test_periodic_ticks_accumulate(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        registry.counter("tick_total").inc()
        path = tmp_path / "ticks.jsonl"
        with PeriodicFlusher([registry], str(path), interval=0.01) as flusher:
            deadline = time.monotonic() + 10.0
            while flusher.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) >= 3
        for line in lines:
            json.loads(line)  # every line is standalone JSON

    def test_validation(self, tmp_path):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            PeriodicFlusher([registry], str(tmp_path / "x"), interval=0.0)
        with pytest.raises(ValueError):
            PeriodicFlusher([], str(tmp_path / "x"))


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_all_zero(self):
        assert sparkline([0.0, 0.0, 0.0]) == "▁▁▁"

    def test_ramp_is_monotone(self):
        line = sparkline([1.0, 2.0, 3.0, 4.0])
        assert len(line) == 4
        assert line[-1] == "█"
        assert list(line) == sorted(line)

    def test_peak_uses_top_block(self):
        assert sparkline([0.0, 10.0])[-1] == "█"

    def test_infinite_free_rendering(self):
        # A plain numeric series; no NaN/inf handling is promised, callers
        # pass counts and deltas.
        line = sparkline([5.0])
        assert line == "█"
        assert not math.isnan(len(line))
