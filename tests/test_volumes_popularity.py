"""Unit tests for popularity volumes and the fallback composition."""

import pytest

from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.popularity import (
    FallbackVolumeStore,
    PopularityConfig,
    PopularityVolumeStore,
)

from conftest import make_record


def feed(store, specs):
    for t, url in specs:
        store.observe(make_record(t, "c1", url, size=100))


class TestPopularityVolumeStore:
    def test_top_resources_by_count(self):
        store = PopularityVolumeStore(PopularityConfig(top_count=2))
        feed(store, [(0.0, "h/a")] * 5 + [(1.0, "h/b")] * 3 + [(2.0, "h/c")])
        top = [url for url, _ in store.top_resources(now=2.0)]
        assert top == ["h/a", "h/b"]

    def test_lookup_returns_popular_volume(self):
        store = PopularityVolumeStore(PopularityConfig(top_count=3))
        feed(store, [(0.0, "h/a"), (1.0, "h/a"), (2.0, "h/b")])
        lookup = store.lookup("h/anything").materialized()
        urls = [c.url for c in lookup.candidates]
        assert urls[0] == "h/a"
        assert "h/b" in urls

    def test_empty_store_returns_none(self):
        assert PopularityVolumeStore().lookup("h/x") is None

    def test_decay_dethrones_stale_resources(self):
        config = PopularityConfig(top_count=1, half_life=100.0)
        store = PopularityVolumeStore(config)
        # Old heavy hitter...
        feed(store, [(0.0, "h/old")] * 10)
        # ...vs a newer, lighter one long after many half-lives.
        feed(store, [(10_000.0, "h/new")] * 3)
        top = [url for url, _ in store.top_resources(now=10_000.0)]
        assert top == ["h/new"]

    def test_metadata_carried_into_candidates(self):
        store = PopularityVolumeStore()
        store.observe(make_record(0.0, "c1", "h/a", size=123, last_modified=9.0))
        candidate = next(iter(store.lookup("h/z").candidates))
        assert candidate.size == 123
        assert candidate.last_modified == 9.0

    def test_volume_count(self):
        store = PopularityVolumeStore()
        assert store.volume_count() == 0
        feed(store, [(0.0, "h/a")])
        assert store.volume_count() == 1

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PopularityConfig(top_count=0)
        with pytest.raises(ValueError):
            PopularityConfig(half_life=0.0)


class TestFallbackVolumeStore:
    def make(self):
        primary = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        fallback = PopularityVolumeStore(PopularityConfig(top_count=5))
        return FallbackVolumeStore(primary, fallback)

    def test_primary_preferred_when_it_has_companions(self):
        store = self.make()
        feed(store, [(0.0, "h/a/x.html"), (1.0, "h/a/y.html"),
                     (2.0, "h/b/hot.html"), (3.0, "h/b/hot.html")])
        lookup = store.lookup("h/a/x.html")
        urls = [c.url for c in lookup.candidates]
        assert "h/a/y.html" in urls
        assert "h/b/hot.html" not in urls  # popularity volume not used

    def test_fallback_used_for_unknown_resources(self):
        store = self.make()
        feed(store, [(0.0, "h/b/hot.html"), (1.0, "h/b/hot.html")])
        lookup = store.lookup("h/never/seen.html")
        assert lookup is not None
        assert [c.url for c in lookup.candidates][0] == "h/b/hot.html"

    def test_fallback_used_when_primary_volume_is_lonely(self):
        store = self.make()
        # The primary volume for h/a contains only the requested URL.
        feed(store, [(0.0, "h/a/x.html"), (1.0, "h/popular/hit.html"),
                     (2.0, "h/popular/hit.html")])
        lookup = store.lookup("h/a/x.html")
        urls = [c.url for c in lookup.candidates]
        assert "h/popular/hit.html" in urls

    def test_volume_ids_do_not_collide_across_stores(self):
        store = self.make()
        feed(store, [(0.0, "h/a/x.html"), (1.0, "h/a/y.html")])
        primary_id = store.lookup("h/a/x.html").volume_id
        fallback_id = store.lookup("h/unknown/z.html").volume_id
        assert primary_id != fallback_id

    def test_observe_feeds_both(self):
        store = self.make()
        feed(store, [(0.0, "h/a/x.html")])
        assert store.primary.volume_count() == 1
        assert store.fallback.volume_count() == 1
        assert store.volume_count() == 2
