"""Streaming engines must be bit-identical to the in-memory fast engines.

The chunk-streaming replay and pairwise-estimation paths share their
per-record statements with the array-backed fast paths, so every metric —
element-wise :class:`ReplayMetrics`, RNG streams, RPV suppression, wire
bytes, pair counters, sampling skips — must match *exactly*, for chunk
sizes {1, 7, 4096}, for in-memory chunk lists and on-disk chunk files,
and with state pruning forced to run at an aggressive cadence.
"""

from __future__ import annotations

import pytest

import repro.analysis.fastreplay as fastreplay
from repro.analysis.fastreplay import replay_interned_multi
from repro.analysis.prediction import ReplayConfig
from repro.core.filters import ProxyFilter
from repro.traces.chunked import open_chunked_trace, write_chunked_trace
from repro.traces.intern import ChunkedCompiledTrace
from repro.traces.stats import characterize_client_log, characterize_server_log
from repro.volumes.directory import DirectoryVolumeConfig
from repro.volumes.probability import (
    InternedPairwiseEstimator,
    PairwiseConfig,
    build_probability_volumes,
    estimate_pairwise,
)
from repro.workloads.internet import InternetConfig, generate_internet_stream

CHUNK_SIZES = (1, 7, 4096)

# Exercises every accounting path the streaming engine must reproduce:
# the RNG gate (enable_probability < 1), RPV suppression, precounted and
# online access filters, warmup exclusion, size/type admission.
REPLAY_CONFIGS = [
    ReplayConfig(),
    ReplayConfig(enable_probability=0.5, seed=11),
    ReplayConfig(rpv_min_gap=30.0, max_elements=10),
    ReplayConfig(access_filter=3),
    ReplayConfig(access_filter=3, precount_accesses=False),
    ReplayConfig(measure_after=50_000.0),
    ReplayConfig(
        max_elements=8,
        access_filter=2,
        rpv_min_gap=60.0,
        enable_probability=0.8,
        seed=3,
        base_filter=ProxyFilter(max_resource_size=6000,
                                excluded_content_types=frozenset({"image"})),
    ),
]


@pytest.fixture(scope="module")
def records(small_server_log):
    trace, _ = small_server_log
    return list(trace)


@pytest.fixture(scope="module")
def entries(small_server_log):
    trace, _ = small_server_log
    estimator = estimate_pairwise(trace, PairwiseConfig())
    volumes = build_probability_volumes(estimator, 0.1)
    pairs = [(DirectoryVolumeConfig(level=1), config) for config in REPLAY_CONFIGS]
    pairs += [(volumes, config) for config in REPLAY_CONFIGS]
    return pairs


@pytest.fixture(scope="module")
def baseline(small_server_log, entries):
    trace, _ = small_server_log
    return replay_interned_multi(trace, entries)


class TestStreamingReplay:
    @pytest.mark.parametrize("chunk_records", CHUNK_SIZES)
    def test_memory_chunks_bit_identical(self, records, entries, baseline, chunk_records):
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=chunk_records)
        assert replay_interned_multi(chunked, entries) == baseline

    @pytest.mark.parametrize("chunk_records", CHUNK_SIZES)
    def test_file_chunks_bit_identical(
        self, records, entries, baseline, chunk_records, tmp_path
    ):
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(records, path, chunk_records=chunk_records)
        assert replay_interned_multi(open_chunked_trace(path), entries) == baseline

    def test_pruning_is_metrics_neutral(
        self, records, entries, baseline, monkeypatch
    ):
        # Prune after nearly every chunk: any state the pruner wrongly
        # drops (or any RNG draw it makes) would desynchronize metrics.
        monkeypatch.setattr(fastreplay, "PRUNE_INTERVAL_RECORDS", 64)
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=37)
        assert replay_interned_multi(chunked, entries) == baseline

    def test_pruning_drops_idle_state(self, records, monkeypatch):
        monkeypatch.setattr(fastreplay, "PRUNE_INTERVAL_RECORDS", 64)
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=64)
        config = ReplayConfig(prediction_window=60.0, history_window=120.0,
                              recent_window=30.0)
        slots_seen: list = []
        original = fastreplay._prune_slots

        def spy(slots, now):
            slots_seen.extend(slots)
            return original(slots, now)

        monkeypatch.setattr(fastreplay, "_prune_slots", spy)
        replay_interned_multi(chunked, [(DirectoryVolumeConfig(level=1), config)])
        assert slots_seen, "pruner never ran"
        # With tight windows over a multi-day trace, most sources are idle
        # at any instant: live state must be far below total sources.
        total_sources = len({r.source for r in records})
        assert len(slots_seen[-1].states) < total_sources


class TestStreamingEstimator:
    ESTIMATOR_CONFIGS = [
        PairwiseConfig(),
        PairwiseConfig(sample_counters=True, seed=5),
        PairwiseConfig(same_directory_level=1, window=120.0),
    ]

    @pytest.mark.parametrize("chunk_records", CHUNK_SIZES)
    def test_chunked_estimates_bit_identical(self, small_server_log, records, chunk_records):
        trace, _ = small_server_log
        for config in self.ESTIMATOR_CONFIGS:
            base = estimate_pairwise(trace, config)
            chunked = ChunkedCompiledTrace.from_records(records, chunk_records=chunk_records)
            got = estimate_pairwise(chunked, config)
            assert got.implications(0.0) == base.implications(0.0)
            assert got.counter_count == base.counter_count
            assert got.skipped_pair_events == base.skipped_pair_events

    def test_file_backed_estimates_bit_identical(self, small_server_log, records, tmp_path):
        trace, _ = small_server_log
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(records, path, chunk_records=256)
        for config in self.ESTIMATOR_CONFIGS:
            base = estimate_pairwise(trace, config)
            got = estimate_pairwise(open_chunked_trace(path), config)
            assert got.implications(0.0) == base.implications(0.0)

    def test_window_pruning_is_neutral(self, small_server_log, records, monkeypatch):
        trace, _ = small_server_log
        monkeypatch.setattr(InternedPairwiseEstimator, "PRUNE_INTERVAL_RECORDS", 64)
        config = PairwiseConfig(sample_counters=True, seed=5)
        base = estimate_pairwise(trace, config)
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=50)
        got = estimate_pairwise(chunked, config)
        assert got.implications(0.0) == base.implications(0.0)
        assert got.skipped_pair_events == base.skipped_pair_events

    def test_incremental_run_across_chunks(self, small_server_log, records):
        trace, _ = small_server_log
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=17)
        estimator = InternedPairwiseEstimator(chunked, PairwiseConfig())
        estimator.run(100)
        estimator.run(250)
        estimator.run()
        base = estimate_pairwise(trace, PairwiseConfig())
        assert estimator.implications(0.0) == base.implications(0.0)


class TestStreamingStats:
    @pytest.fixture(scope="class")
    def net_records(self):
        config = InternetConfig(record_count=6_000, origin_count=8,
                                client_count=50_000, sessions_per_second=0.5,
                                seed=13)
        return list(generate_internet_stream(config))

    @pytest.mark.parametrize("chunk_records", CHUNK_SIZES)
    def test_stats_identical_across_representations(self, net_records, chunk_records, tmp_path):
        from repro.traces.records import Trace

        trace = Trace(net_records)
        server_base = characterize_server_log(trace)
        client_base = characterize_client_log(trace)
        chunked = ChunkedCompiledTrace.from_records(net_records, chunk_records=chunk_records)
        assert characterize_server_log(chunked) == server_base
        assert characterize_client_log(chunked) == client_base
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(net_records, path, chunk_records=chunk_records)
        disk = open_chunked_trace(path)
        assert characterize_server_log(disk) == server_base
        assert characterize_client_log(disk) == client_base


class TestInternetGenerator:
    def test_deterministic_and_time_ordered(self):
        config = InternetConfig(record_count=3_000, origin_count=5,
                                client_count=10_000, sessions_per_second=0.5,
                                seed=21)
        first = list(generate_internet_stream(config))
        second = list(generate_internet_stream(config))
        assert first == second
        assert len(first) == 3_000
        assert all(a.timestamp <= b.timestamp for a, b in zip(first, first[1:]))

    def test_traffic_mix(self):
        config = InternetConfig(record_count=10_000, origin_count=12,
                                client_count=100_000, sessions_per_second=0.5,
                                bot_fraction=0.2, seed=2)
        records = list(generate_internet_stream(config))
        hosts = {r.url.split("/", 1)[0] for r in records}
        assert len(hosts) > 1
        assert all(host.startswith("www.origin") for host in hosts)
        bot_requests = sum(1 for r in records if r.source.startswith("bot-"))
        assert 0 < bot_requests < len(records)
        assert any(r.status == 304 and r.size == 0 for r in records)
        assert all(r.last_modified is not None for r in records)

    def test_seed_changes_stream(self):
        base = InternetConfig(record_count=500, origin_count=4,
                              client_count=1_000, sessions_per_second=0.5, seed=1)
        other = InternetConfig(record_count=500, origin_count=4,
                               client_count=1_000, sessions_per_second=0.5, seed=2)
        assert list(generate_internet_stream(base)) != list(generate_internet_stream(other))

    def test_write_internet_trace_roundtrip(self, tmp_path):
        from repro.workloads.internet import write_internet_trace

        config = InternetConfig(record_count=2_000, origin_count=4,
                                client_count=5_000, sessions_per_second=0.5,
                                seed=8)
        path = str(tmp_path / "net.rpchunk")
        count, chunks = write_internet_trace(config, path, chunk_records=512)
        assert count == 2_000
        assert chunks == 4
        disk = open_chunked_trace(path)
        assert list(disk.records()) == list(generate_internet_stream(config))
