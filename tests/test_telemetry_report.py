"""Tests for snapshot loading/rendering and the `repro stats` telemetry mode."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.telemetry import MetricsRegistry, render_json, render_prometheus
from repro.telemetry.report import (
    instrument_names,
    load_snapshot_text,
    missing_families,
    render_report,
)


@pytest.fixture()
def registry():
    registry = MetricsRegistry(enabled=True)
    registry.counter("wire_requests_served_total", "requests").inc(7)
    registry.gauge("wire_active_workers").set(2)
    registry.histogram("client_request_seconds", "latency").observe(0.02)
    return registry


def series_line(counters, elapsed=1.0):
    return json.dumps(
        {
            "time": 1700000000.0 + elapsed,
            "elapsed": elapsed,
            "counters": counters,
            "gauges": {},
            "histograms": {"client_request_seconds": {"count": 1, "sum": 0.02,
                                                      "p50": 0.02, "p95": 0.02,
                                                      "p99": 0.02}},
        },
        sort_keys=True,
    )


class TestFormatSniffing:
    def test_prometheus_text(self, registry):
        snapshot, series = load_snapshot_text(render_prometheus(registry.snapshot()))
        assert snapshot.counters["wire_requests_served_total"] == 7
        assert series == []

    def test_json_snapshot_indented(self, registry):
        snapshot, series = load_snapshot_text(render_json(registry.snapshot()))
        assert snapshot.counters["wire_requests_served_total"] == 7
        assert series == []

    def test_json_snapshot_compact_single_line(self, registry):
        text = render_json(registry.snapshot(), indent=None)
        assert "\n" not in text.strip()
        snapshot, series = load_snapshot_text(text)
        assert snapshot.counters["wire_requests_served_total"] == 7
        assert series == []

    def test_jsonl_series_multi_line(self):
        text = (
            series_line({"wire_requests_served_total": 3}, elapsed=1.0)
            + "\n"
            + series_line({"wire_requests_served_total": 9}, elapsed=2.0)
            + "\n"
        )
        snapshot, series = load_snapshot_text(text)
        assert len(series) == 2
        assert snapshot.counters["wire_requests_served_total"] == 9

    def test_jsonl_series_single_line(self):
        # A short run can flush exactly once; a single series line must
        # still be recognized as a series, not mis-parsed as a snapshot.
        snapshot, series = load_snapshot_text(
            series_line({"wire_requests_served_total": 4})
        )
        assert len(series) == 1
        assert snapshot.counters["wire_requests_served_total"] == 4

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            load_snapshot_text("   \n ")


class TestRequiredFamilies:
    def test_names_cover_snapshot_and_series(self, registry):
        snapshot, _ = load_snapshot_text(render_prometheus(registry.snapshot()))
        names = instrument_names(snapshot, [json.loads(series_line({"extra_total": 1}))])
        assert "wire_requests_served_total" in names
        assert "client_request_seconds" in names
        assert "extra_total" in names

    def test_missing_families_prefix_match(self):
        names = {"wire_requests_served_total", "client_request_seconds"}
        assert missing_families(names, ["wire_", "client_request"]) == []
        assert missing_families(names, ["proxy_cache_"]) == ["proxy_cache_"]


class TestRenderReport:
    def test_tables_and_sparklines(self, registry):
        report = render_report(registry.snapshot())
        assert "counters" in report
        assert "wire_requests_served_total" in report
        assert "gauges" in report
        assert "histograms" in report
        assert "p95" in report

    def test_series_section_shows_deltas(self, registry):
        series = [
            json.loads(series_line({"wire_requests_served_total": 3}, elapsed=1.0)),
            json.loads(series_line({"wire_requests_served_total": 9}, elapsed=2.0)),
        ]
        report = render_report(registry.snapshot(), series)
        assert "time series (2 ticks)" in report
        assert "(total 9)" in report

    def test_empty_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        assert "no instruments recorded" in render_report(registry.snapshot())


class TestStatsCli:
    def test_snapshot_file_rendered(self, tmp_path, capsys, registry):
        path = tmp_path / "snap.prom"
        path.write_text(render_prometheus(registry.snapshot()), encoding="utf-8")
        exit_code = cli_main(["stats", "--snapshot", str(path)])
        assert exit_code == 0
        assert "wire_requests_served_total" in capsys.readouterr().out

    def test_require_satisfied_and_missing(self, tmp_path, capsys, registry):
        path = tmp_path / "snap.prom"
        path.write_text(render_prometheus(registry.snapshot()), encoding="utf-8")
        assert cli_main(["stats", "--snapshot", str(path), "--require", "wire_"]) == 0
        capsys.readouterr()
        exit_code = cli_main(
            ["stats", "--snapshot", str(path), "--require", "nonexistent_family_"]
        )
        assert exit_code == 1
        assert "nonexistent_family_" in capsys.readouterr().err

    def test_unreadable_snapshot_is_exit_2(self, tmp_path, capsys):
        exit_code = cli_main(["stats", "--snapshot", str(tmp_path / "missing.prom")])
        assert exit_code == 2
        assert "stats:" in capsys.readouterr().err
