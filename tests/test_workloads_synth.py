"""Unit tests for synthetic log generation and the named presets."""

import pytest

from repro.traces.stats import top_fraction_share
from repro.workloads.synth import (
    CLIENT_PRESETS,
    SERVER_PRESETS,
    ClientLogConfig,
    ServerLogConfig,
    client_log_preset,
    generate_client_log,
    generate_server_log,
    server_log_preset,
)
from repro.workloads.sitegen import SiteConfig


def quick_server_config(**kwargs):
    defaults = dict(
        site=SiteConfig(host="www.q.example", page_count=30, directory_count=5, seed=2),
        source_count=20,
        session_count=150,
        duration_days=2.0,
        seed=11,
    )
    defaults.update(kwargs)
    return ServerLogConfig(**defaults)


class TestGenerateServerLog:
    def test_records_within_horizon(self):
        trace, _ = generate_server_log(quick_server_config())
        assert trace.start_time >= 0.0
        assert trace.end_time <= 2.0 * 86400.0

    def test_urls_belong_to_site(self):
        trace, site = generate_server_log(quick_server_config())
        assert trace.urls() <= set(site.resources)

    def test_sources_bounded(self):
        trace, _ = generate_server_log(quick_server_config())
        assert len(trace.sources()) <= 20

    def test_deterministic(self):
        a, _ = generate_server_log(quick_server_config())
        b, _ = generate_server_log(quick_server_config())
        assert len(a) == len(b)
        assert [r.url for r in a] == [r.url for r in b]

    def test_method_override(self):
        trace, _ = generate_server_log(quick_server_config(method="POST"))
        assert all(r.method == "POST" for r in trace)

    def test_last_modified_present_and_sane(self):
        trace, _ = generate_server_log(quick_server_config())
        assert all(r.last_modified is not None for r in trace)
        assert all(r.last_modified <= r.timestamp for r in trace)

    def test_source_activity_is_skewed(self):
        trace, _ = generate_server_log(quick_server_config(session_count=600))
        counts = {}
        for record in trace:
            counts[record.source] = counts.get(record.source, 0) + 1
        # The busiest 10% of sources should take well over 10% of requests.
        assert top_fraction_share(counts, 0.10) > 0.2

    def test_resource_popularity_is_skewed(self):
        trace, _ = generate_server_log(quick_server_config(session_count=600))
        assert top_fraction_share(trace.url_counts(), 0.10) > 0.3


class TestGenerateClientLog:
    def test_spans_multiple_sites(self):
        config = ClientLogConfig(site_count=5, source_count=10, session_count=80,
                                 duration_days=1.0, seed=3)
        trace, sites = generate_client_log(config)
        assert len(sites) == 5
        hosts = {u.split("/", 1)[0] for u in trace.urls()}
        assert len(hosts) > 1

    def test_not_modified_fraction_close_to_config(self):
        config = ClientLogConfig(site_count=4, source_count=8, session_count=400,
                                 duration_days=1.0, not_modified_fraction=0.5, seed=4)
        trace, _ = generate_client_log(config)
        fraction_304 = sum(1 for r in trace if r.status == 304) / len(trace)
        # The marking pass targets the configured fraction exactly, capped
        # by the number of repeat requests available.
        assert 0.1 < fraction_304 <= 0.5

    def test_304_responses_have_zero_size(self):
        config = ClientLogConfig(site_count=3, source_count=5, session_count=200,
                                 duration_days=1.0, not_modified_fraction=0.4, seed=5)
        trace, _ = generate_client_log(config)
        assert all(r.size == 0 for r in trace if r.status == 304)


class TestPresets:
    def test_all_server_presets_generate(self):
        for name in SERVER_PRESETS:
            trace, site = server_log_preset(name, scale=0.05)
            assert len(trace) > 0, name
            assert trace.urls() <= set(site.resources), name

    def test_all_client_presets_generate(self):
        for name in CLIENT_PRESETS:
            trace, sites = client_log_preset(name, scale=0.05)
            assert len(trace) > 0, name
            assert len(sites) > 1, name

    def test_marimba_is_post_dominated(self):
        trace, _ = server_log_preset("marimba", scale=0.1)
        assert all(r.method == "POST" for r in trace)

    def test_relative_sizes_track_the_paper(self):
        # Sun is the big busy site, Marimba the tiny one (Table 3).
        sun, sun_site = server_log_preset("sun", scale=0.05)
        marimba, marimba_site = server_log_preset("marimba", scale=0.05)
        assert len(sun_site.resources) > 5 * len(marimba_site.resources)

    def test_scale_changes_volume(self):
        small, _ = server_log_preset("aiusa", scale=0.05)
        large, _ = server_log_preset("aiusa", scale=0.2)
        assert len(large) > 2 * len(small)

    def test_seed_override_changes_trace(self):
        a, _ = server_log_preset("aiusa", scale=0.05, seed=1)
        b, _ = server_log_preset("aiusa", scale=0.05, seed=2)
        assert [r.url for r in a] != [r.url for r in b]

    def test_unknown_preset_raises(self):
        with pytest.raises(KeyError):
            server_log_preset("nope")
        with pytest.raises(KeyError):
            client_log_preset("nope")
