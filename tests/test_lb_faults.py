"""Fault injection against the cluster front tier.

Three failure stories, all required to be invisible to clients:

* a replica whose connections are mangled mid-response (reset, garbage,
  truncation, via :class:`FaultInjectingInterposer`) — the LB replays
  the request bytes on the surviving replica and passively ejects the
  faulty one;
* a replica SIGKILLed under a live request stream (a real
  ``repro serve`` subprocess via :class:`ProcessCluster`) — ejected,
  restarted on its original port, and readmitted by the health prober,
  with zero failed client requests throughout;
* a replica drained through its own ``/.repro/drain`` admin endpoint —
  the prober notices, the table stops routing to it, and pinned clients
  are repinned to the survivor without failures.
"""

from __future__ import annotations

import time

import pytest

from repro.httpmodel.messages import HttpRequest
from repro.httpwire.faults import Fault, FaultInjectingInterposer
from repro.httpwire.netclient import fetch_once
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.lb.balancer import LbHttpServer, LbPolicy
from repro.lb.cluster import ClusterConfig, LocalCluster, ProcessCluster
from repro.lb.health import HealthPolicy
from repro.lb.routing import BackendSlot, RoutingTable
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.workloads.sitegen import SiteConfig, generate_site

HOST = "www.lbfault.example"
PAGES = {f"{HOST}/d{d}/p{p}.html": 350 + 40 * d + 9 * p
         for d in range(4) for p in range(4)}

FAST_HEALTH = HealthPolicy(interval=0.1, timeout=1.0)
FAST_POLICY = LbPolicy(snapshot_ttl=0.2, backend_timeout=3.0)


def build_engine():
    resources = ResourceStore()
    for url, size in PAGES.items():
        resources.add(url, size=size, last_modified=100.0)
    return PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )


def get_via_lb(lb, target, host, proxy="wire-proxy", timeout=5.0):
    request = HttpRequest(method="GET", target=target)
    request.headers.set("Host", host)
    request.headers.set("X-Proxy-Name", proxy)
    request.headers.set("TE", "chunked")
    request.headers.set("Piggy-filter", "maxpiggy=8")
    request.headers.set("Connection", "close")
    return fetch_once(lb.address, lb.port, request, timeout=timeout)


def pinned_replica(lb):
    """The replica currently taking the traffic (max routed count)."""
    backends = lb.lb_status()["routing"]["backends"]
    top = max(backends, key=lambda b: b["routed"])
    return top["shard"], top["replica"]


# -- transport faults: retry on the surviving replica ----------------------


@pytest.mark.parametrize(
    "fault",
    [Fault.reset_after(60), Fault.truncate_after(40), Fault.garbage()],
    ids=["reset", "truncate", "garbage"],
)
def test_faulty_replica_masked_by_retry_and_ejected(fault):
    """Replica 0 mangles every backend connection; clients still see
    clean responses because the LB replays on replica 1 and ejects 0."""
    with PiggybackHttpServer(build_engine(), site_host=HOST) as faulty:
        with PiggybackHttpServer(build_engine(), site_host=HOST) as healthy:
            with FaultInjectingInterposer(
                (faulty.address, faulty.port), schedule=lambda index: fault
            ) as interposer:
                slots = [
                    BackendSlot(0, 0, interposer.address, interposer.port),
                    BackendSlot(0, 1, healthy.address, healthy.port),
                ]
                table = RoutingTable(1, slots, snapshot_ttl=0.2)
                lb = LbHttpServer(table, policy=FAST_POLICY, site_host=HOST)
                lb.start()
                try:
                    for url in sorted(PAGES)[:8]:
                        target = "/" + url.partition("/")[2]
                        response = get_via_lb(lb, target, HOST)
                        assert response.status == 200
                        assert response.body == synthetic_body(url, PAGES[url])
                    status = lb.lb_status()
                    assert status["retried"] >= 1
                    assert status["routing"]["ejections"] >= 1
                    assert not table.is_healthy(slots[0])
                    assert status["unroutable"] == 0
                finally:
                    lb.stop()


def test_no_survivor_yields_502_not_hang():
    """Both replicas faulty: the LB reports 502 after exhausting retries
    instead of hanging or leaking the raw backend error."""
    with PiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        with FaultInjectingInterposer(
            (origin.address, origin.port),
            schedule=lambda index: Fault.reset_after(30),
        ) as interposer:
            slots = [BackendSlot(0, 0, interposer.address, interposer.port)]
            table = RoutingTable(1, slots, snapshot_ttl=0.2)
            lb = LbHttpServer(table, policy=FAST_POLICY, site_host=HOST)
            lb.start()
            try:
                url = sorted(PAGES)[0]
                response = get_via_lb(lb, "/" + url.partition("/")[2], HOST)
                assert response.status == 502
                follow_up = get_via_lb(lb, "/" + url.partition("/")[2], HOST)
                assert follow_up.status == 503  # now known-unhealthy
                assert lb.lb_status()["unroutable"] == 2
            finally:
                lb.stop()


# -- SIGKILL + restart of a real serve subprocess --------------------------


def test_sigkill_replica_ejected_then_readmitted_zero_failed_requests():
    config = ClusterConfig(
        shards=1,
        replicas=2,
        host="www.killcluster.example",
        pages=12,
        directories=4,
        backend="threaded",
        policy=FAST_POLICY,
        health=FAST_HEALTH,
        startup_timeout=30.0,
    )
    site = generate_site(
        SiteConfig(host=config.host, page_count=config.pages,
                   directory_count=config.directories,
                   max_depth=config.max_depth, seed=config.seed)
    )
    urls = sorted(ResourceStore.from_site(site).urls())
    failures = []
    with ProcessCluster(config) as cluster:
        lb = cluster.lb

        def drive(count, start):
            for index in range(count):
                url = urls[(start + index) % len(urls)]
                response = get_via_lb(lb, "/" + url.partition("/")[2],
                                      config.host)
                if response.status != 200:
                    failures.append((url, response.status))

        drive(10, 0)
        shard, replica = pinned_replica(lb)
        cluster.kill(shard, replica)
        assert cluster.poll() == [(shard, replica, -9)]
        # The very next requests hit the dead backend, get passively
        # ejected, and are replayed on the survivor — no client failures.
        drive(10, 10)
        status = lb.lb_status()["routing"]
        assert status["ejections"] >= 1
        dead_key = f"s{shard}r{replica}"
        dead = next(b for b in status["backends"] if b["key"] == dead_key)
        assert not dead["healthy"]

        cluster.restart(shard, replica)
        dead_slot = next(s for s in cluster.table.slots if s.key == dead_key)
        deadline = time.monotonic() + 15.0
        while not cluster.table.is_healthy(dead_slot):
            assert time.monotonic() < deadline, "replica never readmitted"
            time.sleep(0.05)
        assert cluster.table.status()["readmissions"] >= 1
        drive(6, 20)
    assert failures == []


# -- lame-duck drain -------------------------------------------------------


def test_drained_replica_stops_taking_traffic_without_failures():
    import http.client

    config = ClusterConfig(
        shards=1,
        replicas=2,
        host="www.draincluster.example",
        pages=16,
        directories=4,
        policy=FAST_POLICY,
        health=FAST_HEALTH,
    )
    with LocalCluster(config) as cluster:
        lb = cluster.lb
        urls = cluster.urls
        for url in urls[:6]:
            response = get_via_lb(lb, "/" + url.partition("/")[2], config.host)
            assert response.status == 200
        shard, replica = pinned_replica(lb)
        victim = cluster.origins[(shard, replica)]

        connection = http.client.HTTPConnection(
            victim.address, victim.port, timeout=10
        )
        try:
            connection.request("POST", "/.repro/drain",
                               headers={"Host": config.host})
            assert connection.getresponse().status == 200
        finally:
            connection.close()

        victim_key = f"s{shard}r{replica}"
        victim_slot = next(s for s in cluster.table.slots
                           if s.key == victim_key)
        deadline = time.monotonic() + 10.0
        while cluster.table.is_healthy(victim_slot):
            assert time.monotonic() < deadline, "drained replica never left"
            time.sleep(0.05)
        # Traffic continues, now on the survivor, with zero failures.
        for url in urls[6:14]:
            response = get_via_lb(lb, "/" + url.partition("/")[2], config.host)
            assert response.status == 200
        backends = lb.lb_status()["routing"]["backends"]
        survivor = next(b for b in backends if b["key"] != victim_key)
        assert survivor["healthy"]
        assert lb.lb_status()["unroutable"] == 0
