"""Unit tests for piggyback-driven cache coherency."""

from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.proxy.cache import CacheOutcome, ProxyCache
from repro.proxy.coherency import CoherencyManager


def message(*elements):
    return PiggybackMessage(volume_id=1, elements=tuple(elements))


class TestProcess:
    def test_current_copy_freshened(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.put("h/a", size=10, last_modified=50.0, now=0.0)
        manager = CoherencyManager()
        outcome = manager.process(cache, message(PiggybackElement("h/a", 50.0, 10)), now=90.0)
        assert outcome.freshened == ("h/a",)
        assert cache.probe("h/a", 150.0) is CacheOutcome.HIT_FRESH

    def test_newer_cached_copy_also_counts_fresh(self):
        cache = ProxyCache()
        cache.put("h/a", size=10, last_modified=60.0, now=0.0)
        manager = CoherencyManager()
        outcome = manager.process(cache, message(PiggybackElement("h/a", 50.0, 10)), now=1.0)
        assert outcome.freshened == ("h/a",)

    def test_stale_copy_invalidated(self):
        cache = ProxyCache()
        cache.put("h/a", size=10, last_modified=50.0, now=0.0)
        manager = CoherencyManager()
        element = PiggybackElement("h/a", 70.0, 12)
        outcome = manager.process(cache, message(element), now=1.0)
        assert outcome.invalidated == (element,)
        assert "h/a" not in cache

    def test_uncached_reported(self):
        cache = ProxyCache()
        manager = CoherencyManager()
        element = PiggybackElement("h/new", 10.0, 5)
        outcome = manager.process(cache, message(element), now=0.0)
        assert outcome.uncached == (element,)
        assert not outcome.was_useful

    def test_prefetch_candidates_are_stale_plus_uncached(self):
        cache = ProxyCache()
        cache.put("h/stale", size=10, last_modified=1.0, now=0.0)
        cache.put("h/ok", size=10, last_modified=9.0, now=0.0)
        manager = CoherencyManager()
        stale = PiggybackElement("h/stale", 5.0, 10)
        fresh = PiggybackElement("h/ok", 9.0, 10)
        new = PiggybackElement("h/new", 2.0, 10)
        outcome = manager.process(cache, message(stale, fresh, new), now=1.0)
        assert outcome.prefetch_candidates() == (stale, new)

    def test_stats_accumulate_across_messages(self):
        cache = ProxyCache()
        cache.put("h/a", size=10, last_modified=5.0, now=0.0)
        manager = CoherencyManager()
        manager.process(cache, message(PiggybackElement("h/a", 5.0, 10),
                                       PiggybackElement("h/b", 1.0, 10)), now=1.0)
        manager.process(cache, message(PiggybackElement("h/c", 1.0, 10)), now=2.0)
        stats = manager.stats
        assert stats.messages == 2
        assert stats.elements == 3
        assert stats.freshened == 1
        assert stats.uncached == 2
        assert stats.useful_fraction == 1 / 3
