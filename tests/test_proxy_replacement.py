"""Unit tests for cache replacement policies."""

import pytest

from repro.proxy.cache import CacheEntry, ProxyCache
from repro.proxy.replacement import (
    GreedyDualSizePolicy,
    LruPolicy,
    PiggybackAwareLruPolicy,
    SizePolicy,
)


def entry(url, size=10, last_access=0.0, last_piggyback=None):
    return CacheEntry(
        url=url, size=size, last_modified=0.0, expires=1e9,
        fetched_at=0.0, last_access=last_access, last_piggyback=last_piggyback,
    )


class TestLruPolicy:
    def test_picks_least_recent(self):
        entries = {e.url: e for e in (entry("a", last_access=5.0),
                                      entry("b", last_access=1.0),
                                      entry("c", last_access=9.0))}
        assert LruPolicy().choose_victim(entries) == "b"

    def test_respects_protect(self):
        entries = {e.url: e for e in (entry("a", last_access=1.0),
                                      entry("b", last_access=2.0))}
        assert LruPolicy().choose_victim(entries, protect="a") == "b"

    def test_empty_returns_none(self):
        assert LruPolicy().choose_victim({}) is None


class TestSizePolicy:
    def test_picks_largest(self):
        entries = {e.url: e for e in (entry("a", size=10),
                                      entry("b", size=500),
                                      entry("c", size=50))}
        assert SizePolicy().choose_victim(entries) == "b"

    def test_ties_broken_by_lru(self):
        entries = {e.url: e for e in (entry("a", size=100, last_access=5.0),
                                      entry("b", size=100, last_access=1.0))}
        assert SizePolicy().choose_victim(entries) == "b"


class TestGreedyDualSize:
    def test_prefers_large_unused_objects(self):
        policy = GreedyDualSizePolicy()
        small, big = entry("small", size=10), entry("big", size=10_000)
        entries = {"small": small, "big": big}
        policy.on_insert(small, 0.0)
        policy.on_insert(big, 0.0)
        assert policy.choose_victim(entries) == "big"

    def test_access_refreshes_h_value(self):
        policy = GreedyDualSizePolicy()
        a, b = entry("a", size=100), entry("b", size=100)
        entries = {"a": a, "b": b}
        policy.on_insert(a, 0.0)
        policy.on_insert(b, 0.0)
        # Evict one; inflation rises; re-credit "a" so "b" stays minimal.
        victim = policy.choose_victim(entries)
        del entries[victim]
        survivor = entries[next(iter(entries))]
        policy.on_access(survivor, 1.0)
        c = entry("c", size=100)
        entries["c"] = c
        # c never credited => h defaults to current inflation => victim.
        assert policy.choose_victim(entries) == "c"

    def test_inflation_monotone_under_evictions(self):
        policy = GreedyDualSizePolicy()
        entries = {}
        for i, size in enumerate((100, 10, 1000)):
            e = entry(f"u{i}", size=size)
            entries[e.url] = e
            policy.on_insert(e, float(i))
        first = policy.choose_victim(entries)
        del entries[first]
        policy.on_remove(entry(first))
        second = policy.choose_victim(entries)
        assert first == "u2"  # largest => smallest H with unit cost
        assert second == "u0"

    def test_integration_with_cache(self):
        cache = ProxyCache(capacity_bytes=1000, policy=GreedyDualSizePolicy())
        cache.put("h/big", size=900, last_modified=0.0, now=0.0)
        cache.put("h/small", size=50, last_modified=0.0, now=1.0)
        cache.put("h/mid", size=500, last_modified=0.0, now=2.0)
        assert "h/big" not in cache
        assert "h/small" in cache


class TestPiggybackAwareLru:
    def test_confirmation_acts_as_touch(self):
        policy = PiggybackAwareLruPolicy()
        confirmed = entry("a", last_access=100.0, last_piggyback=400.0)
        plain = entry("b", last_access=300.0)
        # a's piggyback confirmation (t=400) outranks b's access (t=300).
        assert policy.choose_victim({"a": confirmed, "b": plain}) == "b"

    def test_never_hurts_recently_used_entries(self):
        policy = PiggybackAwareLruPolicy()
        hot = entry("hot", last_access=500.0)  # never piggybacked
        confirmed = entry("cold", last_access=10.0, last_piggyback=100.0)
        assert policy.choose_victim({"hot": hot, "cold": confirmed}) == "cold"

    def test_reduces_to_lru_without_piggybacks(self):
        policy = PiggybackAwareLruPolicy()
        entries = {e.url: e for e in (entry("a", last_access=5.0),
                                      entry("b", last_access=1.0))}
        assert policy.choose_victim(entries) == "b"

    def test_discount_weakens_confirmations(self):
        policy = PiggybackAwareLruPolicy(confirmation_discount=200.0)
        confirmed = entry("a", last_access=0.0, last_piggyback=400.0)  # key 200
        plain = entry("b", last_access=300.0)
        assert policy.choose_victim({"a": confirmed, "b": plain}) == "a"

    def test_invalid_discount(self):
        with pytest.raises(ValueError):
            PiggybackAwareLruPolicy(confirmation_discount=-1.0)
