"""Chaos tests: the wire proxy under transport-level fault injection.

A :class:`FaultInjectingInterposer` sits between the proxy and its origin
and injects truncated responses (including cuts inside the chunked
trailer block), mid-body TCP resets, garbage bytes, and slow origins.
The proxy must never crash, never poison its cache with a half-read
response, and answer *every* client with a well-formed HTTP response —
fresh, stale (``X-Cache: stale``) or ``502`` — with zero leaked worker
threads afterwards.  Fault schedules are indexed by connection, so a
seeded run injects the same failure sequence every time.
"""

import threading
import time

import pytest

from repro.httpmodel.messages import HttpRequest
from repro.httpwire.faults import Fault, FaultInjectingInterposer
from repro.httpwire.netclient import HttpConnection
from repro.httpwire.netproxy import PiggybackHttpProxy, UpstreamPolicy
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.chaos.example"
PAGES = {
    f"{HOST}/d0/p{i}.html": 600 + 100 * i for i in range(6)
}

FAST_RETRIES = UpstreamPolicy(
    timeout=0.5, max_attempts=3, backoff=0.01, backoff_factor=2.0
)


class TogglingSchedule:
    """Callable schedule whose fault can be switched on/off mid-test."""

    def __init__(self, fault: Fault):
        self.fault = fault
        self.enabled = True

    def __call__(self, index: int) -> Fault:
        return self.fault if self.enabled else Fault.none()


def build_engine():
    resources = ResourceStore()
    for url, size in PAGES.items():
        resources.add(url, size=size, last_modified=100.0)
    return PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )


def proxy_get(connection: HttpConnection, url: str):
    request = HttpRequest(method="GET", target=f"http://{url}")
    request.headers.set("Host", HOST)
    return connection.request_once(request)


def assert_well_formed(url, response):
    """Every degraded answer is still one of the allowed shapes."""
    assert response.status in (200, 502), f"{url}: status {response.status}"
    if response.status == 200:
        cache_state = response.headers.get("X-Cache")
        if cache_state == "stale":
            assert response.headers.get("Warning") is not None
        assert response.body == synthetic_body(url, PAGES[url])
    else:
        assert response.body == b""


def wait_for_quiesce(baseline, deadline=2.0):
    """Give daemon relay threads a moment to wind down after stop()."""
    end = time.monotonic() + deadline
    while threading.active_count() > baseline and time.monotonic() < end:
        time.sleep(0.02)


@pytest.fixture()
def chaos_stack():
    """origin <- interposer(schedule) <- proxy, with fast retry policy."""
    baseline = threading.active_count()
    engine = build_engine()
    stacks = []

    def build(schedule, policy=FAST_RETRIES, clock=None):
        origin = PiggybackHttpServer(engine, site_host=HOST)
        origin.start()
        interposer = FaultInjectingInterposer(
            (origin.address, origin.port), schedule=schedule
        )
        interposer.start()
        proxy = PiggybackHttpProxy(
            origins={HOST: (interposer.address, interposer.port)},
            config=ProxyConfig(name="chaos-proxy"),
            upstream_policy=policy,
            clock=clock,
        )
        proxy.start()
        stacks.append((origin, interposer, proxy))
        return engine, origin, interposer, proxy

    yield build
    for origin, interposer, proxy in stacks:
        proxy.stop()
        interposer.stop()
        origin.stop()
        assert proxy.active_workers() == 0, "leaked proxy workers"
        assert origin.active_workers() == 0, "leaked origin workers"
    wait_for_quiesce(baseline)


def fault_recovery_case(chaos_stack, fault):
    """Every odd upstream connection fails; retries must mask it fully."""
    schedule = lambda index: fault if index % 2 == 0 else Fault.none()
    _, _, interposer, proxy = chaos_stack(schedule)
    connection = HttpConnection(proxy.address, proxy.port, timeout=5.0)
    try:
        for url in PAGES:
            response = proxy_get(connection, url)
            assert response.status == 200
            assert response.headers.get("X-Cache") != "stale"
            assert response.body == synthetic_body(url, PAGES[url])
    finally:
        connection.close()
    assert proxy.upstream.stats.retries > 0, "fault never actually hit"
    assert proxy.upstream.stats.failures == 0
    assert interposer.stats.faults_applied.get(fault.kind, 0) > 0


def test_truncated_mid_response_is_retried(chaos_stack):
    fault_recovery_case(chaos_stack, Fault.truncate_after(80))


def test_truncated_inside_trailer_is_retried(chaos_stack):
    # Cut after the body bytes have flowed: status line + headers + chunk
    # framing of the smallest page put the cut inside the trailer block.
    smallest = min(PAGES.values())
    fault_recovery_case(chaos_stack, Fault.truncate_after(smallest + 250))


def test_mid_body_reset_is_retried(chaos_stack):
    fault_recovery_case(chaos_stack, Fault.reset_after(60))


def test_garbage_response_is_retried(chaos_stack):
    fault_recovery_case(chaos_stack, Fault.garbage())


class ShiftableClock:
    """time.time plus an adjustable offset, to expire cache freshness."""

    def __init__(self):
        self.offset = 0.0

    def __call__(self):
        return time.time() + self.offset


def test_slow_origin_serves_stale_or_502(chaos_stack):
    """An origin slower than the timeout degrades to stale/502, no crash."""
    schedule = TogglingSchedule(Fault.delay(3.0))
    schedule.enabled = False  # warm phase: no faults
    clock = ShiftableClock()
    engine, _, _, proxy = chaos_stack(
        schedule,
        policy=UpstreamPolicy(timeout=0.3, max_attempts=2, backoff=0.01),
        clock=clock,
    )
    warm_url, cold_url = list(PAGES)[0], list(PAGES)[1]
    connection = HttpConnection(proxy.address, proxy.port, timeout=10.0)
    try:
        assert proxy_get(connection, warm_url).status == 200

        schedule.enabled = True
        # Drop pooled (fault-free) connections so new fetches hit the fault,
        # and age the cached copy past its freshness interval so the proxy
        # must revalidate against the now-slow origin.
        proxy.upstream.close()
        clock.offset = 2 * 3600.0
        engine.resources.add(warm_url, size=PAGES[warm_url], last_modified=500.0)

        # The warmed URL revalidates against a now-slow origin -> stale copy.
        stale = proxy_get(connection, warm_url)
        assert stale.status == 200
        assert stale.headers.get("X-Cache") == "stale"
        assert stale.headers.get("Warning") is not None
        assert stale.body == synthetic_body(warm_url, PAGES[warm_url])

        # A never-fetched URL has no stale copy to fall back on -> 502.
        cold = proxy_get(connection, cold_url)
        assert cold.status == 502

        # Origin recovers: the same client keeps working, cache unpoisoned.
        schedule.enabled = False
        proxy.upstream.close()
        fresh = proxy_get(connection, cold_url)
        assert fresh.status == 200
        assert fresh.body == synthetic_body(cold_url, PAGES[cold_url])
    finally:
        connection.close()
    assert proxy.upstream.stats.failures >= 2
    assert proxy.wire_stats.internal_errors == 0


def test_cache_never_poisoned_by_faults(chaos_stack):
    """After arbitrary fault storms, remembered bodies are exact or absent."""
    storm = [
        Fault.garbage(),
        Fault.truncate_after(40),
        Fault.none(),
        Fault.reset_after(10),
        Fault.none(),
    ]
    _, _, _, proxy = chaos_stack(storm)
    connection = HttpConnection(proxy.address, proxy.port, timeout=10.0)
    try:
        for url in PAGES:
            response = proxy_get(connection, url)
            assert_well_formed(url, response)
    finally:
        connection.close()
    for url in PAGES:
        body = proxy.upstream.body_for(url)
        assert body is None or body == synthetic_body(url, PAGES[url]), (
            f"poisoned cache body for {url}"
        )
    assert proxy.wire_stats.internal_errors == 0


def test_chaos_outcomes_deterministic_across_runs():
    """Three identical seeded runs classify every response identically."""
    outcomes = []
    for _ in range(3):
        engine = build_engine()
        plan = [
            Fault.reset_after(60),
            Fault.none(),
            Fault.garbage(),
            Fault.none(),
        ]
        with PiggybackHttpServer(engine, site_host=HOST) as origin:
            with FaultInjectingInterposer(
                (origin.address, origin.port), schedule=plan
            ) as interposer:
                with PiggybackHttpProxy(
                    origins={HOST: (interposer.address, interposer.port)},
                    config=ProxyConfig(name="chaos-proxy"),
                    upstream_policy=FAST_RETRIES,
                ) as proxy:
                    connection = HttpConnection(
                        proxy.address, proxy.port, timeout=10.0
                    )
                    statuses = []
                    try:
                        for url in sorted(PAGES):
                            response = proxy_get(connection, url)
                            assert_well_formed(url, response)
                            statuses.append(response.status)
                    finally:
                        connection.close()
                    assert proxy.active_workers() == 0 or statuses
                outcomes.append(
                    (tuple(statuses), proxy.upstream.stats.failures)
                )
        assert origin.active_workers() == 0
        assert proxy.active_workers() == 0
    assert outcomes[0] == outcomes[1] == outcomes[2]
