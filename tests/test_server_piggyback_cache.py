"""Differential tests for the serving-path piggyback message cache.

The contract: a :class:`PiggybackServer` with the serialized-message cache
enabled must be *observably identical* to one with it disabled — same
statuses, same piggyback messages, and bit-identical ``P-volume`` trailer
bytes — across filter permutations, volume mutations, resource-metadata
changes, and RPV states.  The cache may only change how fast answers are
produced, never what they say.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.filters import ProxyFilter
from repro.core.protocol import OK, ProxyRequest
from repro.httpmodel.piggy_codec import format_p_volume
from repro.server.piggyback_cache import PiggybackMessageCache, canonical_filter
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.probability import ProbabilityVolumes, ProbabilityVolumeStore

URLS = [
    "h/a/page.html",
    "h/a/img.gif",
    "h/a/deep/doc.html",
    "h/b/other.html",
    "h/b/chart.gif",
    "h/c/lone.html",
]

FILTERS = [
    ProxyFilter(),
    ProxyFilter(max_elements=1),
    ProxyFilter(max_elements=0),
    ProxyFilter(min_access_count=2),
    ProxyFilter(max_resource_size=1000),
    ProxyFilter(excluded_content_types=frozenset({"image"})),
    ProxyFilter(min_access_count=1, max_elements=2),
    ProxyFilter.disabled(),
]


def make_resources() -> ResourceStore:
    resources = ResourceStore()
    for index, url in enumerate(URLS):
        resources.add(url, size=500 + 400 * index, last_modified=100.0 + index)
    return resources


def make_pair(store_factory):
    """Two servers over identical state: cached and uncached."""
    cached = PiggybackServer(make_resources(), store_factory(), enable_cache=True)
    plain = PiggybackServer(make_resources(), store_factory(), enable_cache=False)
    return cached, plain


def directory_store():
    return DirectoryVolumeStore(DirectoryVolumeConfig(level=1))


def stable_directory_store():
    return DirectoryVolumeStore(DirectoryVolumeConfig(level=1, move_to_front=False))


def probability_store():
    members = {
        "h/a/page.html": [("h/a/img.gif", 0.9), ("h/a/deep/doc.html", 0.6)],
        "h/a/img.gif": [("h/a/page.html", 0.8)],
        "h/b/other.html": [("h/b/chart.gif", 0.7), ("h/a/page.html", 0.4)],
    }
    return ProbabilityVolumeStore(ProbabilityVolumes(members))


def request(url, t=1000.0, piggy_filter=None, ims=None):
    return ProxyRequest(
        url=url,
        timestamp=t,
        if_modified_since=ims,
        piggyback_filter=piggy_filter or ProxyFilter(),
        source="p1",
    )


def assert_identical(cached_response, plain_response):
    """Observable identity: status, metadata, and the exact trailer bytes.

    Piggyback *messages* are compared by their wire-visible content
    (volume id, element urls/mtimes/sizes) rather than full dataclass
    equality — candidates embed server-internal attributes like
    access_count that never reach the wire, and a cached message
    legitimately replays the counts from build time.
    """
    assert cached_response.status == plain_response.status
    assert cached_response.last_modified == plain_response.last_modified
    assert cached_response.size == plain_response.size
    if plain_response.piggyback is None:
        assert cached_response.piggyback is None
        return
    assert cached_response.piggyback is not None
    expected_wire = format_p_volume(plain_response.piggyback)
    actual_wire = cached_response.piggyback_wire
    if actual_wire is None:
        actual_wire = format_p_volume(cached_response.piggyback)
    assert actual_wire == expected_wire
    assert format_p_volume(cached_response.piggyback) == expected_wire


@pytest.mark.parametrize(
    "store_factory", [directory_store, stable_directory_store, probability_store]
)
@pytest.mark.parametrize("piggy_filter", FILTERS)
def test_cached_matches_uncached_across_filters(store_factory, piggy_filter):
    """Same request stream, same answers, bit-identical trailers."""
    cached, plain = make_pair(store_factory)
    t = 1000.0
    for _round in range(4):
        for url in URLS:
            t += 1.0
            assert_identical(
                cached.handle(request(url, t, piggy_filter)),
                plain.handle(request(url, t, piggy_filter)),
            )


@pytest.mark.parametrize("store_factory", [directory_store, stable_directory_store])
def test_cached_matches_uncached_through_mutations(store_factory):
    """Volume growth, resource mtime changes, and new resources all
    invalidate exactly as the uncached server would observe them."""
    cached, plain = make_pair(store_factory)
    f = ProxyFilter()
    t = 1000.0

    def sweep():
        nonlocal t
        for url in list(cached.resources.urls()):
            t += 1.0
            assert_identical(
                cached.handle(request(url, t, f)), plain.handle(request(url, t, f))
            )

    sweep()
    sweep()  # warmed: second sweep should be serving hits
    for server in (cached, plain):
        server.resources.set_modified("h/a/img.gif", 2000.0)
    sweep()  # mtime change must surface through the cache
    for server in (cached, plain):
        server.resources.add("h/a/new.html", size=640, last_modified=2100.0)
    sweep()  # a new sibling changes volume membership


def test_warm_cache_actually_hits():
    server = PiggybackServer(
        make_resources(), stable_directory_store(), enable_cache=True
    )
    f = ProxyFilter()
    for t in range(6):
        server.handle(request("h/a/page.html", 1000.0 + t, f))
    stats = server.piggyback_cache.stats
    assert stats.hits > 0
    assert stats.hits + stats.misses == 6


def test_rpv_suppression_bypasses_and_does_not_poison_cache():
    server = PiggybackServer(
        make_resources(), stable_directory_store(), enable_cache=True
    )
    f = ProxyFilter()
    server.handle(request("h/a/img.gif", 999.0, f))  # give the volume a sibling
    first = server.handle(request("h/a/page.html", 1000.0, f))
    assert first.piggyback is not None
    volume_id = first.piggyback.volume_id
    suppressed = server.handle(
        request("h/a/page.html", 1001.0, f.with_rpv([volume_id]))
    )
    assert suppressed.piggyback is None
    again = server.handle(request("h/a/page.html", 1002.0, f))
    assert again.piggyback == first.piggyback
    assert again.piggyback_wire == format_p_volume(first.piggyback)


def test_rpv_variants_share_cache_entries():
    """Filters differing only in RPV canonicalize to one cache key."""
    base = ProxyFilter(max_elements=4)
    assert canonical_filter(base) is base
    assert canonical_filter(base.with_rpv([7, 9])) == base


def test_negative_results_are_cached():
    server = PiggybackServer(
        make_resources(), stable_directory_store(), enable_cache=True
    )
    # h/c/lone.html is alone in its volume: the message is always empty.
    f = ProxyFilter()
    for t in range(3):
        response = server.handle(request("h/c/lone.html", 1000.0 + t, f))
        assert response.piggyback is None
    stats = server.piggyback_cache.stats
    assert stats.hits >= 1


def test_dynamic_resources_bypass_cache():
    from repro.workloads.modifications import ModificationConfig, ModificationProcess

    changes = ModificationProcess(
        0.0, 10_000.0, ModificationConfig(fast_fraction=1.0, fast_mean_interval=50.0)
    )
    resources = ResourceStore(changes=changes)
    for url in URLS:
        resources.add(url, size=700)
    assert resources.version is None
    server = PiggybackServer(resources, stable_directory_store(), enable_cache=True)
    for t in range(4):
        server.handle(request("h/a/page.html", 1000.0 + 100 * t))
    stats = server.piggyback_cache.stats
    assert stats.hits == 0 and stats.misses == 0


def test_lru_eviction_is_bounded_and_counted():
    cache = PiggybackMessageCache(max_entries=4)
    server = PiggybackServer(
        make_resources(), stable_directory_store(), piggyback_cache=cache
    )
    t = 1000.0
    for _round in range(3):
        for url in URLS:  # 6 distinct URLs > 4 entries
            t += 1.0
            server.handle(request(url, t))
    assert len(cache) <= 4
    assert cache.stats.evictions > 0
    assert cache.stats.entries <= 4


def test_min_access_count_crossing_invalidates():
    """Admission flips when a sibling crosses the filter's minaccess
    threshold; the cached trailer must flip with it."""
    cached, plain = make_pair(stable_directory_store)
    f = ProxyFilter(min_access_count=2)
    t = 1000.0
    # Drive the sibling's access count up one request at a time; after
    # each bump the piggyback for page.html must match the uncached build.
    for _ in range(4):
        t += 1.0
        assert_identical(
            cached.handle(request("h/a/img.gif", t, f)),
            plain.handle(request("h/a/img.gif", t, f)),
        )
        t += 1.0
        assert_identical(
            cached.handle(request("h/a/page.html", t, f)),
            plain.handle(request("h/a/page.html", t, f)),
        )


def test_concurrent_readers_with_mutation_stay_coherent():
    """Hammer handle() from many threads while a mutator thread bumps
    resource mtimes; every response must equal a fresh uncached build.

    Run under REPRO_LOCKORDER=1 in CI to also verify lock ordering.
    """
    server = PiggybackServer(
        make_resources(), stable_directory_store(), enable_cache=True
    )
    errors: list[str] = []
    barrier = threading.Barrier(5)

    def reader(index: int) -> None:
        barrier.wait()
        for step in range(120):
            url = URLS[(index + step) % len(URLS)]
            response = server.handle(request(url, 5000.0 + step))
            if response.status != OK:
                errors.append(f"bad status {response.status} for {url}")
            if response.piggyback is not None and response.piggyback_wire is not None:
                if response.piggyback_wire != format_p_volume(response.piggyback):
                    errors.append(f"wire mismatch for {url}")

    def mutator() -> None:
        barrier.wait()
        for step in range(40):
            server.resources.set_modified(URLS[step % len(URLS)], 6000.0 + step)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
    threads.append(threading.Thread(target=mutator))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30.0)
    assert not errors, errors[:5]
    # Post-quiesce differential: an uncached server sharing the *same*
    # resources and volume store must answer identically to the cache,
    # whatever interleaving the threads produced.
    oracle = PiggybackServer(server.resources, server.volume_store, enable_cache=False)
    t = 9000.0
    for url in URLS:
        t += 1.0
        plain_response = oracle.handle(request(url, t))
        t += 1.0
        assert_identical(server.handle(request(url, t)), plain_response)
