"""Chunked compiled traces and the on-disk chunk format.

Covers the in-memory :class:`ChunkedCompiledTrace` (id-space agreement
with :class:`CompiledTrace`, restartable iteration), the file format
(roundtrip fidelity, string-delta encoding, trailer preloading), loud
failure on damaged files (CRC, truncation, bad magic/footer — always with
the damaged offset), and the bounded ``compile_trace`` memoization cache.
"""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.traces.chunked import (
    ChunkFileError,
    ChunkWriter,
    open_chunked_trace,
    verify_chunk_file,
    write_chunked_trace,
)
from repro.traces.intern import (
    ChunkedCompiledTrace,
    CompileCache,
    CompiledTrace,
    compile_trace,
)
from repro.traces.records import LogRecord, Trace


def _records(count: int = 300) -> list[LogRecord]:
    out = []
    for i in range(count):
        out.append(
            LogRecord(
                timestamp=float(i * 3),
                source=f"10.0.0.{i % 17}",
                url=f"www.site{i % 5}.example/d{i % 7}/r{i % 41}.html",
                method="GET" if i % 9 else "HEAD",
                status=304 if i % 11 == 0 else 200,
                size=0 if i % 11 == 0 else 100 + (i % 13) * 37,
                last_modified=float(i % 29) if i % 3 else None,
            )
        )
    return out


class TestChunkedCompiledTrace:
    def test_id_space_matches_compiled_trace(self):
        records = _records()
        whole = CompiledTrace(records)
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=7)
        assert chunked.urls.strings == whole.urls.strings
        assert chunked.sources.strings == whole.sources.strings
        assert list(chunked.url_counts()) == list(whole.url_counts())
        assert chunked.wire_bytes() == whole.wire_bytes()
        assert chunked.content_type_ids() == whole.content_type_ids()
        assert chunked.directory_prefix_ids(1) == whole.directory_prefix_ids(1)
        assert len(chunked) == len(whole) == len(records)

    def test_records_roundtrip_in_memory(self):
        records = _records()
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=13)
        assert list(chunked.records()) == records

    def test_chunk_starts_and_lengths(self):
        chunked = ChunkedCompiledTrace.from_records(_records(25), chunk_records=10)
        chunks = list(chunked.chunks())
        assert [c.start for c in chunks] == [0, 10, 20]
        assert [len(c) for c in chunks] == [10, 10, 5]

    def test_chunks_is_restartable(self):
        chunked = ChunkedCompiledTrace.from_records(_records(40), chunk_records=9)
        first = [len(c) for c in chunked.chunks()]
        second = [len(c) for c in chunked.chunks()]
        assert first == second


class TestChunkFileRoundtrip:
    def test_record_fidelity(self, tmp_path):
        records = _records()
        path = str(tmp_path / "t.rpchunk")
        count, chunks = write_chunked_trace(records, path, chunk_records=17)
        assert count == len(records)
        assert chunks == -(-len(records) // 17)
        trace = open_chunked_trace(path)
        assert list(trace.records()) == records

    def test_trailer_preloads_urls_and_counts(self, tmp_path):
        records = _records()
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(records, path, chunk_records=31)
        trace = open_chunked_trace(path)
        # Complete before any chunk is streamed: construction alone.
        whole = CompiledTrace(records)
        assert trace.urls.strings == whole.urls.strings
        assert list(trace.url_counts()) == list(whole.url_counts())

    def test_file_backed_iteration_matches_memory(self, tmp_path):
        records = _records()
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(records, path, chunk_records=23)
        trace = open_chunked_trace(path)
        mem = ChunkedCompiledTrace.from_records(records, chunk_records=23)
        for disk_chunk, mem_chunk in zip(trace.chunks(), mem.chunks()):
            assert disk_chunk.start == mem_chunk.start
            assert list(disk_chunk.timestamps) == list(mem_chunk.timestamps)
            assert list(disk_chunk.url_ids) == list(mem_chunk.url_ids)
            assert list(disk_chunk.source_ids) == list(mem_chunk.source_ids)
            assert list(disk_chunk.statuses) == list(mem_chunk.statuses)

    def test_two_passes_over_one_file(self, tmp_path):
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(_records(), path, chunk_records=11)
        trace = open_chunked_trace(path)
        assert sum(len(c) for c in trace.chunks()) == 300
        assert sum(len(c) for c in trace.chunks()) == 300

    def test_string_tables_are_delta_encoded(self, tmp_path):
        # A trace reusing the same few strings should not rewrite them in
        # every chunk: total file size must stay far below the naive
        # per-chunk-table encoding.
        records = [
            LogRecord(timestamp=float(i), source="s", url="www.x.example/a/p.html")
            for i in range(1000)
        ]
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(records, path, chunk_records=10)  # 100 chunks
        size = (tmp_path / "t.rpchunk").stat().st_size
        assert size < 60_000  # ~43B/record + framing; re-sent tables would triple it

    def test_writer_context_manager_and_counts(self, tmp_path):
        path = str(tmp_path / "t.rpchunk")
        with ChunkWriter(path, chunk_records=8) as writer:
            writer.extend(_records(20))
            assert writer.record_count == 20
        info = verify_chunk_file(path)
        assert info["records"] == 20
        assert info["chunks"] == 3

    def test_verify_reports_shape(self, tmp_path):
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(_records(), path, chunk_records=64)
        info = verify_chunk_file(path)
        assert info["records"] == 300
        assert info["chunks"] == 5
        assert info["urls"] == len({r.url for r in _records()})
        assert info["sources"] == 17


class TestDamagedFiles:
    def _write(self, tmp_path, chunk_records=16):
        path = str(tmp_path / "t.rpchunk")
        write_chunked_trace(_records(120), path, chunk_records=chunk_records)
        return path

    def test_bad_magic(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(open(path, "rb").read())
        data[0] ^= 0xFF
        open(path, "wb").write(bytes(data))
        with pytest.raises(ChunkFileError) as info:
            open_chunked_trace(path)
        assert info.value.offset == 0

    @staticmethod
    def _frame_offsets(data: bytes) -> list[int]:
        """Start offsets of every frame, walked from the file structure."""
        header = struct.Struct("<4sII")
        offsets = []
        offset = 8  # len(MAGIC)
        while offset + header.size <= len(data) - 16:  # stop before footer
            offsets.append(offset)
            _, length, _ = header.unpack_from(data, offset)
            offset += header.size + length
        return offsets

    def test_corrupt_chunk_payload_fails_with_offset(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(open(path, "rb").read())
        second = self._frame_offsets(bytes(data))[1]
        data[second + 20] ^= 0x01  # a byte inside the second chunk's payload
        open(path, "wb").write(bytes(data))
        trace = open_chunked_trace(path)  # trailer still intact
        with pytest.raises(ChunkFileError) as info:
            list(trace.chunks())
        assert info.value.offset == second
        assert "crc" in str(info.value).lower()

    def test_corrupt_trailer_fails_at_open(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(open(path, "rb").read())
        (marker,) = struct.unpack_from("<Q", data, len(data) - 16)  # footer
        data[marker + 15] ^= 0x01
        open(path, "wb").write(bytes(data))
        with pytest.raises(ChunkFileError) as info:
            open_chunked_trace(path)
        assert info.value.offset == marker

    def test_truncated_file(self, tmp_path):
        path = self._write(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[: len(data) // 2])
        with pytest.raises(ChunkFileError):
            open_chunked_trace(path)

    def test_truncated_mid_stream(self, tmp_path):
        # Keep the footer bytes but cut a chunk frame short: the footer
        # offset then points past EOF or a frame read runs out of bytes.
        path = self._write(tmp_path)
        data = open(path, "rb").read()
        open(path, "wb").write(data[:50] + data[-10:])
        with pytest.raises(ChunkFileError):
            open_chunked_trace(path)

    def test_verify_walks_all_frames(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(open(path, "rb").read())
        first = self._frame_offsets(bytes(data))[0]
        data[first + 16] ^= 0x01
        open(path, "wb").write(bytes(data))
        with pytest.raises(ChunkFileError) as info:
            verify_chunk_file(path)
        assert info.value.offset == first

    def test_empty_file(self, tmp_path):
        path = str(tmp_path / "empty.rpchunk")
        open(path, "wb").close()
        with pytest.raises(ChunkFileError):
            open_chunked_trace(path)

    def test_empty_trace_roundtrips(self, tmp_path):
        path = str(tmp_path / "zero.rpchunk")
        count, chunks = write_chunked_trace([], path)
        assert (count, chunks) == (0, 0)
        trace = open_chunked_trace(path)
        assert len(trace) == 0
        assert list(trace.chunks()) == []


class TestCompileCache:
    def test_lru_eviction_bounds_entries(self):
        cache = CompileCache(capacity=2)
        traces = [Trace(_records(10)) for _ in range(3)]
        for trace in traces:
            cache.put(trace, CompiledTrace(list(trace)))
        assert len(cache) == 2
        assert cache.get(traces[0]) is None  # oldest evicted
        assert cache.get(traces[2]) is not None

    def test_get_refreshes_recency(self):
        cache = CompileCache(capacity=2)
        traces = [Trace(_records(10)) for _ in range(3)]
        cache.put(traces[0], CompiledTrace(list(traces[0])))
        cache.put(traces[1], CompiledTrace(list(traces[1])))
        cache.get(traces[0])  # now most recent
        cache.put(traces[2], CompiledTrace(list(traces[2])))
        assert cache.get(traces[0]) is not None
        assert cache.get(traces[1]) is None

    def test_explicit_evict(self):
        cache = CompileCache(capacity=4)
        trace = Trace(_records(10))
        cache.put(trace, CompiledTrace(list(trace)))
        assert cache.evict(trace) == 1
        assert cache.get(trace) is None
        assert cache.evict(trace) == 0

    def test_evict_all(self):
        cache = CompileCache(capacity=4)
        traces = [Trace(_records(10)) for _ in range(3)]
        for trace in traces:
            cache.put(trace, CompiledTrace(list(trace)))
        assert cache.evict() == 3
        assert len(cache) == 0

    def test_compile_trace_hits_telemetry(self):
        import repro.telemetry as telemetry
        from repro.traces import intern as intern_module

        trace = Trace(_records(20))
        telemetry.enable()
        try:
            hits_before = intern_module._TEL_COMPILE_CACHE_HITS.value
            misses_before = intern_module._TEL_COMPILE_CACHE_MISSES.value
            first = compile_trace(trace)
            second = compile_trace(trace)
        finally:
            telemetry.disable()
        assert first is second
        assert intern_module._TEL_COMPILE_CACHE_MISSES.value == misses_before + 1
        assert intern_module._TEL_COMPILE_CACHE_HITS.value >= hits_before + 1

    def test_compiled_forms_pass_through(self):
        records = _records(15)
        compiled = CompiledTrace(records)
        chunked = ChunkedCompiledTrace.from_records(records, chunk_records=4)
        assert compile_trace(compiled) is compiled
        assert compile_trace(chunked) is chunked
