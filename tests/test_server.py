"""Unit tests for ResourceStore and PiggybackServer."""

import pytest

from repro.core.filters import ProxyFilter
from repro.core.protocol import NOT_FOUND, NOT_MODIFIED, OK, ProxyRequest
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.workloads.modifications import ModificationConfig, ModificationProcess
from repro.workloads.sitegen import SiteConfig, generate_site


def make_server():
    resources = ResourceStore()
    resources.add("h/a/page.html", size=2000, last_modified=100.0)
    resources.add("h/a/img.gif", size=900, last_modified=50.0)
    resources.add("h/b/other.html", size=1500, last_modified=80.0)
    store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    return PiggybackServer(resources, store)


def get(server, url, t=1000.0, ims=None, piggy_filter=None):
    return server.handle(
        ProxyRequest(
            url=url,
            timestamp=t,
            if_modified_since=ims,
            piggyback_filter=piggy_filter or ProxyFilter(),
            source="p1",
        )
    )


class TestResourceStore:
    def test_add_and_get(self):
        store = ResourceStore()
        record = store.add("h/x.html", size=10)
        assert store.get("h/x.html") is record
        assert record.content_type == "text"
        assert "h/x.html" in store and len(store) == 1

    def test_last_modified_static(self):
        store = ResourceStore()
        store.add("h/x.html", last_modified=42.0)
        assert store.last_modified("h/x.html", 1000.0) == 42.0
        store.set_modified("h/x.html", 500.0)
        assert store.last_modified("h/x.html", 1000.0) == 500.0

    def test_last_modified_with_process(self):
        changes = ModificationProcess(
            0.0, 10_000.0,
            ModificationConfig(fast_fraction=1.0, fast_mean_interval=100.0),
        )
        store = ResourceStore(changes=changes)
        store.add("h/x.html")
        assert store.last_modified("h/x.html", 5000.0) <= 5000.0

    def test_unknown_url_raises(self):
        store = ResourceStore()
        with pytest.raises(KeyError):
            store.last_modified("h/none", 0.0)
        with pytest.raises(KeyError):
            store.set_modified("h/none", 0.0)

    def test_from_site_covers_all_resources(self):
        site = generate_site(SiteConfig(page_count=10, directory_count=3, seed=1))
        store = ResourceStore.from_site(site)
        assert store.urls() == set(site.resources)


class TestRequestHandling:
    def test_ok_response(self):
        server = make_server()
        response = get(server, "h/a/page.html")
        assert response.status == OK
        assert response.size == 2000
        assert response.last_modified == 100.0

    def test_not_found(self):
        server = make_server()
        response = get(server, "h/missing.html")
        assert response.status == NOT_FOUND
        assert server.stats.not_found_responses == 1

    def test_if_modified_since_validation(self):
        server = make_server()
        fresh = get(server, "h/a/page.html", ims=100.0)
        assert fresh.status == NOT_MODIFIED
        assert fresh.size == 0
        stale = get(server, "h/a/page.html", ims=99.0)
        assert stale.status == OK

    def test_not_modified_still_carries_piggyback(self):
        server = make_server()
        get(server, "h/a/img.gif")  # populate the volume
        response = get(server, "h/a/page.html", ims=100.0)
        assert response.status == NOT_MODIFIED
        assert response.piggyback is not None
        assert "h/a/img.gif" in response.piggyback.urls()


class TestPiggybackGeneration:
    def test_piggyback_from_same_volume_only(self):
        server = make_server()
        get(server, "h/a/img.gif", t=1.0)
        get(server, "h/b/other.html", t=2.0)
        response = get(server, "h/a/page.html", t=3.0)
        assert response.piggyback.urls() == ["h/a/img.gif"]

    def test_disabled_filter_suppresses_piggyback(self):
        server = make_server()
        get(server, "h/a/img.gif", t=1.0)
        response = get(server, "h/a/page.html", piggy_filter=ProxyFilter.disabled())
        assert response.piggyback is None

    def test_requested_resource_not_in_own_piggyback(self):
        server = make_server()
        get(server, "h/a/page.html", t=1.0)
        response = get(server, "h/a/page.html", t=2.0)
        if response.piggyback is not None:
            assert "h/a/page.html" not in response.piggyback.urls()

    def test_rpv_filter_suppresses_repeat_volume(self):
        server = make_server()
        get(server, "h/a/img.gif", t=1.0)
        first = get(server, "h/a/page.html", t=2.0)
        volume_id = first.piggyback.volume_id
        second = get(
            server, "h/a/page.html", t=3.0,
            piggy_filter=ProxyFilter(recently_piggybacked=frozenset({volume_id})),
        )
        assert second.piggyback is None

    def test_stats_accumulate(self):
        server = make_server()
        get(server, "h/a/img.gif", t=1.0)
        get(server, "h/a/page.html", t=2.0)
        assert server.stats.requests == 2
        assert server.stats.ok_responses == 2
        assert server.stats.piggyback_messages >= 1
        assert server.stats.piggyback_elements >= 1
        assert server.stats.piggyback_bytes > 0
        assert server.stats.mean_piggyback_size >= 1.0
        assert 0.0 < server.stats.piggyback_rate <= 1.0

    def test_volume_maintenance_sees_requests(self):
        server = make_server()
        get(server, "h/a/img.gif", t=1.0)
        get(server, "h/a/page.html", t=2.0)
        # img.gif then page.html were observed; a third request's piggyback
        # leads with the most recently accessed element.
        response = get(server, "h/a/img.gif", t=3.0)
        assert response.piggyback.urls()[0] == "h/a/page.html"
