"""Tests for snapshot/meta persistence: atomicity, checksums, and the
resource-store codec."""

from __future__ import annotations

import json

import pytest

import durability_driver as driver
from repro.server.durability import (
    SNAPSHOT_NAME,
    StateFormatError,
    StateMeta,
    load_meta,
    load_snapshot,
    write_snapshot,
)
from repro.server.durability.snapshot import (
    capture_resources,
    journal_generation,
    journal_name,
    restore_resources,
    write_meta,
)
from repro.server.resources import ResourceStore
from repro.volumes.state import capture_store_state


def _store_state():
    store = driver.feed(driver.make_store(), driver.make_records(3, 25))
    return store, capture_store_state(store)


def test_snapshot_roundtrip(tmp_path):
    store, state = _store_state()
    resources = ResourceStore()
    resources.add("www.s.example/a.html", size=10, last_modified=5.0)
    resources.add("www.s.example/b.gif", size=20, last_modified=6.0)
    size = write_snapshot(
        tmp_path,
        generation=4,
        state_epoch_base=1 << 40,
        last_seq=25,
        store_state=state,
        resources_state=capture_resources(resources),
    )
    assert size == (tmp_path / SNAPSHOT_NAME).stat().st_size

    loaded = load_snapshot(tmp_path)
    assert loaded is not None
    assert (loaded.generation, loaded.state_epoch_base, loaded.last_seq) == (
        4, 1 << 40, 25,
    )
    restored = driver.make_store()
    from repro.volumes.state import restore_store_state

    restore_store_state(restored, loaded.store_state)
    urls = driver.record_urls(driver.make_records(3, 25))
    assert driver.trailer_map(restored, urls) == driver.trailer_map(store, urls)

    fresh_resources = ResourceStore()
    restore_resources(fresh_resources, loaded.resources_state)
    assert fresh_resources.urls() == resources.urls()
    assert fresh_resources.version == resources.version
    record = fresh_resources.get("www.s.example/a.html")
    assert record is not None and record.size == 10 and record.last_modified == 5.0


def test_missing_snapshot_is_none_and_tmp_is_ignored(tmp_path):
    assert load_snapshot(tmp_path) is None
    (tmp_path / (SNAPSHOT_NAME + ".tmp")).write_text("{ torn")
    assert load_snapshot(tmp_path) is None


def test_snapshot_write_leaves_no_temp_file(tmp_path):
    _, state = _store_state()
    write_snapshot(
        tmp_path, generation=1, state_epoch_base=0, last_seq=1,
        store_state=state, resources_state=None,
    )
    assert [p.name for p in tmp_path.iterdir()] == [SNAPSHOT_NAME]


def test_snapshot_checksum_mismatch_raises(tmp_path):
    _, state = _store_state()
    write_snapshot(
        tmp_path, generation=1, state_epoch_base=0, last_seq=1,
        store_state=state, resources_state=None,
    )
    path = tmp_path / SNAPSHOT_NAME
    payload = json.loads(path.read_text())
    payload["last_seq"] = 999  # metadata is fine to edit...
    assert load_snapshot(tmp_path)  # sanity: still valid before the edit lands
    payload["store"]["state"]["touch_counter"] = 12345  # ...state is not
    path.write_text(json.dumps(payload))
    with pytest.raises(StateFormatError, match="checksum"):
        load_snapshot(tmp_path)


def test_snapshot_garbage_raises(tmp_path):
    (tmp_path / SNAPSHOT_NAME).write_bytes(b"\x00\xffnot json")
    with pytest.raises(StateFormatError, match="JSON"):
        load_snapshot(tmp_path)


def test_snapshot_wrong_format_or_version_raises(tmp_path):
    path = tmp_path / SNAPSHOT_NAME
    path.write_text(json.dumps({"format": "something-else", "version": 1}))
    with pytest.raises(StateFormatError):
        load_snapshot(tmp_path)
    path.write_text(json.dumps({"format": "repro-state-snapshot", "version": 99}))
    with pytest.raises(StateFormatError, match="version"):
        load_snapshot(tmp_path)


def test_meta_roundtrip_and_absence(tmp_path):
    assert load_meta(tmp_path) is None
    write_meta(tmp_path, StateMeta(generation=3, epoch_base=2 << 40))
    assert load_meta(tmp_path) == StateMeta(generation=3, epoch_base=2 << 40)
    # Rewrites replace atomically, no temp residue.
    write_meta(tmp_path, StateMeta(generation=4, epoch_base=3 << 40))
    assert load_meta(tmp_path) == StateMeta(generation=4, epoch_base=3 << 40)
    assert all(not p.name.endswith(".tmp") for p in tmp_path.iterdir())


def test_corrupt_meta_raises(tmp_path):
    (tmp_path / "meta.json").write_text("[1, 2, 3]")
    with pytest.raises(StateFormatError):
        load_meta(tmp_path)


def test_journal_names_roundtrip():
    assert journal_name(7) == "journal-00000007.log"
    assert journal_generation("journal-00000007.log") == 7
    assert journal_generation("journal-00000007.log.tmp") is None
    assert journal_generation("snapshot.json") is None
    assert journal_generation("journal-abc.log") is None
