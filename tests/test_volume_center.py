"""Unit tests for the transparent volume center."""

import pytest

from repro.core.filters import ProxyFilter
from repro.core.protocol import OK, ProxyRequest, ServerResponse
from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.server.volume_center import TransparentVolumeCenter
from repro.volumes.sitewide import CrossHostVolumeStore, SiteWideVolumeStore


def exchange(url, t, piggy_filter=None, piggyback=None):
    request = ProxyRequest(
        url=url, timestamp=t,
        piggyback_filter=piggy_filter or ProxyFilter(), source="p1",
    )
    response = ServerResponse(
        url=url, status=OK, timestamp=t, last_modified=1.0, size=100,
        piggyback=piggyback,
    )
    return request, response


class TestAnnotation:
    def test_annotates_after_learning(self):
        center = TransparentVolumeCenter()
        center.annotate(*exchange("h1/a/x.html", 1.0))
        annotated = center.annotate(*exchange("h1/a/y.html", 2.0))
        assert annotated.piggyback is not None
        assert annotated.piggyback.urls() == ["h1/a/x.html"]
        assert center.stats.annotated_responses == 1

    def test_per_host_stores_isolated(self):
        center = TransparentVolumeCenter()
        center.annotate(*exchange("h1/a/x.html", 1.0))
        annotated = center.annotate(*exchange("h2/a/y.html", 2.0))
        assert annotated.piggyback is None
        assert center.stats.hosts_tracked == 2

    def test_shared_store_mixes_hosts(self):
        center = TransparentVolumeCenter(shared_store=CrossHostVolumeStore())
        center.annotate(*exchange("h1/a/x.html", 1.0))
        annotated = center.annotate(*exchange("h2/b/y.html", 2.0))
        # Site-wide shared store: piggyback can name another host's resource.
        assert annotated.piggyback is not None
        assert "h1/a/x.html" in annotated.piggyback.urls()

    def test_disabled_filter_passes_through(self):
        center = TransparentVolumeCenter()
        center.annotate(*exchange("h1/a/x.html", 1.0))
        request, response = exchange("h1/a/y.html", 2.0,
                                     piggy_filter=ProxyFilter.disabled())
        annotated = center.annotate(request, response)
        assert annotated.piggyback is None
        assert center.stats.observed_responses == 2

    def test_origin_piggyback_left_alone(self):
        center = TransparentVolumeCenter()
        center.annotate(*exchange("h1/a/x.html", 1.0))
        origin_message = PiggybackMessage(
            volume_id=9, elements=(PiggybackElement("h1/a/z.html"),)
        )
        request, response = exchange("h1/a/y.html", 2.0, piggyback=origin_message)
        annotated = center.annotate(request, response)
        assert annotated.piggyback is origin_message
        assert center.stats.replaced_piggybacks == 1

    def test_factory_and_shared_mutually_exclusive(self):
        with pytest.raises(ValueError):
            TransparentVolumeCenter(
                store_factory=SiteWideVolumeStore, shared_store=SiteWideVolumeStore()
            )

    def test_custom_factory_used_per_host(self):
        created = []

        def factory():
            store = SiteWideVolumeStore()
            created.append(store)
            return store

        center = TransparentVolumeCenter(store_factory=factory)
        center.annotate(*exchange("h1/a.html", 1.0))
        center.annotate(*exchange("h2/b.html", 2.0))
        assert len(created) == 2
