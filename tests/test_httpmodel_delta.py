"""Unit and property tests for delta encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.httpmodel.delta import (
    DeltaError,
    apply_delta,
    delta_stats,
    encode_delta,
)


class TestRoundTrip:
    def test_identical_versions(self):
        body = b"The quick brown fox jumps over the lazy dog" * 10
        delta = encode_delta(body, body)
        assert apply_delta(body, delta) == body
        assert len(delta) < len(body) / 4

    def test_small_edit_small_delta(self):
        old = (b"<html><body>" + b"paragraph one. " * 50
               + b"paragraph two. " * 50 + b"</body></html>")
        new = old.replace(b"paragraph one. " * 1, b"paragraph ONE! ", 1)
        delta = encode_delta(old, new)
        assert apply_delta(old, delta) == new
        # "most changes are small, relative to the size of the resource"
        assert len(delta) < len(new) / 4

    def test_empty_old(self):
        new = b"entirely new content"
        delta = encode_delta(b"", new)
        assert apply_delta(b"", delta) == new

    def test_empty_new(self):
        delta = encode_delta(b"anything", b"")
        assert apply_delta(b"anything", delta) == b""

    def test_completely_different(self):
        old = b"a" * 500
        new = b"b" * 500
        delta = encode_delta(old, new)
        assert apply_delta(old, delta) == new

    def test_appended_content(self):
        old = b"stable prefix " * 40
        new = old + b"breaking news!"
        delta = encode_delta(old, new)
        assert apply_delta(old, delta) == new
        assert len(delta) < 80

    def test_prepended_content(self):
        old = b"0123456789abcdef" * 30
        new = b"NEW HEADER " + old
        delta = encode_delta(old, new)
        assert apply_delta(old, delta) == new
        assert len(delta) < 80


class TestStats:
    def test_savings_for_small_change(self):
        old = bytes(range(256)) * 40
        new = old[:5000] + b"XX" + old[5002:]
        stats = delta_stats(old, new)
        assert stats.new_size == len(new)
        assert stats.savings > 0.8 * len(new)
        assert stats.ratio < 0.2

    def test_ratio_for_total_rewrite(self):
        stats = delta_stats(b"a" * 100, b"b" * 100)
        assert stats.ratio >= 1.0  # framing makes it slightly worse

    def test_empty_new_ratio(self):
        assert delta_stats(b"abc", b"").ratio == 0.0


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(DeltaError):
            apply_delta(b"old", b"XXXX\x01")

    def test_bad_version(self):
        with pytest.raises(DeltaError):
            apply_delta(b"old", b"RDLT\x63")

    def test_truncated_copy(self):
        with pytest.raises(DeltaError):
            apply_delta(b"old", b"RDLT\x01\x01\x00\x00")

    def test_copy_out_of_range(self):
        import struct
        delta = b"RDLT\x01\x01" + struct.pack(">II", 100, 50)
        with pytest.raises(DeltaError):
            apply_delta(b"short", delta)

    def test_truncated_insert(self):
        import struct
        delta = b"RDLT\x01\x02" + struct.pack(">I", 10) + b"abc"
        with pytest.raises(DeltaError):
            apply_delta(b"", delta)

    def test_unknown_op(self):
        with pytest.raises(DeltaError):
            apply_delta(b"", b"RDLT\x01\x7f")

    def test_tiny_block_rejected(self):
        with pytest.raises(ValueError):
            encode_delta(b"a", b"b", block=2)


class TestProperties:
    @given(st.binary(max_size=3000), st.binary(max_size=3000))
    def test_round_trip_arbitrary_pairs(self, old, new):
        assert apply_delta(old, encode_delta(old, new)) == new

    @given(st.binary(min_size=200, max_size=2000),
           st.integers(min_value=0, max_value=199),
           st.binary(max_size=30))
    def test_round_trip_point_edits(self, old, position, patch):
        new = old[:position] + patch + old[position + len(patch):]
        assert apply_delta(old, encode_delta(old, new)) == new
