"""Unit tests for the Headers collection."""

import pytest

from repro.httpmodel.headers import Headers


class TestBasics:
    def test_add_and_get_case_insensitive(self):
        headers = Headers()
        headers.add("Content-Type", "text/html")
        assert headers.get("content-type") == "text/html"
        assert "CONTENT-TYPE" in headers

    def test_get_default(self):
        assert Headers().get("X-Missing", "fallback") == "fallback"
        assert Headers().get("X-Missing") is None

    def test_multiple_values_comma_joined(self):
        headers = Headers()
        headers.add("Accept", "text/html")
        headers.add("Accept", "image/gif")
        assert headers.get("Accept") == "text/html, image/gif"
        assert headers.get_all("accept") == ["text/html", "image/gif"]

    def test_set_replaces_all(self):
        headers = Headers([("A", "1"), ("a", "2")])
        headers.set("A", "3")
        assert headers.get_all("a") == ["3"]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers
        assert len(headers) == 1

    def test_equality_is_case_insensitive_on_names(self):
        assert Headers([("A", "1")]) == Headers([("a", "1")])
        assert Headers([("A", "1")]) != Headers([("A", "2")])

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        clone = original.copy()
        clone.add("B", "2")
        assert "B" not in original

    def test_crlf_injection_rejected(self):
        headers = Headers()
        with pytest.raises(ValueError):
            headers.add("Bad", "value\r\nInjected: yes")
        with pytest.raises(ValueError):
            headers.add("Bad\n", "v")


class TestSerialization:
    def test_serialize_format(self):
        headers = Headers([("Host", "example.org"), ("TE", "chunked")])
        assert headers.serialize() == b"Host: example.org\r\nTE: chunked\r\n"

    def test_parse_block_round_trip(self):
        original = Headers([("Host", "example.org"), ("X-Y", "a, b")])
        parsed = Headers.parse_block(original.serialize())
        assert parsed == original

    def test_parse_block_strips_whitespace(self):
        parsed = Headers.parse_block(b"Name:   padded value  \r\n")
        assert parsed.get("Name") == "padded value"

    def test_parse_block_rejects_missing_colon(self):
        with pytest.raises(ValueError):
            Headers.parse_block(b"no colon here\r\n")

    def test_parse_empty_block(self):
        assert len(Headers.parse_block(b"")) == 0


class TestLookupIndexInvariants:
    """The casefolded lookup index must stay a faithful mirror of the
    ordered item list through every mutation sequence."""

    def test_insertion_order_and_duplicates_preserved(self):
        headers = Headers()
        headers.add("Set-Cookie", "a=1")
        headers.add("Host", "example.org")
        headers.add("set-cookie", "b=2")
        assert list(headers) == [
            ("Set-Cookie", "a=1"), ("Host", "example.org"), ("set-cookie", "b=2")
        ]
        assert headers.get("SET-COOKIE") == "a=1, b=2"
        assert headers.get_all("set-Cookie") == ["a=1", "b=2"]

    def test_set_moves_field_to_end(self):
        headers = Headers([("A", "1"), ("B", "2"), ("a", "3")])
        headers.set("A", "9")
        assert list(headers) == [("B", "2"), ("A", "9")]
        assert headers.get("a") == "9"

    def test_remove_then_contains_and_get(self):
        headers = Headers([("A", "1"), ("B", "2")])
        headers.remove("a")
        assert "A" not in headers
        assert headers.get("A") is None
        assert headers.get_all("A") == []
        assert list(headers) == [("B", "2")]

    def test_remove_absent_is_noop(self):
        headers = Headers([("A", "1")])
        headers.remove("missing")
        assert list(headers) == [("A", "1")]

    def test_serialize_cache_invalidated_by_every_mutator(self):
        headers = Headers([("A", "1")])
        assert headers.serialize() == b"A: 1\r\n"
        headers.add("B", "2")
        assert headers.serialize() == b"A: 1\r\nB: 2\r\n"
        headers.set("A", "9")
        assert headers.serialize() == b"B: 2\r\nA: 9\r\n"
        headers.remove("B")
        assert headers.serialize() == b"A: 9\r\n"

    def test_copy_shares_no_mutable_state(self):
        original = Headers([("A", "1"), ("A", "2")])
        clone = original.copy()
        clone.add("A", "3")
        clone.remove("A")
        assert original.get_all("A") == ["1", "2"]
        assert original.serialize() == b"A: 1\r\nA: 2\r\n"

    def test_write_to_appends_serialized_block(self):
        headers = Headers([("A", "1"), ("B", "2")])
        out = bytearray(b"GET / HTTP/1.1\r\n")
        headers.write_to(out)
        assert bytes(out) == b"GET / HTTP/1.1\r\nA: 1\r\nB: 2\r\n"

