"""Unit tests for directory-based volumes."""

import pytest

from repro.volumes.base import VolumeIdAllocator
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.sitewide import SiteWideVolumeStore

from conftest import make_record


def feed(store, specs):
    """specs: iterable of (time, url) or (time, source, url)."""
    for spec in specs:
        if len(spec) == 2:
            t, url = spec
            store.observe(make_record(t, "c1", url))
        else:
            t, source, url = spec
            store.observe(make_record(t, source, url))


class TestVolumeIdAllocator:
    def test_stable_ids(self):
        allocator = VolumeIdAllocator()
        first = allocator.id_for("a")
        second = allocator.id_for("b")
        assert allocator.id_for("a") == first
        assert first != second

    def test_dense_from_zero(self):
        allocator = VolumeIdAllocator()
        assert allocator.id_for("x") == 0
        assert allocator.id_for("y") == 1


class TestVolumeMembership:
    def test_level1_groups_by_first_directory(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        feed(store, [(0.0, "h/a/p.html"), (1.0, "h/a/d/q.html"), (2.0, "h/f/r.html")])
        lookup = store.lookup("h/a/x.html").materialized()
        urls = [c.url for c in lookup.candidates]
        assert set(urls) == {"h/a/p.html", "h/a/d/q.html"}
        assert store.volume_count() == 2

    def test_level0_is_site_wide(self):
        store = SiteWideVolumeStore()
        feed(store, [(0.0, "h/a/p.html"), (1.0, "h/f/r.html")])
        lookup = store.lookup("h/anything.html").materialized()
        assert {c.url for c in lookup.candidates} == {"h/a/p.html", "h/f/r.html"}
        assert store.volume_count() == 1

    def test_lookup_unknown_volume_returns_none(self):
        store = DirectoryVolumeStore()
        assert store.lookup("h/nowhere/x.html") is None

    def test_same_volume_same_id(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        feed(store, [(0.0, "h/a/p.html")])
        first = store.lookup("h/a/p.html").volume_id
        feed(store, [(1.0, "h/a/q.html")])
        assert store.lookup("h/a/q.html").volume_id == first


class TestMoveToFront:
    def test_most_recently_accessed_first(self):
        store = DirectoryVolumeStore(
            DirectoryVolumeConfig(level=1, partition_by_type=False)
        )
        feed(store, [(0.0, "h/a/1.html"), (1.0, "h/a/2.html"), (2.0, "h/a/3.html"),
                     (3.0, "h/a/1.html")])
        urls = [c.url for c in store.lookup("h/a/x.html").candidates]
        assert urls == ["h/a/1.html", "h/a/3.html", "h/a/2.html"]

    def test_plain_fifo_keeps_insertion_order(self):
        store = DirectoryVolumeStore(
            DirectoryVolumeConfig(level=1, partition_by_type=False, move_to_front=False)
        )
        feed(store, [(0.0, "h/a/1.html"), (1.0, "h/a/2.html"), (2.0, "h/a/1.html")])
        urls = [c.url for c in store.lookup("h/a/x.html").candidates]
        assert urls == ["h/a/2.html", "h/a/1.html"]

    def test_partitioned_merge_is_globally_recency_ordered(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        feed(store, [(0.0, "h/a/1.html"), (1.0, "h/a/i.gif"), (2.0, "h/a/2.html"),
                     (3.0, "h/a/j.gif")])
        urls = [c.url for c in store.lookup("h/a/x.html").candidates]
        assert urls == ["h/a/j.gif", "h/a/2.html", "h/a/i.gif", "h/a/1.html"]


class TestMaintenance:
    def test_access_counts_accumulate(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        feed(store, [(0.0, "h/a/1.html"), (1.0, "h/a/1.html"), (2.0, "h/a/2.html")])
        by_url = {c.url: c for c in store.lookup("h/a/x.html").candidates}
        assert by_url["h/a/1.html"].access_count == 2
        assert by_url["h/a/2.html"].access_count == 1

    def test_metadata_updates_with_latest_observation(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        store.observe(make_record(0.0, "c1", "h/a/1.html", size=100, last_modified=1.0))
        store.observe(make_record(5.0, "c1", "h/a/1.html", size=250, last_modified=4.0))
        candidate = next(iter(store.lookup("h/a/z.html").candidates))
        assert candidate.size == 250
        assert candidate.last_modified == 4.0

    def test_volume_size_bound_trims_tail(self):
        store = DirectoryVolumeStore(
            DirectoryVolumeConfig(level=1, max_volume_size=3, partition_by_type=False)
        )
        feed(store, [(float(i), f"h/a/p{i}.html") for i in range(6)])
        assert store.volume_size("h/a/x.html") == 3
        urls = {c.url for c in store.lookup("h/a/x.html").candidates}
        # The most recently touched three survive.
        assert urls == {"h/a/p3.html", "h/a/p4.html", "h/a/p5.html"}

    def test_trim_balances_partitions(self):
        store = DirectoryVolumeStore(
            DirectoryVolumeConfig(level=1, max_volume_size=4, partition_by_type=True)
        )
        feed(store, [(float(i), f"h/a/p{i}.html") for i in range(4)])
        feed(store, [(10.0 + i, f"h/a/i{i}.gif") for i in range(4)])
        by_type = {}
        for c in store.lookup("h/a/x.html").candidates:
            by_type[c.content_type] = by_type.get(c.content_type, 0) + 1
        # Trimming pops from the largest partition, so neither type floods.
        assert by_type.get("image", 0) >= 1
        assert by_type.get("text", 0) >= 1

    def test_content_types_inferred(self):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        feed(store, [(0.0, "h/a/p.html"), (1.0, "h/a/i.gif")])
        types = {c.url: c.content_type for c in store.lookup("h/a/x").candidates}
        assert types == {"h/a/p.html": "text", "h/a/i.gif": "image"}


class TestValidation:
    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DirectoryVolumeConfig(level=-1)
        with pytest.raises(ValueError):
            DirectoryVolumeConfig(max_volume_size=0)
