"""Unit tests for the browsing-session model."""

import random

import pytest

from repro.workloads.sessions import SessionConfig, SessionGenerator
from repro.workloads.sitegen import SiteConfig, generate_site


@pytest.fixture(scope="module")
def site():
    return generate_site(
        SiteConfig(host="www.s.example", page_count=60, directory_count=8,
                   mean_images_per_page=3.0, seed=5)
    )


class TestSessionGeneration:
    def test_events_in_time_order_per_kind(self, site):
        generator = SessionGenerator(site)
        events = generator.generate_session(random.Random(1), 100.0)
        assert events[0].timestamp == 100.0
        page_times = [e.timestamp for e in events if not e.is_embedded]
        assert page_times == sorted(page_times)

    def test_first_event_is_a_page(self, site):
        generator = SessionGenerator(site)
        events = generator.generate_session(random.Random(2), 0.0)
        assert not events[0].is_embedded
        assert events[0].url in site.pages

    def test_embedded_events_follow_their_page_closely(self, site):
        config = SessionConfig(image_fetch_probability=1.0, mean_image_gap=0.2)
        generator = SessionGenerator(site, config)
        rng = random.Random(3)
        for _ in range(20):
            events = generator.generate_session(rng, 0.0)
            last_page_time = None
            for event in events:
                if not event.is_embedded:
                    last_page_time = event.timestamp
                else:
                    assert last_page_time is not None
                    assert event.timestamp >= last_page_time

    def test_embedded_urls_belong_to_preceding_page(self, site):
        config = SessionConfig(image_fetch_probability=1.0)
        generator = SessionGenerator(site, config)
        events = generator.generate_session(random.Random(4), 0.0)
        current_page = None
        for event in events:
            if not event.is_embedded:
                current_page = site.pages[event.url]
            else:
                assert event.url in current_page.embedded

    def test_zero_image_probability_yields_only_pages(self, site):
        config = SessionConfig(image_fetch_probability=0.0)
        generator = SessionGenerator(site, config)
        events = generator.generate_session(random.Random(5), 0.0)
        assert all(not e.is_embedded for e in events)

    def test_mean_session_length_tracks_config(self, site):
        short = SessionConfig(mean_pages_per_session=1.0)
        long = SessionConfig(mean_pages_per_session=10.0)
        rng = random.Random(6)
        count_pages = lambda cfg: sum(
            sum(1 for e in SessionGenerator(site, cfg).generate_session(rng, 0.0)
                if not e.is_embedded)
            for _ in range(100)
        )
        assert count_pages(long) > 2 * count_pages(short)

    def test_deterministic_with_seed(self, site):
        generator = SessionGenerator(site)
        a = generator.generate_session(random.Random(7), 50.0)
        b = generator.generate_session(random.Random(7), 50.0)
        assert a == b

    def test_think_time_spaces_pages(self, site):
        config = SessionConfig(mean_think_time=100.0, image_fetch_probability=0.0,
                               mean_pages_per_session=20.0)
        generator = SessionGenerator(site, config)
        events = generator.generate_session(random.Random(8), 0.0)
        gaps = [b.timestamp - a.timestamp for a, b in zip(events, events[1:])]
        if gaps:
            assert sum(gaps) / len(gaps) > 10.0


class TestValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_pages_per_session=0.0)
        with pytest.raises(ValueError):
            SessionConfig(follow_link_probability=2.0)
        with pytest.raises(ValueError):
            SessionConfig(image_fetch_probability=-1.0)
        with pytest.raises(ValueError):
            SessionConfig(mean_think_time=0.0)
