"""Unit tests for the durability journal: framing, fsync contract, and
the tail-tolerant reader.

The reader's tolerance is exhaustively characterized: a journal truncated
at *every possible byte offset* must decode to a clean prefix of the
original records and report the torn tail — never raise, never invent a
record.
"""

from __future__ import annotations

import json
import random
import struct
import zlib

import pytest

from repro.server.durability import JournalWriter, read_journal
from repro.server.durability.journal import MAX_RECORD_BYTES, record_to_log_record
from repro.traces.records import LogRecord


def _record(i: int) -> LogRecord:
    return LogRecord(
        timestamp=100.0 + i,
        source=f"c{i % 3}",
        url=f"www.j.example/d{i % 2}/p{i}.html",
        status=200,
        size=512 + i,
        last_modified=None if i % 4 == 0 else 50.0 + i,
    )


def _write_sample(path, count=5):
    writer = JournalWriter(
        path, next_seq=1, generation=1, epoch_base=7, sync=True
    )
    records = [_record(i) for i in range(count)]
    for record in records:
        writer.append_observation(record)
    writer.append_ceiling(3)
    writer.append_resource("www.j.example/extra.gif", 99, "image", 12.5)
    writer.close()
    return records


def test_roundtrip_preserves_records_and_sequence(tmp_path):
    path = tmp_path / "journal-00000001.log"
    originals = _write_sample(path)
    records, tail = read_journal(path)
    assert tail.clean and tail.torn_bytes == 0 and tail.reason is None

    begin = records[0]
    assert begin.kind == "begin"
    assert begin.fields["next_seq"] == 1
    assert begin.fields["generation"] == 1
    assert begin.fields["base"] == 7

    observations = [r for r in records if r.kind == "obs"]
    assert [r.seq for r in observations] == [1, 2, 3, 4, 5]
    assert [record_to_log_record(r) for r in observations] == originals

    cap = next(r for r in records if r.kind == "cap")
    assert cap.fields["min"] == 3 and cap.seq == 6
    res = next(r for r in records if r.kind == "res")
    assert res.seq == 7
    assert res.fields == {
        "url": "www.j.example/extra.gif", "sz": 99, "ct": "image", "lm": 12.5,
    }


def test_writer_tracks_seq_and_bytes(tmp_path):
    path = tmp_path / "journal-00000001.log"
    writer = JournalWriter(path, next_seq=41, generation=3, epoch_base=0)
    assert writer.last_seq == 40
    assert writer.append_observation(_record(0)) == 41
    assert writer.append_observation(_record(1)) == 42
    assert writer.last_seq == 42
    assert writer.bytes_written == path.stat().st_size
    writer.close()
    with pytest.raises(ValueError):
        writer.append_observation(_record(2))


def test_writer_refuses_existing_file(tmp_path):
    path = tmp_path / "journal-00000001.log"
    path.write_bytes(b"")
    with pytest.raises(FileExistsError):
        JournalWriter(path, next_seq=1, generation=1, epoch_base=0)


def test_truncation_at_every_byte_yields_a_clean_prefix(tmp_path):
    """The exhaustive torn-write sweep: all truncation points, no surprises."""
    path = tmp_path / "journal-00000001.log"
    _write_sample(path, count=4)
    data = path.read_bytes()
    full_records, _ = read_journal(path)
    boundaries = 0
    for cut in range(len(data) + 1):
        torn = tmp_path / "torn.log"
        torn.write_bytes(data[:cut])
        records, tail = read_journal(torn)
        # Always a prefix of the intact decode, never reordered/invented.
        assert records == full_records[: len(records)]
        assert tail.torn_bytes == cut - tail.offset
        if tail.clean:
            boundaries += 1
            assert tail.offset == cut
        else:
            assert tail.reason is not None
        torn.unlink()
    # Clean cuts happen exactly at frame boundaries (plus offset zero).
    assert boundaries == len(full_records) + 1


@pytest.mark.parametrize("seed", range(5))
def test_garbage_suffix_is_reported_not_replayed(tmp_path, seed):
    path = tmp_path / "journal-00000001.log"
    _write_sample(path, count=3)
    data = path.read_bytes()
    rng = random.Random(seed)
    garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 200)))
    path.write_bytes(data + garbage)
    records, tail = read_journal(path)
    assert len(records) >= 1  # the intact frames all decode
    assert not tail.clean
    assert tail.offset <= len(data)
    assert tail.torn_bytes >= len(garbage)


def test_corrupt_magic_stops_the_scan(tmp_path):
    path = tmp_path / "journal-00000001.log"
    _write_sample(path, count=2)
    data = bytearray(path.read_bytes())
    data[0] = 0xFF  # corrupt the very first frame's magic
    path.write_bytes(bytes(data))
    records, tail = read_journal(path)
    assert records == []
    assert tail.reason == "bad frame magic"
    assert tail.offset == 0


def test_crc_mismatch_stops_the_scan(tmp_path):
    path = tmp_path / "journal-00000001.log"
    _write_sample(path, count=3)
    intact, _ = read_journal(path)
    data = bytearray(path.read_bytes())
    # Flip one byte inside the *last* frame's payload.
    data[-1] ^= 0x40
    path.write_bytes(bytes(data))
    records, tail = read_journal(path)
    assert not tail.clean
    assert tail.reason == "frame checksum mismatch"
    assert len(records) == len(intact) - 1


def test_implausible_length_stops_the_scan(tmp_path):
    path = tmp_path / "journal-00000001.log"
    header = struct.Struct("<2sII")
    path.write_bytes(header.pack(b"RJ", MAX_RECORD_BYTES + 1, 0))
    records, tail = read_journal(path)
    assert records == [] and tail.reason == "implausible frame length"


def test_valid_crc_invalid_json_stops_the_scan(tmp_path):
    path = tmp_path / "journal-00000001.log"
    payload = b"this is not json"
    frame = struct.Struct("<2sII").pack(b"RJ", len(payload), zlib.crc32(payload))
    path.write_bytes(frame + payload)
    records, tail = read_journal(path)
    assert records == [] and tail.reason == "unparseable frame payload"


def test_valid_json_missing_seq_stops_the_scan(tmp_path):
    path = tmp_path / "journal-00000001.log"
    payload = json.dumps({"t": "obs"}).encode()
    frame = struct.Struct("<2sII").pack(b"RJ", len(payload), zlib.crc32(payload))
    path.write_bytes(frame + payload)
    records, tail = read_journal(path)
    assert records == [] and tail.reason == "unparseable frame payload"


def test_unsynced_writer_still_produces_readable_frames(tmp_path):
    path = tmp_path / "journal-00000001.log"
    writer = JournalWriter(path, next_seq=1, generation=1, epoch_base=0, sync=False)
    writer.append_observation(_record(0))
    writer.close()
    records, tail = read_journal(path)
    assert tail.clean and [r.kind for r in records] == ["begin", "obs"]
