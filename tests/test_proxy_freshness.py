"""Unit tests for adaptive freshness intervals."""

import pytest

from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.proxy.freshness import AdaptiveFreshness, FreshnessConfig


class TestObservation:
    def test_default_interval_before_any_change_seen(self):
        adaptive = AdaptiveFreshness(FreshnessConfig(default_interval=3600.0))
        assert adaptive.freshness_interval("h/a") == 3600.0

    def test_change_interval_estimated_from_gaps(self):
        adaptive = AdaptiveFreshness()
        adaptive.observe("h/a", 1000.0)
        adaptive.observe("h/a", 3000.0)
        assert adaptive.estimated_change_interval("h/a") == pytest.approx(2000.0)

    def test_repeated_same_mtime_is_not_a_change(self):
        adaptive = AdaptiveFreshness()
        adaptive.observe("h/a", 1000.0)
        adaptive.observe("h/a", 1000.0)
        assert adaptive.estimated_change_interval("h/a") is None

    def test_older_mtime_ignored(self):
        adaptive = AdaptiveFreshness()
        adaptive.observe("h/a", 1000.0)
        adaptive.observe("h/a", 500.0)
        assert adaptive.estimated_change_interval("h/a") is None

    def test_ewma_smooths_subsequent_gaps(self):
        config = FreshnessConfig(ewma_weight=0.5)
        adaptive = AdaptiveFreshness(config)
        adaptive.observe("h/a", 0.0)
        adaptive.observe("h/a", 100.0)   # first gap: 100
        adaptive.observe("h/a", 400.0)   # second gap: 300 -> 0.5*300+0.5*100
        assert adaptive.estimated_change_interval("h/a") == pytest.approx(200.0)

    def test_observe_message(self):
        adaptive = AdaptiveFreshness()
        adaptive.observe_message(PiggybackMessage(1, (PiggybackElement("h/a", 10.0, 1),)))
        adaptive.observe_message(PiggybackMessage(1, (PiggybackElement("h/a", 50.0, 1),)))
        assert adaptive.estimated_change_interval("h/a") == pytest.approx(40.0)


class TestIntervalSelection:
    def test_delta_is_fraction_of_change_interval(self):
        config = FreshnessConfig(fraction_of_change_interval=0.5,
                                 min_interval=60.0, max_interval=1e6)
        adaptive = AdaptiveFreshness(config)
        adaptive.observe("h/a", 0.0)
        adaptive.observe("h/a", 10_000.0)
        assert adaptive.freshness_interval("h/a") == pytest.approx(5000.0)

    def test_clamped_to_bounds(self):
        config = FreshnessConfig(min_interval=100.0, max_interval=1000.0,
                                 default_interval=500.0)
        adaptive = AdaptiveFreshness(config)
        adaptive.observe("h/fast", 0.0)
        adaptive.observe("h/fast", 1.0)
        assert adaptive.freshness_interval("h/fast") == 100.0
        adaptive.observe("h/slow", 0.0)
        adaptive.observe("h/slow", 1e7)
        assert adaptive.freshness_interval("h/slow") == 1000.0

    def test_should_cache_rejects_rapidly_changing(self):
        adaptive = AdaptiveFreshness()
        adaptive.observe("h/ticker", 0.0)
        adaptive.observe("h/ticker", 10.0)
        assert not adaptive.should_cache("h/ticker", min_change_interval=300.0)
        assert adaptive.should_cache("h/unknown")

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            FreshnessConfig(min_interval=0.0)
        with pytest.raises(ValueError):
            FreshnessConfig(fraction_of_change_interval=0.0)
        with pytest.raises(ValueError):
            FreshnessConfig(min_interval=10.0, default_interval=5.0)
