"""Loopback-socket integration tests for the wire server, proxy, and client."""

import itertools

import pytest

from repro.httpmodel.messages import HttpRequest
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER, parse_p_volume
from repro.httpwire.netclient import HttpConnection, fetch_once
from repro.httpwire.netproxy import PiggybackHttpProxy
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.wire.example"


class FakeClock:
    """Deterministic, strictly increasing clock for wire tests."""

    def __init__(self, start=1000.0):
        self._counter = itertools.count()
        self.start = start

    def __call__(self):
        return self.start + next(self._counter) * 0.5


@pytest.fixture()
def origin():
    resources = ResourceStore()
    resources.add(f"{HOST}/a/page.html", size=1200, last_modified=100.0)
    resources.add(f"{HOST}/a/img.gif", size=300, last_modified=100.0)
    resources.add(f"{HOST}/b/other.html", size=800, last_modified=100.0)
    engine = PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )
    server = PiggybackHttpServer(engine, site_host=HOST, clock=FakeClock())
    with server:
        yield server


def simple_get(path, piggy_filter=None, ims=None):
    request = HttpRequest(method="GET", target=path)
    request.headers.set("Host", HOST)
    if piggy_filter is not None:
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", piggy_filter)
    if ims is not None:
        request.headers.set("If-Modified-Since", ims)
    return request


class TestOriginServer:
    def test_plain_get_returns_body(self, origin):
        response = fetch_once(origin.address, origin.port, simple_get("/a/page.html"))
        assert response.status == 200
        assert len(response.body) == 1200
        assert response.body == synthetic_body(f"{HOST}/a/page.html", 1200)

    def test_no_filter_means_no_piggyback(self, origin):
        response = fetch_once(origin.address, origin.port, simple_get("/a/page.html"))
        assert response.trailers.get(P_VOLUME_HEADER) is None

    def test_piggyback_in_chunked_trailer(self, origin):
        with HttpConnection(origin.address, origin.port) as connection:
            connection.request(simple_get("/a/img.gif", piggy_filter="maxpiggy=10"))
            response = connection.request(
                simple_get("/a/page.html", piggy_filter="maxpiggy=10")
            )
        assert "chunked" in response.headers.get("Transfer-Encoding", "")
        message = parse_p_volume(response.trailers.get(P_VOLUME_HEADER))
        assert f"{HOST}/a/img.gif" in message.urls()

    def test_rpv_filter_suppresses_piggyback(self, origin):
        with HttpConnection(origin.address, origin.port) as connection:
            connection.request(simple_get("/a/img.gif", piggy_filter="maxpiggy=10"))
            first = connection.request(
                simple_get("/a/page.html", piggy_filter="maxpiggy=10")
            )
            volume_id = parse_p_volume(first.trailers.get(P_VOLUME_HEADER)).volume_id
            second = connection.request(
                simple_get("/a/page.html", piggy_filter=f'maxpiggy=10; rpv="{volume_id}"')
            )
        assert second.trailers.get(P_VOLUME_HEADER) is None

    def test_if_modified_since_validation(self, origin):
        response = fetch_once(
            origin.address, origin.port,
            simple_get("/a/page.html", ims="Mon, 06 Jul 1998 10:30:00 GMT"),
        )
        assert response.status == 304

    def test_unknown_resource_404(self, origin):
        response = fetch_once(origin.address, origin.port, simple_get("/nope.html"))
        assert response.status == 404

    def test_persistent_connection_serves_many(self, origin):
        with HttpConnection(origin.address, origin.port) as connection:
            for _ in range(5):
                assert connection.request(simple_get("/a/page.html")).status == 200

    def test_post_not_implemented(self, origin):
        request = HttpRequest(method="POST", target="/a/page.html", body=b"x=1")
        request.headers.set("Host", HOST)
        assert fetch_once(origin.address, origin.port, request).status == 501


class TestWireProxy:
    def test_end_to_end_caching(self, origin):
        clock = FakeClock(start=2000.0)
        proxy = PiggybackHttpProxy(
            origins={HOST: (origin.address, origin.port)},
            config=ProxyConfig(name="test-proxy", freshness_interval=3600.0),
            clock=clock,
        )
        with proxy:
            request = HttpRequest(method="GET", target=f"http://{HOST}/a/page.html")
            first = fetch_once(proxy.address, proxy.port, request)
            second = fetch_once(proxy.address, proxy.port, request)
        assert first.status == 200
        assert first.body == synthetic_body(f"{HOST}/a/page.html", 1200)
        assert first.headers.get("X-Cache") == "fetched"
        assert second.headers.get("X-Cache") == "cache-fresh"
        assert second.body == first.body
        assert origin.server.stats.requests == 1

    def test_proxy_piggyback_freshens_sibling(self, origin):
        clock = FakeClock(start=3000.0)
        proxy = PiggybackHttpProxy(
            origins={HOST: (origin.address, origin.port)},
            config=ProxyConfig(name="test-proxy", freshness_interval=3600.0),
            clock=clock,
        )
        with proxy:
            for path in ("/a/img.gif", "/a/page.html"):
                request = HttpRequest(method="GET", target=f"http://{HOST}{path}")
                fetch_once(proxy.address, proxy.port, request)
            assert proxy.engine.stats.piggybacks_received >= 1

    def test_unknown_host_400_or_404(self, origin):
        proxy = PiggybackHttpProxy(
            origins={HOST: (origin.address, origin.port)},
            clock=FakeClock(),
        )
        with proxy:
            request = HttpRequest(method="GET", target="/x.html")
            # No Host header: the proxy cannot resolve the origin.
            response = fetch_once(proxy.address, proxy.port, request)
        assert response.status == 400
