"""Differential tests: the interned fast path must be bit-identical.

Every configuration here runs both the reference engine
(:func:`repro.analysis.prediction.replay` with string-keyed stores) and
the interned engine (:func:`repro.analysis.fastreplay.replay_interned_multi`)
on the same workloads and asserts *exact* equality of the resulting
:class:`ReplayMetrics` — including the random-enable RNG streams, RPV
suppression, wire-byte accounting, and the multi-config single-pass mode.
The estimator twin is held to the same standard on `Implication` sets.
"""

from __future__ import annotations

import pytest

from repro.analysis.fastreplay import replay_interned, replay_interned_multi
from repro.analysis.prediction import ReplayConfig, replay, replay_many
from repro.core.filters import ProxyFilter
from repro.traces.intern import compile_trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.interned import UnsupportedStoreError, build_interned_store
from repro.volumes.probability import (
    PairwiseConfig,
    PairwiseEstimator,
    ProbabilityVolumeStore,
    build_probability_volumes,
    build_probability_volumes_multi,
    estimate_pairwise,
)

# The config grid exercises every admission criterion the fast path
# reimplements: element caps, access filters (precounted and online),
# RPV pacing, random-enable pacing, warmup exclusion, size and
# content-type filters.
REPLAY_CONFIGS = [
    ReplayConfig(),
    ReplayConfig(max_elements=5),
    ReplayConfig(max_elements=0),
    ReplayConfig(access_filter=3),
    ReplayConfig(access_filter=3, precount_accesses=False),
    ReplayConfig(rpv_min_gap=30.0, max_elements=10),
    ReplayConfig(enable_probability=0.5, seed=11),
    ReplayConfig(measure_after=50_000.0),
    ReplayConfig(base_filter=ProxyFilter(max_resource_size=4000)),
    ReplayConfig(base_filter=ProxyFilter(excluded_content_types=frozenset({"image"}))),
    ReplayConfig(
        max_elements=8,
        access_filter=2,
        rpv_min_gap=60.0,
        enable_probability=0.8,
        seed=3,
        base_filter=ProxyFilter(max_resource_size=6000,
                                excluded_content_types=frozenset({"image"})),
    ),
]

DIRECTORY_CONFIGS = [
    DirectoryVolumeConfig(level=0),
    DirectoryVolumeConfig(level=1),
    DirectoryVolumeConfig(level=2),
    DirectoryVolumeConfig(level=1, move_to_front=False),
    DirectoryVolumeConfig(level=1, partition_by_type=True, max_volume_size=20),
    DirectoryVolumeConfig(level=0, max_volume_size=30),
]


def _reference(trace, store_config, config):
    if isinstance(store_config, DirectoryVolumeConfig):
        store = DirectoryVolumeStore(store_config)
    else:
        store = ProbabilityVolumeStore(store_config)
    return replay(trace, store, config)


@pytest.fixture(scope="module")
def server_trace(small_server_log):
    trace, _ = small_server_log
    return trace


@pytest.fixture(scope="module")
def volumes(server_trace):
    estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
    estimator.observe_trace(server_trace)
    return build_probability_volumes(estimator, 0.2)


class TestDirectoryDifferential:
    @pytest.mark.parametrize("store_config", DIRECTORY_CONFIGS,
                             ids=[repr(c) for c in DIRECTORY_CONFIGS])
    def test_store_variants(self, server_trace, store_config):
        config = ReplayConfig(max_elements=20, access_filter=2)
        assert replay_interned(server_trace, store_config, config) == _reference(
            server_trace, store_config, config
        )

    @pytest.mark.parametrize("config", REPLAY_CONFIGS,
                             ids=[str(i) for i in range(len(REPLAY_CONFIGS))])
    def test_replay_configs(self, server_trace, config):
        store_config = DirectoryVolumeConfig(level=1)
        assert replay_interned(server_trace, store_config, config) == _reference(
            server_trace, store_config, config
        )


class TestProbabilityDifferential:
    @pytest.mark.parametrize("config", REPLAY_CONFIGS,
                             ids=[str(i) for i in range(len(REPLAY_CONFIGS))])
    def test_replay_configs(self, server_trace, volumes, config):
        assert replay_interned(server_trace, volumes, config) == _reference(
            server_trace, volumes, config
        )

    def test_burst_trace(self, burst_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(burst_trace)
        volumes = build_probability_volumes(estimator, 0.5)
        for config in (ReplayConfig(), ReplayConfig(max_elements=1)):
            assert replay_interned(burst_trace, volumes, config) == _reference(
                burst_trace, volumes, config
            )


class TestMultiConfigSinglePass:
    def test_matches_serial_reference(self, server_trace, volumes):
        directory = DirectoryVolumeConfig(level=1)
        entries = [
            (directory, ReplayConfig(max_elements=10, access_filter=2)),
            (directory, ReplayConfig(rpv_min_gap=30.0)),
            (volumes, ReplayConfig()),
            (volumes, ReplayConfig(enable_probability=0.5, seed=7)),
        ]
        fast = replay_interned_multi(server_trace, entries)
        reference = replay_many(server_trace, entries, engine="reference")
        assert fast == reference

    def test_shared_store_does_not_leak_between_slots(self, server_trace):
        # Two slots sharing one store object must each equal their own
        # standalone run: maintenance is shared, scoring state is not.
        directory = DirectoryVolumeConfig(level=0)
        config_a = ReplayConfig(max_elements=5)
        config_b = ReplayConfig(max_elements=50, rpv_min_gap=60.0)
        both = replay_interned_multi(server_trace, [(directory, config_a),
                                                    (directory, config_b)])
        assert both[0] == replay_interned(server_trace, directory, config_a)
        assert both[1] == replay_interned(server_trace, directory, config_b)

    def test_accepts_reference_store_instances(self, server_trace, volumes):
        config = ReplayConfig(max_elements=10)
        fast = replay_interned_multi(
            server_trace,
            [(DirectoryVolumeStore(DirectoryVolumeConfig(level=1)), config),
             (ProbabilityVolumeStore(volumes), config)],
        )
        assert fast[0] == _reference(server_trace, DirectoryVolumeConfig(level=1), config)
        assert fast[1] == _reference(server_trace, volumes, config)

    def test_unsupported_store_raises(self, server_trace):
        from repro.volumes.online import OnlineProbabilityVolumeStore

        with pytest.raises(UnsupportedStoreError):
            build_interned_store(
                compile_trace(server_trace), OnlineProbabilityVolumeStore()
            )


class TestEstimatorDifferential:
    def test_exact_implications_identical(self, server_trace):
        reference = PairwiseEstimator(PairwiseConfig(window=300.0))
        reference.observe_trace(server_trace)
        interned = estimate_pairwise(server_trace, PairwiseConfig(window=300.0))
        assert interned.implications(0.0) == reference.implications(0.0)
        assert interned.counter_count == reference.counter_count

    def test_sampled_implications_identical(self, server_trace):
        config = PairwiseConfig(window=300.0, sample_counters=True,
                                sampling_threshold=0.25, seed=13)
        reference = PairwiseEstimator(config)
        reference.observe_trace(server_trace)
        interned = estimate_pairwise(server_trace, config)
        assert interned.implications(0.1) == reference.implications(0.1)
        assert interned.counter_count == reference.counter_count
        assert interned.skipped_pair_events == reference.skipped_pair_events

    def test_multi_threshold_build_matches_per_threshold(self, server_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(server_trace)
        thresholds = (0.1, 0.25, 0.5)
        multi = build_probability_volumes_multi(estimator, thresholds)
        for threshold in thresholds:
            single = build_probability_volumes(estimator, threshold)
            assert multi[threshold].implication_count() == single.implication_count()
            for antecedent in single.antecedents():
                assert multi[threshold].members_of(antecedent) == single.members_of(
                    antecedent
                )
