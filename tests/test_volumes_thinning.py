"""Unit tests for effectiveness measurement and volume thinning."""

import pytest

from repro.traces.records import Trace
from repro.volumes.probability import ProbabilityVolumes
from repro.volumes.thinning import (
    combine_with_directory,
    measure_effectiveness,
    thin_by_effectiveness,
)

from conftest import make_record


class TestMeasureEffectiveness:
    def test_perfect_implication_is_fully_effective(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 1.0)]})
        records = []
        for start in (0.0, 1000.0, 2000.0):
            records.append(make_record(start, "s", "h/a"))
            records.append(make_record(start + 1.0, "s", "h/b"))
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a", "h/b") == pytest.approx(1.0)

    def test_never_followed_implication_is_ineffective(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 0.9)]})
        records = [make_record(float(i * 1000), "s", "h/a") for i in range(3)]
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a", "h/b") == 0.0

    def test_redundant_predictions_not_credited(self):
        # Both a1 and a2 precede b, but a1 always fires first, so a2's
        # prediction of b is redundant every time.
        volumes = ProbabilityVolumes(
            {"h/a1": [("h/b", 1.0)], "h/a2": [("h/b", 1.0)]}
        )
        records = []
        for start in (0.0, 1000.0):
            records.append(make_record(start, "s", "h/a1"))
            records.append(make_record(start + 1.0, "s", "h/a2"))
            records.append(make_record(start + 2.0, "s", "h/b"))
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a1", "h/b") == pytest.approx(1.0)
        assert result.probability_of("h/a2", "h/b") == 0.0

    def test_prediction_expires_after_window(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 1.0)]})
        records = [
            make_record(0.0, "s", "h/a"),
            make_record(500.0, "s", "h/b"),  # beyond the 300 s window
        ]
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a", "h/b") == 0.0
        assert result.opened[("h/a", "h/b")] == 1

    def test_sources_tracked_independently(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 1.0)]})
        records = [
            make_record(0.0, "s1", "h/a"),
            make_record(1.0, "s2", "h/b"),  # other source: no credit
        ]
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a", "h/b") == 0.0

    def test_denominator_counts_all_antecedent_occurrences(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 1.0)]})
        records = [
            make_record(0.0, "s", "h/a"),
            make_record(1.0, "s", "h/b"),
            make_record(1000.0, "s", "h/a"),  # not followed this time
        ]
        result = measure_effectiveness(Trace(records), volumes, window=300.0)
        assert result.probability_of("h/a", "h/b") == pytest.approx(0.5)
        assert result.antecedent_occurrences["h/a"] == 2

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            measure_effectiveness(Trace([]), ProbabilityVolumes({}), window=0.0)


class TestThinByEffectiveness:
    def test_drops_low_effectiveness_pairs(self):
        volumes = ProbabilityVolumes(
            {"h/a1": [("h/b", 1.0)], "h/a2": [("h/b", 1.0)]}
        )
        records = []
        for start in (0.0, 1000.0):
            records.append(make_record(start, "s", "h/a1"))
            records.append(make_record(start + 1.0, "s", "h/a2"))
            records.append(make_record(start + 2.0, "s", "h/b"))
        effectiveness = measure_effectiveness(Trace(records), volumes, window=300.0)
        thinned = thin_by_effectiveness(volumes, effectiveness, threshold=0.2)
        assert thinned.members_of("h/a1") == [("h/b", 1.0)]
        assert thinned.members_of("h/a2") == []

    def test_threshold_zero_keeps_everything_with_any_success(self):
        volumes = ProbabilityVolumes({"h/a": [("h/b", 0.5)]})
        records = [make_record(0.0, "s", "h/a"), make_record(1.0, "s", "h/b")]
        effectiveness = measure_effectiveness(Trace(records), volumes, window=300.0)
        thinned = thin_by_effectiveness(volumes, effectiveness, threshold=0.0)
        assert thinned.implication_count() == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            thin_by_effectiveness(
                ProbabilityVolumes({}),
                measure_effectiveness(Trace([]), ProbabilityVolumes({})),
                threshold=1.5,
            )


class TestCombineWithDirectory:
    def test_cross_directory_pairs_dropped(self):
        volumes = ProbabilityVolumes(
            {"h/a/x": [("h/a/y", 0.9), ("h/b/z", 0.8)]}
        )
        combined = combine_with_directory(volumes, level=1)
        assert combined.members_of("h/a/x") == [("h/a/y", 0.9)]

    def test_level_zero_keeps_same_host_pairs(self):
        volumes = ProbabilityVolumes(
            {"h1/a": [("h1/b", 0.9), ("h2/c", 0.8)]}
        )
        combined = combine_with_directory(volumes, level=0)
        assert combined.members_of("h1/a") == [("h1/b", 0.9)]

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            combine_with_directory(ProbabilityVolumes({}), level=-1)
