"""Recovery semantics: edge cases, idempotence, duplicate and gapped
journals, epoch monotonicity across generations, and lock-order
instrumented recovery."""

from __future__ import annotations

import json

import pytest

import durability_driver as driver
from repro.server.durability import (
    DurableState,
    JournalWriter,
    StateFormatError,
    recover_state,
)
from repro.server.durability.snapshot import GENERATION_STRIDE, journal_name
from repro.volumes.online import OnlineProbabilityVolumeStore, OnlineVolumeConfig
from repro.volumes.state import capture_store_state

RECORDS = driver.make_records(seed=11, count=40)
URLS = driver.record_urls(RECORDS)


def _state_equal(a, b) -> bool:
    return json.dumps(capture_store_state(a), sort_keys=True) == json.dumps(
        capture_store_state(b), sort_keys=True
    )


def test_empty_state_dir_recovers_to_fresh_store(tmp_path):
    store, report = recover_state(tmp_path, driver.make_store)
    assert report.last_seq == 0
    assert not report.snapshot_loaded
    assert report.journal_files == 0
    assert report.generation == 1
    assert report.epoch_base == GENERATION_STRIDE
    assert store.epoch_base == GENERATION_STRIDE
    assert _state_equal(store, driver.make_store())
    assert list(tmp_path.iterdir()) == []  # recovery is read-only


def test_journal_without_snapshot(tmp_path):
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS)
    state.close()

    recovered, report = recover_state(tmp_path, driver.make_store)
    assert report.last_seq == 40 and report.replayed_records == 40
    assert not report.snapshot_loaded
    never_died = driver.feed(driver.make_store(), RECORDS)
    assert driver.trailer_map(recovered, URLS) == driver.trailer_map(never_died, URLS)


def test_snapshot_without_journal(tmp_path):
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS)
    state.snapshot_now()
    state.close()
    for entry in list(tmp_path.iterdir()):
        if entry.name.startswith("journal-"):
            entry.unlink()

    recovered, report = recover_state(tmp_path, driver.make_store)
    assert report.snapshot_loaded and report.snapshot_seq == 40
    assert report.last_seq == 40 and report.replayed_records == 0
    never_died = driver.feed(driver.make_store(), RECORDS)
    assert driver.trailer_map(recovered, URLS) == driver.trailer_map(never_died, URLS)


def test_duplicate_journal_records_are_skipped(tmp_path):
    """A retried flush that appended the same record twice is harmless."""
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS[:10])
    journal_path = state.store.journal.path
    state.close()
    data = journal_path.read_bytes()
    # Re-append the final frame's bytes verbatim: same seq, same payload —
    # exactly what a retried append after a partial failure produces.
    start = _frame_start_of_last(data)
    journal_path.write_bytes(data + data[start:])

    recovered, report = recover_state(tmp_path, driver.make_store)
    assert report.duplicate_records >= 1
    assert report.last_seq == 10
    journal_path.write_bytes(data)
    pristine, pristine_report = recover_state(tmp_path, driver.make_store)
    assert pristine_report.duplicate_records < report.duplicate_records
    assert _state_equal(recovered, pristine)


def _frame_start_of_last(data: bytes) -> int:
    """Byte offset where the last frame of *data* begins."""
    import struct

    header = struct.Struct("<2sII")
    offset = 0
    last = 0
    while offset < len(data):
        _, length, _ = header.unpack_from(data, offset)
        last = offset
        offset += header.size + length
    return last


def test_sequence_gap_stops_replay_at_the_gap(tmp_path):
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS[:10])
    state.close()
    # A second-generation journal that skips ahead: seqs 14, 15, ...
    writer = JournalWriter(
        tmp_path / journal_name(2), next_seq=14, generation=2, epoch_base=0
    )
    for record in RECORDS[13:16]:
        writer.append_observation(record)
    writer.close()

    recovered, report = recover_state(tmp_path, driver.make_store)
    assert report.last_seq == 10  # nothing past the gap is applied
    assert report.tail_reason is not None and "gap" in report.tail_reason
    prefix_only = driver.feed(driver.make_store(), RECORDS[:10])
    assert driver.trailer_map(recovered, URLS) == driver.trailer_map(prefix_only, URLS)


@pytest.mark.parametrize("snapshot_at", [-1, 7, 39])
def test_recovery_is_idempotent(tmp_path, snapshot_at):
    state = DurableState(tmp_path, driver.make_store)
    for index, record in enumerate(RECORDS):
        driver.feed(state.store, [record])
        if index == snapshot_at:
            state.snapshot_now()
    state.close()

    first, report_a = recover_state(tmp_path, driver.make_store)
    second, report_b = recover_state(tmp_path, driver.make_store)
    assert report_a == report_b
    assert _state_equal(first, second)
    # And recovery agrees with the never-died store.
    never_died = driver.feed(driver.make_store(), RECORDS)
    assert driver.trailer_map(first, URLS) == driver.trailer_map(never_died, URLS)


def test_epochs_are_monotone_across_generations(tmp_path):
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS[:20])
    with state.store.lock:
        versions_before = {
            url: state.store.lookup_version(url) for url in URLS
        }
    max_epoch_before = max(
        v.epoch for v in versions_before.values() if v is not None
    )
    state.close()

    restarted = DurableState(tmp_path, driver.make_store)
    assert restarted.generation == 2
    with restarted.store.lock:
        versions_after = {
            url: restarted.store.lookup_version(url) for url in URLS
        }
    min_epoch_after = min(
        v.epoch for v in versions_after.values() if v is not None
    )
    # Every post-restart epoch strictly exceeds every pre-crash epoch, so
    # no piggyback cache key can ever collide across the restart.
    assert min_epoch_after > max_epoch_before
    # Volume *identities* are stable; only epochs moved.
    assert {u: v.volume_id for u, v in versions_after.items() if v} == {
        u: v.volume_id for u, v in versions_before.items() if v
    }
    restarted.close()


def test_meta_floor_holds_even_without_journal_or_snapshot(tmp_path):
    """Crash before the first append: meta.json alone carries the base."""
    state = DurableState(tmp_path, driver.make_store)
    base_one = state.store.epoch_base
    # Simulate the crash: no close, drop everything but meta.
    for entry in list(tmp_path.iterdir()):
        if entry.name != "meta.json":
            entry.unlink()
    store, report = recover_state(tmp_path, driver.make_store)
    assert report.epoch_base > base_one
    assert report.generation == 2


def test_corrupt_snapshot_refuses_recovery(tmp_path):
    state = DurableState(tmp_path, driver.make_store)
    driver.feed(state.store, RECORDS[:5])
    state.snapshot_now()
    state.close()
    snapshot = tmp_path / "snapshot.json"
    snapshot.write_bytes(snapshot.read_bytes()[:-40])
    with pytest.raises(StateFormatError):
        recover_state(tmp_path, driver.make_store)


def test_recovery_under_lockorder_instrumentation(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_LOCKORDER", "1")
    state = DurableState(tmp_path / "state", driver.make_store)
    driver.feed(state.store, RECORDS[:15])
    state.snapshot_now()
    driver.feed(state.store, RECORDS[15:30])
    state.reload()
    driver.feed(state.store, RECORDS[30:])
    state.close()
    recovered, report = recover_state(tmp_path / "state", driver.make_store)
    assert report.last_seq == 40
    never_died = driver.feed(driver.make_store(), RECORDS)
    assert driver.trailer_map(recovered, URLS) == driver.trailer_map(never_died, URLS)


def test_online_store_recovery_is_bit_identical(tmp_path):
    """The streaming pairwise store (windows, counters, RNG) also recovers."""

    def factory():
        return OnlineProbabilityVolumeStore(OnlineVolumeConfig())

    records = driver.make_records(seed=5, count=60)
    state = DurableState(tmp_path, factory)
    driver.feed(state.store, records[:35])
    state.snapshot_now()
    driver.feed(state.store, records[35:])
    state.close()

    recovered, report = recover_state(tmp_path, factory)
    assert report.last_seq == 60
    never_died = driver.feed(factory(), records)
    assert _state_equal(recovered, never_died)
    # Future behavior matches too: feed both the same continuation.
    more = driver.make_records(seed=6, count=20)
    driver.feed(recovered, more)
    driver.feed(never_died, more)
    assert _state_equal(recovered, never_died)
