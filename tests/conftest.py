"""Shared fixtures: small deterministic traces, sites, and helpers."""

from __future__ import annotations

import pytest

from repro.traces.clean import CleaningConfig, clean_trace
from repro.traces.records import LogRecord, Trace
from repro.workloads.sitegen import SiteConfig, generate_site
from repro.workloads.synth import (
    ServerLogConfig,
    SessionConfig,
    generate_server_log,
)


def make_record(
    t: float,
    source: str = "c1",
    url: str = "www.x.example/a/p.html",
    **kwargs,
) -> LogRecord:
    """Terse LogRecord constructor for tests."""
    return LogRecord(timestamp=t, source=source, url=url, **kwargs)


@pytest.fixture(scope="session")
def small_site():
    """A tiny deterministic site (~40 pages)."""
    return generate_site(SiteConfig(host="www.small.example", page_count=40,
                                    directory_count=6, seed=42))


@pytest.fixture(scope="session")
def small_server_log():
    """A small server log plus its site, cleaned (popularity floor 2)."""
    config = ServerLogConfig(
        site=SiteConfig(host="www.small.example", page_count=40,
                        directory_count=6, seed=42),
        sessions=SessionConfig(),
        source_count=30,
        session_count=300,
        duration_days=3.0,
        seed=7,
    )
    trace, site = generate_server_log(config)
    cleaned, _ = clean_trace(trace, CleaningConfig(min_accesses=2))
    return cleaned, site


@pytest.fixture()
def burst_trace() -> Trace:
    """A hand-built trace: two sources, page+images bursts repeating.

    Source s1 requests /a/p.html then /a/i1.gif and /a/i2.gif within a
    couple of seconds, three times, spaced 1000 s apart; source s2 does the
    same once.  Designed so p(i1|p) and p(i2|p) are 1.0.
    """
    records = []
    for source, starts in (("s1", (0.0, 1000.0, 2000.0)), ("s2", (500.0,))):
        for start in starts:
            records.append(make_record(start, source, "www.b.example/a/p.html"))
            records.append(make_record(start + 1.0, source, "www.b.example/a/i1.gif"))
            records.append(make_record(start + 2.0, source, "www.b.example/a/i2.gif"))
    return Trace(records)
