"""Unit tests for synthetic site generation."""

import pytest

from repro import urls
from repro.workloads.sitegen import SiteConfig, generate_site


def small_config(**kwargs):
    defaults = dict(host="www.t.example", page_count=50, directory_count=8, seed=3)
    defaults.update(kwargs)
    return SiteConfig(**defaults)


class TestSiteStructure:
    def test_page_count_honoured(self):
        site = generate_site(small_config())
        assert len(site.pages) == 50

    def test_every_page_is_a_resource(self):
        site = generate_site(small_config())
        assert set(site.pages) <= set(site.resources)

    def test_every_embedded_image_is_a_resource(self):
        site = generate_site(small_config())
        for page in site.pages.values():
            for image in page.embedded:
                assert image in site.resources
                assert site.resources[image].content_type == "image"

    def test_embedded_images_live_in_page_directory(self):
        site = generate_site(small_config(mean_images_per_page=4.0))
        for page in site.pages.values():
            page_dir = urls.directory_prefix(page.url, 99)
            for image in page.embedded:
                assert urls.directory_prefix(image, 99) == page_dir

    def test_links_point_at_pages_not_self(self):
        site = generate_site(small_config(links_per_page=5.0))
        for page in site.pages.values():
            for link in page.links:
                assert link in site.pages
                assert link != page.url

    def test_all_urls_under_host(self):
        site = generate_site(small_config())
        assert all(u.startswith("www.t.example") for u in site.resources)

    def test_max_depth_respected(self):
        site = generate_site(small_config(max_depth=2, directory_count=20))
        for url in site.resources:
            # depth = number of directory components (excluding the file).
            assert urls.directory_levels(url) <= 2

    def test_sizes_positive(self):
        site = generate_site(small_config())
        assert all(r.size >= 64 for r in site.resources.values())

    def test_popularity_ordering_covers_all_pages(self):
        site = generate_site(small_config())
        assert sorted(site.pages_by_popularity) == sorted(site.pages)


class TestDeterminism:
    def test_same_seed_same_site(self):
        a = generate_site(small_config(seed=9))
        b = generate_site(small_config(seed=9))
        assert set(a.resources) == set(b.resources)
        assert a.pages_by_popularity == b.pages_by_popularity
        assert all(a.pages[u].links == b.pages[u].links for u in a.pages)

    def test_different_seed_different_site(self):
        a = generate_site(small_config(seed=1))
        b = generate_site(small_config(seed=2))
        assert set(a.resources) != set(b.resources) or a.pages_by_popularity != b.pages_by_popularity


class TestImageSharing:
    def test_high_sharing_yields_fewer_images(self):
        many = generate_site(small_config(image_sharing=0.0, mean_images_per_page=3.0))
        few = generate_site(small_config(image_sharing=0.9, mean_images_per_page=3.0))
        count = lambda s: sum(1 for r in s.resources.values() if r.content_type == "image")
        assert count(few) < count(many)


class TestValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(ValueError):
            SiteConfig(page_count=0)
        with pytest.raises(ValueError):
            SiteConfig(directory_count=0)
        with pytest.raises(ValueError):
            SiteConfig(link_locality=1.5)
        with pytest.raises(ValueError):
            SiteConfig(image_sharing=-0.1)
        with pytest.raises(ValueError):
            SiteConfig(max_depth=0)
