"""Cluster supervision and CLI surface: LocalCluster/ProcessCluster
lifecycles, the ``repro cluster`` / ``serve --lb`` / ``loadtest
--target cluster`` entry points, friendly bind-failure diagnostics, and
the ``lb_*`` telemetry contract enforced via ``repro stats --require``.
"""

from __future__ import annotations

import socket

import pytest

from repro.cli import _parse_backend_specs, main
from repro.httpwire.backends import lb_server_class
from repro.lb.aio import AsyncLbHttpServer
from repro.lb.balancer import LbHttpServer, LbPolicy
from repro.lb.cluster import ClusterConfig, ClusterError, LocalCluster, ProcessCluster
from repro.lb.health import HealthPolicy

from test_lb_faults import get_via_lb

FAST = dict(policy=LbPolicy(snapshot_ttl=0.2),
            health=HealthPolicy(interval=0.1, timeout=1.0))


@pytest.fixture(autouse=True)
def _reset_global_telemetry():
    """CLI paths with --telemetry-out enable the process-wide registry;
    put it back so later suites still see the disabled default."""
    yield
    from repro import telemetry

    telemetry.disable()
    telemetry.REGISTRY.reset()
    telemetry.TRACER.reset()


# -- supervisors -----------------------------------------------------------


def test_local_cluster_spreads_traffic_and_pins_proxies():
    config = ClusterConfig(shards=3, pages=36, host="www.localc.example", **FAST)
    with LocalCluster(config) as cluster:
        assert len(cluster.origins) == 3
        for index, url in enumerate(cluster.urls):
            proxy = f"proxy-{index % 4}"
            response = get_via_lb(cluster.lb, "/" + url.partition("/")[2],
                                  config.host, proxy=proxy)
            assert response.status == 200
        # revisits: sticky hits accumulate
        for url in cluster.urls[:12]:
            response = get_via_lb(cluster.lb, "/" + url.partition("/")[2],
                                  config.host, proxy="proxy-0")
            assert response.status == 200
        status = cluster.status()
        assert sum(status["shard_routes"]) == len(cluster.urls) + 12
        assert sum(1 for count in status["shard_routes"] if count) >= 2, (
            "partitioning never spread traffic past one shard"
        )
        assert status["sticky"]["hits"] >= 1
        assert status["unroutable"] == 0
        assert status["routing"]["ejections"] == 0


def test_local_cluster_async_front_tier():
    config = ClusterConfig(shards=2, pages=16, backend="async",
                           host="www.asyncc.example", **FAST)
    with LocalCluster(config) as cluster:
        assert isinstance(cluster.lb, AsyncLbHttpServer)
        for url in cluster.urls[:6]:
            response = get_via_lb(cluster.lb, "/" + url.partition("/")[2],
                                  config.host)
            assert response.status == 200


def test_cluster_config_validates_topology():
    with pytest.raises(ValueError):
        ClusterConfig(shards=0)
    with pytest.raises(ValueError):
        ClusterConfig(replicas=0)


def test_backend_registry_resolves_lb_classes():
    assert lb_server_class("threaded") is LbHttpServer
    assert lb_server_class("async") is AsyncLbHttpServer
    with pytest.raises(ValueError):
        lb_server_class("fibers")


def test_process_cluster_bind_failure_names_the_shard():
    config = ClusterConfig(shards=2, pages=8, startup_timeout=20.0,
                           host="www.bindfail.example")
    cluster = ProcessCluster(config)
    victim = cluster._shards[(1, 0)]
    thief = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        thief.bind((config.address, victim.port))
        thief.listen(1)
        with pytest.raises(ClusterError) as excinfo:
            cluster.start()
    finally:
        thief.close()
        cluster.stop()
    message = str(excinfo.value)
    assert "shard 1 replica 0" in message
    assert str(victim.port) in message
    # The child's own friendly one-liner is surfaced, not a traceback.
    assert "already in use" in message
    assert "Traceback" not in message


# -- backend spec parsing (serve --lb) -------------------------------------


def test_parse_backend_specs_groups_replicas_by_shard():
    shard_count, slots = _parse_backend_specs(
        ["0:127.0.0.1:9001", "0:127.0.0.1:9002", "1:127.0.0.1:9003"]
    )
    assert shard_count == 2
    assert [(s.shard, s.replica, s.port) for s in slots] == [
        (0, 0, 9001), (0, 1, 9002), (1, 0, 9003)
    ]


@pytest.mark.parametrize(
    "specs",
    [[], ["nonsense"], ["0:host"], ["x:host:80"], ["0:h:80", "2:h:81"]],
    ids=["empty", "no-colon", "two-fields", "bad-shard", "gap"],
)
def test_parse_backend_specs_rejects_bad_input(specs):
    with pytest.raises(ValueError):
        _parse_backend_specs(specs)


# -- CLI: friendly bind errors ---------------------------------------------


def occupy_port():
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    sock.listen(1)
    return sock, sock.getsockname()[1]


def test_cli_serve_reports_port_in_use_without_traceback(tmp_path, capsys):
    sock, port = occupy_port()
    try:
        code = main(["serve", "--state-dir", str(tmp_path / "state"),
                     "--pages", "4", "--port", str(port)])
    finally:
        sock.close()
    captured = capsys.readouterr()
    assert code == 2
    assert "already in use" in captured.err
    assert str(port) in captured.err
    assert "Traceback" not in captured.err


def test_cli_serve_lb_reports_port_in_use(capsys):
    sock, port = occupy_port()
    try:
        code = main(["serve", "--lb", "--backends", "0:127.0.0.1:9001",
                     "--port", str(port)])
    finally:
        sock.close()
    captured = capsys.readouterr()
    assert code == 2
    assert "already in use" in captured.err


def test_cli_serve_requires_state_dir(capsys):
    assert main(["serve", "--pages", "4"]) == 2
    assert "--state-dir" in capsys.readouterr().err


def test_cli_serve_lb_rejects_malformed_backends(capsys):
    assert main(["serve", "--lb", "--backends", "bogus"]) == 2
    assert "SHARD:HOST:PORT" in capsys.readouterr().err


# -- CLI: loadtest --target cluster + telemetry contract -------------------


def test_cli_loadtest_cluster_report_and_required_metrics(tmp_path, capsys):
    snapshot = tmp_path / "telemetry.json"
    code = main([
        "loadtest", "--target", "cluster", "--shards", "2",
        "--clients", "3", "--requests", "8", "--warmup", "1",
        "--pages", "24", "--balance-within", "4.0",
        "--telemetry-out", str(snapshot),
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.out + captured.err
    out = captured.out
    assert "shard balance" in out
    assert "hit rate" in out
    assert "routing snapshot" in out
    assert snapshot.exists()

    # The satellite contract: every lb_* metric the runbook names must be
    # present in a snapshot taken from cluster traffic.
    code = main([
        "stats", "--snapshot", str(snapshot), "--require",
        "lb_route_total", "lb_sticky_hits_total",
        "lb_health_ejections_total", "lb_routing_snapshot_age_seconds",
    ])
    assert code == 0, capsys.readouterr().out


def test_cli_cluster_runs_and_prints_layout(capsys):
    code = main([
        "cluster", "--shards", "2", "--pages", "8",
        "--max-seconds", "0.5",
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.out + captured.err
    assert "cluster lb on" in captured.out
    assert "shard 0 replica 0" in captured.out
    assert "shard 1 replica 0" in captured.out
