"""Integration tests for the wire-level transparent volume center."""

import itertools

import pytest

from repro.httpmodel.messages import HttpRequest
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER, parse_p_volume
from repro.httpwire.netcenter import TransparentHttpVolumeCenter
from repro.httpwire.netclient import HttpConnection, fetch_once
from repro.httpwire.netserver import PlainHttpServer
from repro.server.volume_center import TransparentVolumeCenter
from repro.volumes.sitewide import CrossHostVolumeStore

HOST = "legacy.example"


def make_clock():
    counter = itertools.count()
    return lambda: 1000.0 + next(counter) * 0.5


@pytest.fixture()
def legacy_origin():
    resources = {
        "/a/page.html": (b"<html>page</html>", 100.0),
        "/a/img.gif": (b"GIF89a....", 100.0),
        "/b/other.html": (b"<html>other</html>", 100.0),
    }
    with PlainHttpServer(resources) as server:
        yield server


def center_for(origin, center=None):
    return TransparentHttpVolumeCenter(
        origins={HOST: (origin.address, origin.port)},
        center=center,
        clock=make_clock(),
    )


def proxied_get(center, path, piggy_filter=None):
    request = HttpRequest(method="GET", target=f"http://{HOST}{path}")
    if piggy_filter is not None:
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", piggy_filter)
    return fetch_once(center.address, center.port, request)


class TestTransparentCenter:
    def test_plain_clients_pass_through_untouched(self, legacy_origin):
        with center_for(legacy_origin) as center:
            response = proxied_get(center, "/a/page.html")
        assert response.status == 200
        assert response.body == b"<html>page</html>"
        assert response.trailers.get(P_VOLUME_HEADER) is None
        assert response.headers.get("Via") == "1.1 repro-volume-center"
        assert legacy_origin.requests_served == 1

    def test_piggyback_injected_for_cooperating_clients(self, legacy_origin):
        with center_for(legacy_origin) as center:
            with HttpConnection(center.address, center.port) as connection:
                first = HttpRequest(method="GET", target=f"http://{HOST}/a/img.gif")
                first.headers.set("TE", "chunked")
                first.headers.set("Piggy-filter", "maxpiggy=10")
                connection.request(first)
                second = HttpRequest(method="GET", target=f"http://{HOST}/a/page.html")
                second.headers.set("TE", "chunked")
                second.headers.set("Piggy-filter", "maxpiggy=10")
                response = connection.request(second)
        message = parse_p_volume(response.trailers.get(P_VOLUME_HEADER))
        assert f"{HOST}/a/img.gif" in message.urls()

    def test_origin_never_sees_the_extension_header(self, legacy_origin):
        # PlainHttpServer would ignore it anyway; assert the exchange
        # succeeds and the origin served plain 200s for every request.
        with center_for(legacy_origin) as center:
            proxied_get(center, "/a/page.html", piggy_filter="maxpiggy=5")
            proxied_get(center, "/a/img.gif", piggy_filter="maxpiggy=5")
        assert legacy_origin.requests_served == 2

    def test_last_modified_flows_into_piggyback(self, legacy_origin):
        with center_for(legacy_origin) as center:
            proxied_get(center, "/a/img.gif", piggy_filter="maxpiggy=10")
            response = proxied_get(center, "/a/page.html", piggy_filter="maxpiggy=10")
        message = parse_p_volume(response.trailers.get(P_VOLUME_HEADER))
        element = next(e for e in message if e.url.endswith("img.gif"))
        assert element.last_modified == 100.0
        assert element.size == len(b"GIF89a....")

    def test_unknown_host_404(self, legacy_origin):
        with center_for(legacy_origin) as center:
            request = HttpRequest(method="GET", target="http://nowhere.example/x")
            response = fetch_once(center.address, center.port, request)
        assert response.status == 404

    def test_missing_host_400(self, legacy_origin):
        with center_for(legacy_origin) as center:
            response = fetch_once(
                center.address, center.port, HttpRequest(method="GET", target="/x")
            )
        assert response.status == 400

    def test_cross_host_store_allowed(self, legacy_origin):
        shared = TransparentVolumeCenter(shared_store=CrossHostVolumeStore())
        with center_for(legacy_origin, center=shared) as center:
            proxied_get(center, "/a/img.gif", piggy_filter="maxpiggy=10")
            response = proxied_get(center, "/b/other.html", piggy_filter="maxpiggy=10")
        # Cross-host store: even a different directory gets the hint.
        message = parse_p_volume(response.trailers.get(P_VOLUME_HEADER))
        assert any("img.gif" in url for url in message.urls())
