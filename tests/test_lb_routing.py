"""Unit coverage for the LB building blocks: partitioning, the hash
ring, routing snapshots and health marks, sticky pins, and the
raw-relay response reader."""

from __future__ import annotations

import io

import pytest

from repro.httpmodel.headers import Headers
from repro.httpmodel.messages import HttpParseError, HttpResponse
from repro.lb.forward import RelayedResponse, read_raw_response
from repro.lb.hashring import ConsistentHashRing, partition_key
from repro.lb.routing import BackendSlot, RoutingTable
from repro.lb.sticky import StickySessions


class FakeClock:
    def __init__(self, value=0.0):
        self.value = value

    def __call__(self):
        return self.value


def make_slots(shards, replicas=1):
    return [
        BackendSlot(shard, replica, "127.0.0.1", 9000 + 10 * shard + replica)
        for shard in range(shards)
        for replica in range(replicas)
    ]


# -- partition keys --------------------------------------------------------


def test_partition_key_host_plus_top_directory():
    assert partition_key("www.x.example/d3/p7.html") == "www.x.example/d3"
    assert partition_key("www.x.example/d3/d4/p7.html") == "www.x.example/d3"


def test_partition_key_root_resources_map_to_host():
    assert partition_key("www.x.example/index.html") == "www.x.example"
    assert partition_key("www.x.example") == "www.x.example"


def test_partition_key_groups_a_volume_onto_one_key():
    keys = {
        partition_key(f"www.x.example/d1/p{i}.html") for i in range(20)
    }
    assert keys == {"www.x.example/d1"}


# -- consistent hashing ----------------------------------------------------


def test_ring_is_deterministic_across_instances():
    first = ConsistentHashRing(4)
    second = ConsistentHashRing(4)
    keys = [f"host/d{i}" for i in range(200)]
    assert [first.shard_for_key(k) for k in keys] == [
        second.shard_for_key(k) for k in keys
    ]


def test_ring_assigns_in_range_and_uses_every_shard():
    ring = ConsistentHashRing(4)
    shards = {ring.shard_for_key(f"host/d{i}") for i in range(500)}
    assert shards == {0, 1, 2, 3}


def test_ring_single_shard_short_circuits():
    ring = ConsistentHashRing(1)
    assert ring.shard_for_key("anything") == 0


def test_ring_reshard_moves_a_minority_of_keys():
    before = ConsistentHashRing(4)
    after = ConsistentHashRing(5)
    keys = [f"host/d{i}" for i in range(1000)]
    moved = sum(
        1 for k in keys if before.shard_for_key(k) != after.shard_for_key(k)
    )
    # Consistent hashing moves ~1/5 of keys when growing 4 -> 5; plain
    # modulo hashing would move ~4/5.  Allow generous slack.
    assert moved < 400


def test_ring_validates_arguments():
    with pytest.raises(ValueError):
        ConsistentHashRing(0)
    with pytest.raises(ValueError):
        ConsistentHashRing(2, vnodes=0)


# -- backend slots ---------------------------------------------------------


def test_slot_load_accounting_and_score():
    slot = BackendSlot(0, 0, "127.0.0.1", 9000, weight=2.0)
    assert slot.load_score() == 0.0
    slot.begin()
    slot.begin()
    assert slot.inflight == 2
    assert slot.routed == 2
    assert slot.load_score() == pytest.approx(1.0)
    slot.finish()
    assert slot.inflight == 1


def test_slot_rejects_nonpositive_weight():
    with pytest.raises(ValueError):
        BackendSlot(0, 0, "127.0.0.1", 9000, weight=0.0)


# -- routing table ---------------------------------------------------------


def test_snapshot_reused_within_ttl_and_rebuilt_after():
    clock = FakeClock()
    table = RoutingTable(2, make_slots(2), snapshot_ttl=1.0, clock=clock)
    first = table.current()
    clock.value = 0.5
    assert table.current() is first
    clock.value = 1.5
    assert table.current() is not first


def test_eject_bumps_version_and_rebuilds_immediately():
    clock = FakeClock()
    slots = make_slots(2, replicas=2)
    table = RoutingTable(2, slots, snapshot_ttl=100.0, clock=clock)
    before = table.current()
    assert len(before.shards[0]) == 2
    assert table.eject(slots[0])
    after = table.current()
    assert after is not before
    assert len(after.shards[0]) == 1
    assert after.shards[0][0] is slots[1]
    # double ejection is a no-op
    assert not table.eject(slots[0])


def test_readmit_restores_rotation():
    slots = make_slots(1, replicas=2)
    table = RoutingTable(1, slots, snapshot_ttl=0.0)
    table.eject(slots[0])
    assert not table.is_healthy(slots[0])
    assert table.readmit(slots[0])
    assert table.is_healthy(slots[0])
    assert len(table.current().shards[0]) == 2
    assert not table.readmit(slots[0])


def test_probe_thresholds_need_consecutive_results():
    slots = make_slots(1, replicas=1)
    table = RoutingTable(1, slots, snapshot_ttl=0.0)
    slot = slots[0]
    # one failure does not eject
    assert table.note_probe(slot, False) is None
    assert table.is_healthy(slot)
    # an intervening success resets the failure streak
    assert table.note_probe(slot, True) is None
    assert table.note_probe(slot, False) is None
    assert table.note_probe(slot, False) == "ejected"
    assert not table.is_healthy(slot)
    # recovery needs two consecutive oks
    assert table.note_probe(slot, True) is None
    assert table.note_probe(slot, False) is None
    assert table.note_probe(slot, True) is None
    assert table.note_probe(slot, True) == "readmitted"
    assert table.is_healthy(slot)


def test_draining_backend_left_out_of_snapshot():
    slots = make_slots(1, replicas=2)
    table = RoutingTable(1, slots, snapshot_ttl=0.0)
    table.note_probe(slots[0], True, draining=True)
    snapshot = table.current()
    assert [s.key for s in snapshot.shards[0]] == [slots[1].key]
    # recovery: the origin stops reporting draining
    table.note_probe(slots[0], True, draining=False)
    assert len(table.current().shards[0]) == 2


def test_table_status_shape():
    slots = make_slots(2, replicas=2)
    table = RoutingTable(2, slots, snapshot_ttl=5.0)
    table.eject(slots[0])
    status = table.status()
    assert status["shards"] == 2
    assert status["ejections"] == 1
    assert len(status["backends"]) == 4
    ejected = [b for b in status["backends"] if not b["healthy"]]
    assert [b["key"] for b in ejected] == [slots[0].key]


def test_table_validates_slots_and_config():
    with pytest.raises(ValueError):
        RoutingTable(0, [])
    with pytest.raises(ValueError):
        RoutingTable(1, [BackendSlot(3, 0, "127.0.0.1", 9000)])
    with pytest.raises(ValueError):
        RoutingTable(1, make_slots(1), snapshot_ttl=-1.0)


# -- sticky sessions -------------------------------------------------------


def test_sticky_miss_then_pin_then_hit():
    slots = make_slots(1, replicas=2)
    sticky = StickySessions()
    candidates = tuple(slots)
    assert sticky.resolve("proxy-a", 0, candidates) == (None, False)
    sticky.pin("proxy-a", 0, slots[1])
    assert sticky.resolve("proxy-a", 0, candidates) == (slots[1], True)
    assert sticky.stats()["hits"] == 1


def test_sticky_pin_to_removed_replica_is_dropped():
    slots = make_slots(1, replicas=2)
    sticky = StickySessions()
    sticky.pin("proxy-a", 0, slots[0])
    survivor_only = (slots[1],)
    assert sticky.resolve("proxy-a", 0, survivor_only) == (None, False)
    assert sticky.stats()["repins"] == 1


def test_sticky_forget_slot_drops_every_pin():
    slots = make_slots(2, replicas=1)
    sticky = StickySessions()
    sticky.pin("a", 0, slots[0])
    sticky.pin("b", 0, slots[0])
    sticky.pin("c", 1, slots[1])
    assert sticky.forget_slot(slots[0]) == 2
    assert len(sticky) == 1


def test_sticky_capacity_evicts_oldest():
    slots = make_slots(1)
    sticky = StickySessions(capacity=2)
    sticky.pin("a", 0, slots[0])
    sticky.pin("b", 0, slots[0])
    sticky.pin("c", 0, slots[0])
    assert len(sticky) == 2
    assert sticky.resolve("a", 0, tuple(slots)) == (None, False)
    assert sticky.resolve("b", 0, tuple(slots))[0] is slots[0]
    assert sticky.stats()["evictions"] == 1


# -- raw response reader ---------------------------------------------------


def serialize(response):
    out = bytearray()
    response.serialize_into(out)
    return bytes(out)


def test_raw_reader_captures_content_length_response_verbatim():
    response = HttpResponse(status=200, body=b"hello body")
    wire = serialize(response)
    relayed = read_raw_response(io.BytesIO(wire))
    assert relayed.raw == wire
    assert relayed.status == 200
    assert serialize(relayed) == wire


def test_raw_reader_captures_chunked_trailers_verbatim():
    trailers = Headers()
    trailers.set("P-volume", "v=abc;u=1")
    response = HttpResponse(status=200, body=b"x" * 5000, trailers=trailers)
    wire = serialize(response)
    relayed = read_raw_response(io.BytesIO(wire))
    assert relayed.raw == wire
    assert relayed.trailers.get("P-volume") == "v=abc;u=1"
    assert serialize(relayed) == wire


def test_raw_reader_handles_bodiless_statuses():
    response = HttpResponse(status=304)
    response.headers.set("Content-Length", "0")
    wire = serialize(response)
    relayed = read_raw_response(io.BytesIO(wire))
    assert relayed.raw == wire
    assert relayed.status == 304


def test_raw_reader_rejects_truncated_body():
    response = HttpResponse(status=200, body=b"full body bytes")
    wire = serialize(response)
    with pytest.raises(HttpParseError):
        read_raw_response(io.BytesIO(wire[:-4]))


def test_raw_reader_eof_on_empty_stream():
    with pytest.raises(EOFError):
        read_raw_response(io.BytesIO(b""))


def test_relayed_response_serializes_bytes_not_fields():
    response = HttpResponse(status=200, body=b"payload")
    wire = serialize(response)
    relayed = read_raw_response(io.BytesIO(wire))
    # Mutating parsed fields must not affect what goes on the wire.
    relayed.headers.set("X-Tampered", "yes")
    assert serialize(relayed) == wire
    assert isinstance(relayed, RelayedResponse)
