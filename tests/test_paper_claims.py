"""The abstract's end-to-end claims, asserted on a single small workload.

The paper promises to "reduce user-perceived latency and the number of
TCP connections, improve cache coherency and cache replacement, and
enable prefetching" with small piggybacked messages and no per-proxy
server state.  Each test here pins one of those claims.
"""

import pytest

from repro.analysis.simulator import EndToEndSimulator, SimulationConfig
from repro.httpmodel.connection import ConnectionPool
from repro.proxy.proxy import ProxyConfig
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.workloads.modifications import ModificationConfig


@pytest.fixture(scope="module")
def runs(small_server_log):
    trace, site = small_server_log

    def simulate(max_piggy):
        config = SimulationConfig(
            proxy=ProxyConfig(freshness_interval=600.0,
                              max_piggyback_elements=max_piggy),
            modifications=ModificationConfig(fast_fraction=0.15,
                                             fast_mean_interval=1800.0),
        )
        simulator = EndToEndSimulator(
            site, DirectoryVolumeStore(DirectoryVolumeConfig(level=1)),
            config, horizon=trace.end_time + 1.0,
        )
        result = simulator.run(trace)
        return simulator, result

    with_piggyback = simulate(10)
    without = simulate(0)
    return trace, with_piggyback, without


class TestAbstractClaims:
    def test_fewer_server_connections(self, runs):
        """Server contacts (each potentially a TCP connection) drop."""
        _, (_, with_result), (_, without_result) = runs
        assert with_result.server_requests < without_result.server_requests

    def test_better_cache_coherency(self, runs):
        """More requests served fresh, without more staleness."""
        _, (_, with_result), (_, without_result) = runs
        assert with_result.fresh_hit_rate > without_result.fresh_hit_rate
        assert with_result.stale_rate <= without_result.stale_rate + 0.01

    def test_no_per_proxy_server_state(self, runs):
        """The server object holds no attribute keyed by proxy identity."""
        _, (simulator, _), _ = runs
        server = simulator.server
        # Everything proxy-specific arrived in request filters; the server
        # keeps only resources, a volume store, aggregate stats, and a
        # message cache keyed by canonicalized filter (shared across
        # proxies, never by proxy identity).
        assert set(vars(server)) == {
            "resources", "volume_store", "stats", "piggyback_cache"
        }

    def test_piggyback_overhead_is_small(self, runs):
        """Piggyback bytes are a small fraction of body bytes moved."""
        _, (_, with_result), _ = runs
        assert with_result.piggyback_bytes < 0.1 * with_result.body_bytes

    def test_transient_per_server_proxy_state_is_bounded(self, runs):
        """The proxy's per-server RPV state is a bounded table."""
        _, (simulator, _), _ = runs
        rpv = simulator.proxy.rpv
        assert len(rpv) <= rpv.max_servers

    def test_connection_pool_benefits_from_locality(self, runs):
        """Persistent connections get reused heavily under this workload."""
        trace, _, _ = runs
        pool = ConnectionPool(idle_timeout=60.0)
        for record in trace:
            pool.acquire("www.small.example", record.timestamp)
        assert pool.stats.reuse_rate > 0.5
