"""Tests for the metrics registry: semantics, no-op path, thread safety.

The replay-engine bit-identity check at the bottom is the telemetry
analogue of the fastreplay differential suite: enabling metrics must not
change a single counter of the replayed results.
"""

from __future__ import annotations

import threading

import pytest

import repro.telemetry as telemetry
from repro.analysis.fastreplay import replay_interned_multi
from repro.analysis.prediction import ReplayConfig, replay
from repro.analysis.sweeps import threshold_sweep
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    log_buckets,
)
from repro.traces.intern import compile_trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore


@pytest.fixture()
def registry():
    return MetricsRegistry(enabled=True)


class TestLogBuckets:
    def test_geometric_progression_covers_maximum(self):
        bounds = log_buckets(1.0, 8.0, 2.0)
        assert bounds == (1.0, 2.0, 4.0, 8.0)

    def test_last_bound_reaches_past_maximum(self):
        bounds = log_buckets(1.0, 5.0, 2.0)
        assert bounds[-1] >= 5.0

    @pytest.mark.parametrize(
        "minimum, maximum, factor",
        [(0.0, 1.0, 2.0), (-1.0, 1.0, 2.0), (2.0, 1.0, 2.0), (1.0, 2.0, 1.0)],
    )
    def test_invalid_arguments_raise(self, minimum, maximum, factor):
        with pytest.raises(ValueError):
            log_buckets(minimum, maximum, factor)

    def test_default_latency_buckets_span_wire_range(self):
        assert DEFAULT_LATENCY_BUCKETS[0] == pytest.approx(1e-4)
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 100.0


class TestCounterAndGauge:
    def test_counter_counts(self, registry):
        counter = registry.counter("requests_total", "help here")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("active_workers")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == pytest.approx(2.0)

    def test_registration_is_idempotent_for_same_kind(self, registry):
        first = registry.counter("shared_total")
        second = registry.counter("shared_total")
        assert first is second

    def test_kind_clash_raises(self, registry):
        registry.counter("clash_metric")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("clash_metric")

    @pytest.mark.parametrize("name", ["Bad", "1bad", "bad-name", "bad.name", ""])
    def test_non_snake_case_names_rejected(self, registry, name):
        with pytest.raises(ValueError):
            registry.counter(name)


class TestHistogram:
    def test_observations_land_in_buckets(self, registry):
        histogram = registry.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        snapshot = histogram._snapshot()
        assert snapshot.counts == (1, 1, 1, 1)  # last slot = overflow
        assert snapshot.count == 4
        assert snapshot.sum == pytest.approx(105.0)
        assert snapshot.min == pytest.approx(0.5)
        assert snapshot.max == pytest.approx(100.0)

    def test_cumulative_is_monotone_and_ends_at_count(self, registry):
        histogram = registry.histogram("h_cumulative", buckets=(1.0, 2.0))
        for value in (0.5, 0.6, 1.5, 9.0):
            histogram.observe(value)
        pairs = histogram._snapshot().cumulative()
        cumulative = [count for _, count in pairs]
        assert cumulative == sorted(cumulative)
        assert pairs[-1] == (float("inf"), 4)

    def test_exact_percentiles_with_kept_samples(self, registry):
        histogram = registry.histogram("h_exact", keep_samples=True)
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.percentile(50.0) == pytest.approx(50.5)
        assert histogram.percentile(99.0) == pytest.approx(99.01)
        assert histogram.samples == tuple(float(v) for v in range(1, 101))

    def test_bucket_estimated_percentile_within_bucket(self, registry):
        histogram = registry.histogram("h_approx", buckets=(1.0, 2.0, 4.0, 8.0))
        for _ in range(100):
            histogram.observe(3.0)
        estimate = histogram._snapshot().percentile(50.0)
        assert 2.0 <= estimate <= 4.0

    def test_empty_histogram_percentile_is_zero(self, registry):
        histogram = registry.histogram("h_empty")
        assert histogram.percentile(99.0) == 0.0

    def test_timer_observes_elapsed(self, registry):
        histogram = registry.histogram("h_timer")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.sum >= 0.0


class TestDisabledPath:
    def test_disabled_instruments_never_move(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("noop_total")
        gauge = registry.gauge("noop_gauge")
        histogram = registry.histogram("noop_seconds")
        counter.inc(10)
        gauge.set(5)
        histogram.observe(1.0)
        assert counter.value == 0
        assert gauge.value == 0.0
        assert histogram.count == 0

    def test_disabled_timer_is_shared_noop(self):
        registry = MetricsRegistry(enabled=False)
        histogram = registry.histogram("noop_timer_seconds")
        assert histogram.time() is histogram.time()
        with histogram.time():
            pass
        assert histogram.count == 0

    def test_enable_disable_toggle(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("toggle_total")
        counter.inc()
        registry.enable()
        counter.inc()
        registry.disable()
        counter.inc()
        assert counter.value == 1

    def test_global_helpers_toggle_both_singletons(self):
        assert not telemetry.enabled()
        telemetry.enable()
        try:
            assert telemetry.REGISTRY.enabled()
            assert telemetry.TRACER.enabled()
        finally:
            telemetry.disable()
        assert not telemetry.enabled()


class TestSnapshotAndReset:
    def test_snapshot_covers_every_kind(self, registry):
        registry.counter("snap_total", "counter help").inc(3)
        registry.gauge("snap_gauge").set(1.5)
        registry.histogram("snap_seconds").observe(0.25)
        snapshot = registry.snapshot()
        assert snapshot.counters["snap_total"] == 3
        assert snapshot.gauges["snap_gauge"] == pytest.approx(1.5)
        assert snapshot.histograms["snap_seconds"].count == 1
        assert snapshot.help["snap_total"] == "counter help"
        assert snapshot.enabled

    def test_reset_zeroes_values_keeps_registrations(self, registry):
        counter = registry.counter("reset_total")
        histogram = registry.histogram("reset_seconds", keep_samples=True)
        counter.inc(7)
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        assert histogram.samples == ()
        assert registry.counter("reset_total") is counter

    def test_names_sorted(self, registry):
        registry.counter("zz_total")
        registry.gauge("aa_gauge")
        assert registry.names() == ("aa_gauge", "zz_total")


class TestConcurrency:
    THREADS = 8
    ITERATIONS = 2_000

    def _hammer(self, registry):
        counter = registry.counter("hammer_total")
        histogram = registry.histogram("hammer_seconds", buckets=(0.5, 1.0, 2.0))
        gauge = registry.gauge("hammer_gauge")
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for i in range(self.ITERATIONS):
                    counter.inc()
                    histogram.observe((seed + i) % 3 * 0.7)
                    gauge.inc()
                    gauge.dec()
                    if i % 256 == 0:
                        registry.snapshot()
            except BaseException as exc:  # propagate to the main thread
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,), name=f"hammer-{t}")
            for t in range(self.THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors, errors
        assert counter.value == self.THREADS * self.ITERATIONS
        assert histogram.count == self.THREADS * self.ITERATIONS
        assert gauge.value == pytest.approx(0.0)

    def test_concurrent_hammering(self):
        self._hammer(MetricsRegistry(enabled=True))

    def test_concurrent_hammering_under_lock_order_detection(self, monkeypatch):
        # Fresh registry so its stripe locks are created instrumented.
        monkeypatch.setenv("REPRO_LOCKORDER", "1")
        self._hammer(MetricsRegistry(enabled=True))


class TestReplayBitIdentity:
    """Enabling telemetry must not perturb replay results at all."""

    def test_fastreplay_identical_with_telemetry_enabled(self, small_server_log):
        trace, _ = small_server_log
        compiled = compile_trace(trace)
        entries = [
            (DirectoryVolumeConfig(level=1), ReplayConfig(max_elements=20, access_filter=2)),
            (DirectoryVolumeConfig(level=0), ReplayConfig(enable_probability=0.5, seed=11)),
        ]
        baseline = replay_interned_multi(compiled, entries)
        telemetry.enable()
        try:
            instrumented = replay_interned_multi(compiled, entries)
        finally:
            telemetry.disable()
        assert instrumented == baseline
        reference = [
            replay(trace, DirectoryVolumeStore(spec), config)
            for spec, config in entries
        ]
        assert instrumented == reference

    def test_sweep_identical_and_counters_move(self, small_server_log):
        trace, _ = small_server_log
        compiled = compile_trace(trace)
        thresholds = (0.1, 0.3)
        baseline = threshold_sweep(compiled, thresholds, engine="fast", processes=1)
        telemetry.enable()
        try:
            before = telemetry.REGISTRY.snapshot().counters
            instrumented = threshold_sweep(
                compiled, thresholds, engine="fast", processes=1
            )
            after = telemetry.REGISTRY.snapshot().counters
        finally:
            telemetry.disable()
        assert instrumented == baseline
        moved = after["analysis_sweep_points_total"] - before["analysis_sweep_points_total"]
        assert moved == len(thresholds)
        completed = (
            after["analysis_sweep_points_completed_total"]
            - before["analysis_sweep_points_completed_total"]
        )
        assert completed == len(thresholds)
