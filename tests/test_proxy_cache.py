"""Unit tests for the proxy cache."""

import pytest

from repro.proxy.cache import CacheOutcome, ProxyCache


class TestProbe:
    def test_miss_then_fresh_hit(self):
        cache = ProxyCache(freshness_interval=100.0)
        assert cache.probe("h/a", 0.0) is CacheOutcome.MISS
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        assert cache.probe("h/a", 50.0) is CacheOutcome.HIT_FRESH

    def test_expired_hit_after_freshness_interval(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        assert cache.probe("h/a", 100.0) is CacheOutcome.HIT_EXPIRED

    def test_stats_track_probes(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.probe("h/a", 0.0)
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        cache.probe("h/a", 10.0)
        cache.probe("h/a", 500.0)
        assert cache.stats.misses == 1
        assert cache.stats.fresh_hits == 1
        assert cache.stats.expired_hits == 1
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.fresh_hit_rate == pytest.approx(1 / 3)


class TestPutAndValidate:
    def test_put_replaces_existing(self):
        cache = ProxyCache()
        cache.put("h/a", size=10, last_modified=1.0, now=0.0)
        cache.put("h/a", size=30, last_modified=2.0, now=5.0)
        entry = cache.entry("h/a")
        assert entry.size == 30
        assert entry.last_modified == 2.0
        assert cache.used_bytes == 30

    def test_put_with_custom_freshness_interval(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.put("h/a", size=10, last_modified=0.0, now=0.0, freshness_interval=10.0)
        assert cache.probe("h/a", 20.0) is CacheOutcome.HIT_EXPIRED

    def test_validate_extends_expiration(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        cache.validate("h/a", now=90.0)
        assert cache.probe("h/a", 150.0) is CacheOutcome.HIT_FRESH

    def test_validate_unknown_is_noop(self):
        ProxyCache().validate("h/none", now=0.0)

    def test_oversized_object_rejected(self):
        cache = ProxyCache(capacity_bytes=100)
        assert cache.put("h/big", size=200, last_modified=0.0, now=0.0) is None
        assert "h/big" not in cache


class TestEviction:
    def test_lru_eviction_under_pressure(self):
        cache = ProxyCache(capacity_bytes=100)
        cache.put("h/a", size=50, last_modified=0.0, now=0.0)
        cache.put("h/b", size=50, last_modified=0.0, now=1.0)
        cache.probe("h/a", 2.0)  # a is now more recently used than b
        cache.put("h/c", size=50, last_modified=0.0, now=3.0)
        assert "h/b" not in cache
        assert "h/a" in cache and "h/c" in cache
        assert cache.stats.evictions == 1

    def test_used_bytes_tracks_contents(self):
        cache = ProxyCache(capacity_bytes=100)
        cache.put("h/a", size=60, last_modified=0.0, now=0.0)
        cache.put("h/b", size=60, last_modified=0.0, now=1.0)
        assert cache.used_bytes == sum(e.size for e in cache.entries())
        assert cache.used_bytes <= 100 or len(cache) == 1

    def test_new_insert_protected_from_its_own_eviction(self):
        cache = ProxyCache(capacity_bytes=100)
        cache.put("h/a", size=90, last_modified=0.0, now=0.0)
        cache.put("h/b", size=90, last_modified=0.0, now=1.0)
        assert "h/b" in cache
        assert "h/a" not in cache


class TestPiggybackActions:
    def test_freshen_extends_and_marks(self):
        cache = ProxyCache(freshness_interval=100.0)
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        cache.freshen_from_piggyback("h/a", now=90.0)
        entry = cache.entry("h/a")
        assert entry.last_piggyback == 90.0
        assert cache.probe("h/a", 150.0) is CacheOutcome.HIT_FRESH
        assert cache.stats.piggyback_freshenings == 1

    def test_invalidate_removes_entry(self):
        cache = ProxyCache()
        cache.put("h/a", size=10, last_modified=0.0, now=0.0)
        assert cache.invalidate("h/a")
        assert "h/a" not in cache
        assert cache.used_bytes == 0
        assert not cache.invalidate("h/a")
        assert cache.stats.invalidations == 1


class TestValidation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProxyCache(capacity_bytes=0)
        with pytest.raises(ValueError):
            ProxyCache(freshness_interval=0.0)
