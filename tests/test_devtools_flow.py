"""Tests for the interprocedural flow layer: call graph + flow-* passes.

Each pass gets a seeded-bug fixture (a miniature ``src/repro`` tree with
a violation hidden one or more calls deep) plus negative and suppression
cases; the call graph itself is covered through alias resolution, CHA
dispatch, and the DOT export. Finally the real repository must be clean
under ``--interprocedural`` — the same gate CI enforces.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.devtools.flow import build_callgraph
from repro.devtools.flow.rules import (
    FlowBlockingReachableRule,
    FlowDeterminismTaintRule,
    FlowLockAcrossBlockingRule,
)
from repro.devtools.lint import Policy, load_builtin_rules, run_lint
from repro.devtools.lint.engine import LintReport, SourceModule, _parse_modules, collect_files

REPO_ROOT = Path(__file__).resolve().parent.parent

load_builtin_rules()


def write_tree(tmp_path: Path, files: dict[str, str]) -> list[Path]:
    paths = []
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        paths.append(path)
    return paths


def flow_lint(tmp_path: Path, files: dict[str, str], rule) -> "LintReport":
    paths = write_tree(tmp_path, files)
    return run_lint(
        tmp_path,
        paths,
        policy=Policy.everywhere(),
        rules=[rule],
        interprocedural=True,
    )


def graph_for(tmp_path: Path, files: dict[str, str]):
    paths = write_tree(tmp_path, files)
    scratch = LintReport()
    modules = _parse_modules(tmp_path, [p.resolve() for p in paths], scratch)
    assert not scratch.parse_errors
    return build_callgraph(modules)


# -- call graph ----------------------------------------------------------


def test_callgraph_resolves_aliased_module_function(tmp_path):
    graph = graph_for(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/util.py": """
                def helper():
                    return 1
            """,
            "src/pkg/main.py": """
                from . import util as u

                def entry():
                    return u.helper()
            """,
        },
    )
    sites = graph.sites("pkg.main.entry")
    assert any("pkg.util.helper" in site.targets for site in sites)


def test_callgraph_cha_dispatch_reaches_override(tmp_path):
    graph = graph_for(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/base.py": """
                class Store:
                    def observe(self):
                        return 0
            """,
            "src/pkg/impl.py": """
                from .base import Store

                class JournaledStore(Store):
                    def observe(self):
                        return 1
            """,
            "src/pkg/user.py": """
                from .base import Store

                class Server:
                    def __init__(self, store: Store):
                        self.store = store

                    def handle(self):
                        self.store.observe()
            """,
        },
    )
    sites = graph.sites("pkg.user.Server.handle")
    targets = {t for site in sites for t in site.targets}
    # CHA: both the static type's method and the subclass override.
    assert "pkg.base.Store.observe" in targets
    assert "pkg.impl.JournaledStore.observe" in targets


def test_callgraph_thread_target_creates_no_edge(tmp_path):
    graph = graph_for(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/bg.py": """
                import threading

                def work():
                    return 1

                def spawn():
                    thread = threading.Thread(target=work)
                    thread.start()
            """,
        },
    )
    targets = {t for site in graph.sites("pkg.bg.spawn") for t in site.targets}
    assert "pkg.bg.work" not in targets


def test_callgraph_dot_export(tmp_path):
    graph = graph_for(
        tmp_path,
        {
            "src/pkg/__init__.py": "",
            "src/pkg/m.py": """
                def a():
                    return b()

                def b():
                    return 2
            """,
        },
    )
    dot = graph.to_dot()
    assert dot.startswith("digraph callgraph {")
    assert '"pkg.m.a" -> "pkg.m.b";' in dot


# -- flow-blocking-reachable ---------------------------------------------


_AIO_BLOCKING_TREE = {
    "src/repro/httpwire/aio/__init__.py": "",
    "src/repro/httpwire/aio/helpers.py": """
        import time


        def flush_stats():
            # Innocent-looking sync helper; the block hides here.
            time.sleep(0.5)
    """,
    "src/repro/httpwire/aio/server.py": """
        from .helpers import flush_stats


        async def handle_request(request):
            flush_stats()
            return request
    """,
}


def test_blocking_reachable_seeded_chain(tmp_path):
    report = flow_lint(tmp_path, _AIO_BLOCKING_TREE, FlowBlockingReachableRule())
    assert [f.rule for f in report.findings] == ["flow-blocking-reachable"]
    finding = report.findings[0]
    assert "time.sleep()" in finding.message
    assert "handle_request" in finding.message
    # Evidence: the call in the coroutine, then the blocking site.
    assert len(finding.evidence) == 2
    assert finding.evidence[0].startswith("src/repro/httpwire/aio/server.py:")
    assert finding.evidence[1].startswith("src/repro/httpwire/aio/helpers.py:")


def test_blocking_reachable_protocol_callback_root(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpwire/aio/__init__.py": "",
            "src/repro/httpwire/aio/proto.py": """
                import asyncio
                import os


                def sync_fsync(fd):
                    os.fsync(fd)


                class WireProtocol(asyncio.BufferedProtocol):
                    def buffer_updated(self, nbytes):
                        sync_fsync(3)
            """,
        },
        FlowBlockingReachableRule(),
    )
    assert [f.rule for f in report.findings] == ["flow-blocking-reachable"]
    assert "buffer_updated" in report.findings[0].message


def test_blocking_reachable_offloaded_is_clean(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpwire/aio/__init__.py": "",
            "src/repro/httpwire/aio/clean.py": """
                import asyncio
                import time


                def flush_stats():
                    time.sleep(0.5)


                async def handle_request(request):
                    loop = asyncio.get_running_loop()
                    await loop.run_in_executor(None, flush_stats)
                    return request
            """,
        },
        FlowBlockingReachableRule(),
    )
    assert report.findings == []


def test_blocking_reachable_frame_suppression(tmp_path):
    tree = dict(_AIO_BLOCKING_TREE)
    tree["src/repro/httpwire/aio/helpers.py"] = """
        import time


        def flush_stats():
            # repro: allow[flow-blocking-reachable]
            time.sleep(0.5)
    """
    report = flow_lint(tmp_path, tree, FlowBlockingReachableRule())
    # The waiver sits on a deep frame, not the anchor — it still wins.
    assert report.findings == []
    assert report.suppressed == 1


# -- flow-lock-across-blocking -------------------------------------------


_LOCK_FSYNC_TREE = {
    "src/repro/server/__init__.py": "",
    "src/repro/server/journal.py": """
        import os


        def append_frame(fd, frame):
            os.write(fd, frame)
            os.fsync(fd)
    """,
    "src/repro/server/store.py": """
        import threading

        from .journal import append_frame


        class Store:
            def __init__(self):
                self._lock = threading.Lock()

            def observe(self, fd, frame):
                with self._lock:
                    append_frame(fd, frame)
    """,
}


def test_lock_across_blocking_seeded_chain(tmp_path):
    report = flow_lint(tmp_path, _LOCK_FSYNC_TREE, FlowLockAcrossBlockingRule())
    assert [f.rule for f in report.findings] == ["flow-lock-across-blocking"]
    finding = report.findings[0]
    assert "self._lock" in finding.message
    assert "os.fsync()" in finding.message
    assert len(finding.evidence) == 2


def test_lock_across_blocking_depth_zero_not_duplicated(tmp_path):
    # Direct blocking inside the with-block is the locks family's job;
    # the flow pass only reports chains of depth >= 1.
    report = flow_lint(
        tmp_path,
        {
            "src/repro/server/__init__.py": "",
            "src/repro/server/direct.py": """
                import os
                import threading

                _lock = threading.Lock()


                def observe(fd):
                    with _lock:
                        os.fsync(fd)
            """,
        },
        FlowLockAcrossBlockingRule(),
    )
    assert report.findings == []


def test_await_under_sync_lock_flagged(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/server/__init__.py": "",
            "src/repro/server/aio_mix.py": """
                import asyncio
                import threading

                _lock = threading.Lock()


                async def refresh(snapshots):
                    with _lock:
                        await snapshots.reload()
            """,
        },
        FlowLockAcrossBlockingRule(),
    )
    assert [f.rule for f in report.findings] == ["flow-lock-across-blocking"]
    assert "awaits while holding sync lock" in report.findings[0].message


def test_async_with_asyncio_lock_is_clean(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/server/__init__.py": "",
            "src/repro/server/aio_ok.py": """
                import asyncio

                _lock = asyncio.Lock()


                async def refresh(snapshots):
                    async with _lock:
                        await snapshots.reload()
            """,
        },
        FlowLockAcrossBlockingRule(),
    )
    assert report.findings == []


# -- flow-determinism-taint ----------------------------------------------


def test_determinism_taint_seeded_chain(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpmodel/__init__.py": "",
            "src/repro/httpmodel/clockutil.py": """
                import time


                def stamp():
                    return time.time()
            """,
            "src/repro/httpmodel/piggy_codec.py": """
                from .clockutil import stamp


                def format_p_volume(message):
                    return f"id={message.volume_id}; t={stamp()}"
            """,
        },
        FlowDeterminismTaintRule(),
    )
    assert [f.rule for f in report.findings] == ["flow-determinism-taint"]
    finding = report.findings[0]
    assert "time.time()" in finding.message
    assert "piggyback trailer bytes" in finding.message
    # Chain: the call in the codec, then the wall-clock read.
    assert len(finding.evidence) == 2


def test_determinism_taint_tainted_argument_into_sink(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpmodel/__init__.py": "",
            "src/repro/httpmodel/piggy_codec.py": """
                def format_p_volume(message):
                    return f"id={message}"
            """,
            "src/repro/httpmodel/caller.py": """
                import random

                from .piggy_codec import format_p_volume


                def trailer():
                    return format_p_volume(random.random())
            """,
        },
        FlowDeterminismTaintRule(),
    )
    assert [f.rule for f in report.findings] == ["flow-determinism-taint"]
    assert "random.random()" in report.findings[0].message


def test_determinism_taint_sorted_set_is_clean(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpmodel/__init__.py": "",
            "src/repro/httpmodel/piggy_codec.py": """
                def format_p_volume(ids):
                    ordered = sorted(set(ids))
                    return ",".join(str(i) for i in ordered)
            """,
        },
        FlowDeterminismTaintRule(),
    )
    assert report.findings == []


def test_determinism_taint_unsorted_set_flagged(tmp_path):
    report = flow_lint(
        tmp_path,
        {
            "src/repro/httpmodel/__init__.py": "",
            "src/repro/httpmodel/piggy_codec.py": """
                def format_p_volume(ids):
                    distinct = set(ids)
                    return ",".join(str(i) for i in distinct)
            """,
        },
        FlowDeterminismTaintRule(),
    )
    assert [f.rule for f in report.findings] == ["flow-determinism-taint"]
    assert "set iteration order" in report.findings[0].message


# -- JSON evidence surface ------------------------------------------------


def test_finding_json_includes_evidence_frames(tmp_path):
    report = flow_lint(tmp_path, _AIO_BLOCKING_TREE, FlowBlockingReachableRule())
    payload = report.findings[0].to_json()
    assert isinstance(payload["evidence"], list)
    assert all(":" in frame for frame in payload["evidence"])
    assert payload["evidence"][0].startswith("src/repro/httpwire/aio/server.py:")


# -- whole-repo gate ------------------------------------------------------


def test_repository_is_interprocedurally_clean():
    report = run_lint(REPO_ROOT, None, interprocedural=True)
    assert report.findings == [], "\n".join(
        f.render() for f in report.findings
    )


def test_repository_callgraph_covers_serving_stack():
    scratch = LintReport()
    files = collect_files(REPO_ROOT, None)
    modules = _parse_modules(REPO_ROOT, files, scratch)
    graph = build_callgraph(modules)
    # Spot-check the resolution quality on the real tree: the server's
    # dispatch into the journaled store must be visible to the passes.
    handle_sites = graph.sites("repro.server.server.PiggybackServer.handle")
    targets = {t for site in handle_sites for t in site.targets}
    assert any("observe" in t for t in targets)
    assert "repro.server.server.PiggybackServer.handle" in graph.functions
