"""Buffered access logging: buffering semantics, flush triggers, failure
surfacing, and drop-in compatibility with the wire server."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.protocol import ProxyRequest, ServerResponse
from repro.server.durability import BufferedAccessLogger, FlushScheduler
from repro.traces import read_log


def _exchange(index: int):
    request = ProxyRequest(
        url=f"www.log.example/page{index}.html",
        timestamp=1000.0 + index,
        source=f"client{index % 2}",
    )
    response = ServerResponse(
        url=request.url,
        status=200,
        timestamp=request.timestamp,
        size=100 + index,
    )
    return request, response


def test_log_buffers_without_touching_disk(tmp_path):
    path = tmp_path / "access.log"
    with BufferedAccessLogger(path, interval=60.0, max_buffer=1000) as logger:
        for index in range(5):
            logger.log(*_exchange(index))
        assert logger.buffered() == 5
        assert logger.lines_written == 0
        assert path.stat().st_size == 0  # nothing flushed yet
        logger.flush()
        assert logger.buffered() == 0
        assert logger.lines_written == 5
    # The file parses as a Common Log Format trace, in order.
    records = read_log(path)
    assert [record.url for record in records] == [
        f"/page{i}.html" for i in range(5)
    ]


def test_high_water_mark_triggers_a_flush_without_waiting(tmp_path):
    path = tmp_path / "access.log"
    with BufferedAccessLogger(path, interval=60.0, max_buffer=4) as logger:
        for index in range(4):
            logger.log(*_exchange(index))
        deadline = time.monotonic() + 5
        while logger.lines_written < 4 and time.monotonic() < deadline:
            time.sleep(0.01)
        # The 60s interval never elapsed; the wake did the work.
        assert logger.lines_written == 4


def test_periodic_flush_drains_the_buffer(tmp_path):
    path = tmp_path / "access.log"
    with BufferedAccessLogger(path, interval=0.05, max_buffer=10_000) as logger:
        logger.log(*_exchange(0))
        deadline = time.monotonic() + 5
        while logger.lines_written < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert logger.lines_written == 1


def test_close_flushes_the_tail_and_is_idempotent(tmp_path):
    path = tmp_path / "access.log"
    logger = BufferedAccessLogger(path, interval=60.0)
    logger.log(*_exchange(0))
    logger.close()
    logger.close()
    assert len(read_log(path)) == 1


def test_sync_mode_writes_identical_content(tmp_path):
    plain = tmp_path / "plain.log"
    synced = tmp_path / "synced.log"
    with BufferedAccessLogger(plain, interval=60.0) as a, BufferedAccessLogger(
        synced, interval=60.0, sync=True
    ) as b:
        for index in range(3):
            a.log(*_exchange(index))
            b.log(*_exchange(index))
    assert plain.read_bytes() == synced.read_bytes()


def test_constructor_validation(tmp_path):
    with pytest.raises(ValueError):
        BufferedAccessLogger(tmp_path / "x.log", max_buffer=0)
    with pytest.raises(ValueError):
        FlushScheduler(lambda: None, interval=0.0)


def test_scheduler_surfaces_flush_failures_on_stop():
    calls = []

    def broken_flush():
        calls.append(1)
        raise OSError("disk gone")

    scheduler = FlushScheduler(broken_flush, interval=60.0).start()
    scheduler.wake()
    deadline = time.monotonic() + 5
    while not calls and time.monotonic() < deadline:
        time.sleep(0.01)
    with pytest.raises(OSError, match="disk gone"):
        scheduler.stop()


def test_concurrent_logging_loses_nothing(tmp_path):
    path = tmp_path / "access.log"
    per_thread = 200
    with BufferedAccessLogger(path, interval=0.02, max_buffer=32) as logger:
        def worker(worker_id: int):
            for index in range(per_thread):
                logger.log(*_exchange(worker_id * per_thread + index))

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10)
    assert logger.lines_written == 4 * per_thread
    assert len(read_log(path)) == 4 * per_thread
