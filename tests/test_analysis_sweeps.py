"""The sweep engine: declarative grids, parallel fan-out, CLI integration."""

from __future__ import annotations

import json

import pytest

from repro.analysis.prediction import ReplayConfig
from repro.analysis.sweeps import (
    SweepPoint,
    directory_sweep,
    rpv_sweep,
    run_sweep,
    threshold_sweep,
)
from repro.cli import main
from repro.volumes.directory import DirectoryVolumeConfig


@pytest.fixture(scope="module")
def server_trace(small_server_log):
    trace, _ = small_server_log
    return trace


class TestRunSweep:
    def test_empty(self, server_trace):
        assert run_sweep(server_trace, []) == []

    def test_fast_matches_reference(self, server_trace):
        points = [
            SweepPoint("a", DirectoryVolumeConfig(level=1),
                       ReplayConfig(max_elements=10), (("level", 1),)),
            SweepPoint("b", DirectoryVolumeConfig(level=1),
                       ReplayConfig(max_elements=10, access_filter=3)),
            SweepPoint("c", DirectoryVolumeConfig(level=0),
                       ReplayConfig(rpv_min_gap=30.0)),
        ]
        fast = run_sweep(server_trace, points)
        reference = run_sweep(server_trace, points, engine="reference")
        assert [r.metrics for r in fast] == [r.metrics for r in reference]
        assert [r.label for r in fast] == ["a", "b", "c"]
        assert fast[0].param("level") == 1
        assert fast[1].param("level", default=-1) == -1

    def test_parallel_matches_serial(self, server_trace):
        points = [
            SweepPoint(f"f={f}", DirectoryVolumeConfig(level=1),
                       ReplayConfig(max_elements=20, access_filter=f))
            for f in (1, 2, 5, 10)
        ]
        serial = run_sweep(server_trace, points, processes=1)
        parallel = run_sweep(server_trace, points, processes=2)
        assert [r.metrics for r in serial] == [r.metrics for r in parallel]

    def test_unknown_engine(self, server_trace):
        with pytest.raises(ValueError, match="unknown engine"):
            run_sweep(server_trace, [SweepPoint("a", DirectoryVolumeConfig())],
                      engine="warp")


class TestCannedSweeps:
    def test_threshold_sweep_fast_equals_reference(self, server_trace):
        thresholds = (0.1, 0.25, 0.5)
        fast = threshold_sweep(server_trace, thresholds)
        reference = threshold_sweep(server_trace, thresholds, engine="reference")
        assert [r.metrics for r in fast] == [r.metrics for r in reference]
        assert [r.param("threshold") for r in fast] == sorted(thresholds)
        # Raising the threshold can only shrink volumes, never grow messages.
        sizes = [r.metrics.mean_piggyback_size for r in fast]
        assert sizes == sorted(sizes, reverse=True)

    def test_directory_sweep_fast_equals_reference(self, server_trace):
        fast = directory_sweep(server_trace, levels=(0, 1), access_filters=(1, 5))
        reference = directory_sweep(server_trace, levels=(0, 1),
                                    access_filters=(1, 5), engine="reference")
        assert [r.metrics for r in fast] == [r.metrics for r in reference]
        assert len(fast) == 4

    def test_rpv_sweep_fast_equals_reference(self, server_trace):
        fast = rpv_sweep(server_trace, levels=(0,), access_filters=(5,),
                         min_gaps=(0.0, 60.0))
        reference = rpv_sweep(server_trace, levels=(0,), access_filters=(5,),
                              min_gaps=(0.0, 60.0), engine="reference")
        assert [r.metrics for r in fast] == [r.metrics for r in reference]
        paced = {r.param("min_gap"): r.metrics for r in fast}
        assert paced[60.0].piggyback_messages <= paced[0.0].piggyback_messages


class TestSweepCli:
    def test_threshold_sweep_json(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--preset", "aiusa", "--scale", "0.1",
            "--kind", "thresholds", "--thresholds", "0.1", "0.25",
            "--out", str(out),
        ])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["kind"] == "thresholds"
        assert len(payload["points"]) == 2
        assert payload["points"][0]["params"] == {"threshold": 0.1}
        assert "avg-piggyback" in capsys.readouterr().out

    def test_directory_sweep_stdout(self, capsys):
        code = main([
            "sweep", "--preset", "aiusa", "--scale", "0.1",
            "--kind", "directory", "--levels", "0", "--filters", "1", "10",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3  # header + 2 points
