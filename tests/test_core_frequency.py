"""Unit tests for piggyback pacing policies."""

import pytest

from repro.core.frequency import (
    AdaptiveGap,
    AlwaysEnable,
    MinimumGap,
    RandomEnable,
    make_policy,
)


class TestAlwaysEnable:
    def test_always_true(self):
        policy = AlwaysEnable()
        assert all(policy.should_enable("s", float(t)) for t in range(5))


class TestRandomEnable:
    def test_probability_zero_never_enables(self):
        policy = RandomEnable(0.0, seed=1)
        assert not any(policy.should_enable("s", float(t)) for t in range(100))

    def test_probability_one_always_enables(self):
        policy = RandomEnable(1.0, seed=1)
        assert all(policy.should_enable("s", float(t)) for t in range(100))

    def test_rate_close_to_probability(self):
        policy = RandomEnable(0.3, seed=2)
        rate = sum(policy.should_enable("s", 0.0) for _ in range(5000)) / 5000
        assert rate == pytest.approx(0.3, abs=0.03)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            RandomEnable(1.5)


class TestMinimumGap:
    def test_enables_before_any_piggyback(self):
        policy = MinimumGap(gap=60.0)
        assert policy.should_enable("s", 0.0)

    def test_disables_within_gap(self):
        policy = MinimumGap(gap=60.0)
        policy.observe_piggyback("s", 100.0, useful=True)
        assert not policy.should_enable("s", 130.0)
        assert policy.should_enable("s", 160.0)

    def test_gap_is_per_server(self):
        policy = MinimumGap(gap=60.0)
        policy.observe_piggyback("a", 100.0, useful=True)
        assert policy.should_enable("b", 110.0)

    def test_paper_default_one_minute(self):
        # "disabling piggybacks from servers which have sent piggybacks
        # within the last minute"
        policy = MinimumGap()
        policy.observe_piggyback("s", 0.0, useful=False)
        assert not policy.should_enable("s", 59.0)
        assert policy.should_enable("s", 60.0)


class TestAdaptiveGap:
    def test_useless_piggybacks_grow_the_gap(self):
        policy = AdaptiveGap(initial_gap=60.0, max_gap=600.0)
        policy.observe_piggyback("s", 0.0, useful=False)
        assert policy.current_gap("s") == 120.0
        policy.observe_piggyback("s", 200.0, useful=False)
        assert policy.current_gap("s") == 240.0

    def test_useful_piggybacks_shrink_the_gap(self):
        policy = AdaptiveGap(initial_gap=60.0, min_gap=5.0)
        policy.observe_piggyback("s", 0.0, useful=True)
        assert policy.current_gap("s") == 30.0

    def test_gap_clamped(self):
        policy = AdaptiveGap(initial_gap=60.0, min_gap=50.0, max_gap=70.0)
        policy.observe_piggyback("s", 0.0, useful=True)
        assert policy.current_gap("s") == 50.0
        policy.observe_piggyback("s", 100.0, useful=False)
        assert policy.current_gap("s") == 70.0

    def test_should_enable_respects_current_gap(self):
        policy = AdaptiveGap(initial_gap=60.0)
        policy.observe_piggyback("s", 0.0, useful=False)  # gap becomes 120
        assert not policy.should_enable("s", 100.0)
        assert policy.should_enable("s", 121.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveGap(initial_gap=10.0, min_gap=20.0, max_gap=30.0)
        with pytest.raises(ValueError):
            AdaptiveGap(grow=0.5)


class TestMakePolicy:
    def test_constructs_by_name(self):
        assert isinstance(make_policy("always"), AlwaysEnable)
        assert isinstance(make_policy("random", probability=0.5), RandomEnable)
        assert isinstance(make_policy("min-gap", gap=30.0), MinimumGap)
        assert isinstance(make_policy("adaptive"), AdaptiveGap)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_policy("nope")
