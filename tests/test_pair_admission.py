"""Tests for HREF-restricted pair counting and ProxyConfig validation."""

import pytest

from repro.proxy.proxy import ProxyConfig
from repro.volumes.probability import PairwiseConfig, PairwiseEstimator
from repro.workloads.sitegen import SiteConfig, generate_site
from repro.workloads.synth import ServerLogConfig, generate_server_log

from conftest import make_record


class TestPairAdmission:
    def test_predicate_blocks_unlinked_pairs(self):
        estimator = PairwiseEstimator(
            PairwiseConfig(window=10.0,
                           pair_admitted=lambda r, s: (r, s) == ("h/a", "h/b"))
        )
        estimator.observe(make_record(0.0, "s", "h/a"))
        estimator.observe(make_record(1.0, "s", "h/b"))
        estimator.observe(make_record(2.0, "s", "h/c"))
        assert estimator.probability("h/a", "h/b") == 1.0
        assert estimator.probability("h/a", "h/c") == 0.0
        assert estimator.probability("h/b", "h/c") == 0.0

    def test_site_reachability_predicate(self):
        site = generate_site(SiteConfig(page_count=30, directory_count=5, seed=8))
        page_url = next(u for u, p in site.pages.items() if p.embedded or p.links)
        page = site.pages[page_url]
        target = (page.embedded or page.links)[0]
        assert site.is_reachable(page_url, target)
        assert not site.is_reachable(target, page_url)  # images have no links
        assert not site.is_reachable(page_url, "h/not/there.html")

    def test_reachability_restricted_estimation_on_synthetic_log(self):
        config = ServerLogConfig(
            site=SiteConfig(host="www.r.example", page_count=30,
                            directory_count=5, seed=9),
            source_count=15, session_count=150, duration_days=1.0, seed=10,
        )
        trace, site = generate_server_log(config)
        unrestricted = PairwiseEstimator(PairwiseConfig(window=300.0))
        unrestricted.observe_trace(trace)
        restricted = PairwiseEstimator(
            PairwiseConfig(window=300.0, pair_admitted=site.is_reachable)
        )
        restricted.observe_trace(trace)
        assert restricted.counter_count < unrestricted.counter_count
        # Every surviving implication is a real link on the site.
        for implication in restricted.implications(0.0):
            assert site.is_reachable(implication.antecedent, implication.consequent)


class TestProxyConfigValidation:
    def test_rpv_timeout_bounded_by_freshness_interval(self):
        # Section 2.2: an RPV entry older than Δ would block refreshes.
        with pytest.raises(ValueError):
            ProxyConfig(freshness_interval=10.0, rpv_timeout=60.0)

    def test_valid_config_accepted(self):
        config = ProxyConfig(freshness_interval=100.0, rpv_timeout=100.0)
        assert config.rpv_timeout == 100.0

    def test_nonpositive_freshness_rejected(self):
        with pytest.raises(ValueError):
            ProxyConfig(freshness_interval=0.0)
