"""Unit tests for chunked transfer-coding with trailers."""

import pytest

from repro.httpmodel.chunked import ChunkedDecodeError, decode_chunked, encode_chunked
from repro.httpmodel.headers import Headers


class TestEncode:
    def test_empty_body_no_trailers(self):
        assert encode_chunked(b"") == b"0\r\n\r\n"

    def test_single_chunk(self):
        encoded = encode_chunked(b"hello", chunk_size=4096)
        assert encoded == b"5\r\nhello\r\n0\r\n\r\n"

    def test_chunk_size_splits_body(self):
        encoded = encode_chunked(b"abcdef", chunk_size=4)
        assert encoded == b"4\r\nabcd\r\n2\r\nef\r\n0\r\n\r\n"

    def test_trailers_after_zero_chunk(self):
        trailers = Headers([("P-volume", "id=1; e=/x|0|1")])
        encoded = encode_chunked(b"hi", trailers=trailers)
        assert encoded.endswith(b"0\r\nP-volume: id=1; e=/x|0|1\r\n\r\n")

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            encode_chunked(b"x", chunk_size=0)


class TestDecode:
    def test_round_trip_no_trailers(self):
        body, trailers, rest = decode_chunked(encode_chunked(b"payload", chunk_size=3))
        assert body == b"payload"
        assert len(trailers) == 0
        assert rest == b""

    def test_round_trip_with_trailers(self):
        sent = Headers([("P-volume", "id=7"), ("X-Extra", "1")])
        body, trailers, rest = decode_chunked(encode_chunked(b"data", trailers=sent))
        assert body == b"data"
        assert trailers == sent
        assert rest == b""

    def test_remainder_preserved_for_pipelining(self):
        encoded = encode_chunked(b"one") + b"NEXT MESSAGE"
        body, _, rest = decode_chunked(encoded)
        assert body == b"one"
        assert rest == b"NEXT MESSAGE"

    def test_chunk_extensions_ignored(self):
        data = b"5;ext=1\r\nhello\r\n0\r\n\r\n"
        body, _, _ = decode_chunked(data)
        assert body == b"hello"

    def test_hex_sizes(self):
        payload = b"x" * 0x1A
        data = b"1a\r\n" + payload + b"\r\n0\r\n\r\n"
        body, _, _ = decode_chunked(data)
        assert body == payload

    def test_truncated_size_line(self):
        with pytest.raises(ChunkedDecodeError):
            decode_chunked(b"5")

    def test_truncated_chunk_data(self):
        with pytest.raises(ChunkedDecodeError):
            decode_chunked(b"5\r\nhel")

    def test_missing_crlf_after_chunk(self):
        with pytest.raises(ChunkedDecodeError):
            decode_chunked(b"2\r\nabXX0\r\n\r\n")

    def test_bad_size_token(self):
        with pytest.raises(ChunkedDecodeError):
            decode_chunked(b"zz\r\nab\r\n0\r\n\r\n")

    def test_truncated_trailer_block(self):
        with pytest.raises(ChunkedDecodeError):
            decode_chunked(b"0\r\nP-volume: id=1")

    def test_large_round_trip(self):
        body = bytes(range(256)) * 100
        decoded, _, rest = decode_chunked(encode_chunked(body, chunk_size=500))
        assert decoded == body
        assert rest == b""
