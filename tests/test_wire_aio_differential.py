"""Differential suite: the async wire stack against its threaded oracle.

The threaded stack is the reference implementation; the asyncio stack
must be *bit-identical* on the wire.  Both frontends are driven with the
same deterministic request stream against identically built engines
(clock pinned per request), and the raw bytes each server puts on the
socket — status line, headers, chunked framing, ``P-volume`` trailers —
are captured and compared element-wise, in keep-alive and
``Connection: close`` modes.

Beyond byte identity, the async frontend gets the same abuse the
threaded one already survives: transport faults via
:class:`FaultInjectingInterposer`, the ``/.repro/`` admin namespace
(status, drain-with-in-flight-request, snapshot, reload), idle
keep-alive reaping, and the open/closed-loop async load generator.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

import durability_driver as driver
from repro.httpmodel.messages import HttpRequest, read_response
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER
from repro.httpwire.aio import (
    AsyncPiggybackHttpProxy,
    AsyncPiggybackHttpServer,
    run_load_async,
)
from repro.httpwire.faults import Fault, FaultInjectingInterposer
from repro.httpwire.loadgen import LoadConfig
from repro.httpwire.netclient import HttpConnection, fetch_once
from repro.httpwire.netproxy import PiggybackHttpProxy, UpstreamPolicy
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.proxy.proxy import ProxyConfig
from repro.server.durability import DurableState
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.aiodiff.example"
PAGES = {
    f"{HOST}/d{d}/p{p}.html": 400 + 90 * d + 17 * p
    for d in range(3)
    for p in range(5)
}
BACKEND_CLASSES = {
    "threaded": PiggybackHttpServer,
    "async": AsyncPiggybackHttpServer,
}
FAST_RETRIES = UpstreamPolicy(
    timeout=0.5, max_attempts=3, backoff=0.01, backoff_factor=2.0
)


class SettableClock:
    def __init__(self, value=1_000_000.0):
        self.value = value

    def __call__(self):
        return self.value


class TeeReader:
    """Binary reader recording every byte ``read_response`` consumes."""

    def __init__(self, raw):
        self.raw = raw
        self.taken = bytearray()

    def read(self, size=-1):
        data = self.raw.read(size)
        self.taken += data
        return data

    def readline(self, limit=-1):
        data = self.raw.readline(limit)
        self.taken += data
        return data


def build_engine():
    resources = ResourceStore()
    for url, size in PAGES.items():
        resources.add(url, size=size, last_modified=100.0)
    return PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )


def request_stream(count=60, seed=11):
    """Deterministic (timestamp, request) stream exercising the piggyback
    path: repeat visits from a handful of proxies, plus a 404 probe."""
    import random

    rng = random.Random(seed)
    urls = sorted(PAGES)
    stream = []
    now = 1_000_000.0
    for index in range(count):
        now += rng.expovariate(1.0 / 15.0)
        if index % 19 == 18:
            target = "/missing/nothing.html"
        else:
            target = "/" + rng.choice(urls).partition("/")[2]
        request = HttpRequest(method="GET", target=target)
        request.headers.set("Host", HOST)
        request.headers.set("X-Proxy-Name", f"proxy-{rng.randrange(3)}")
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", "maxpiggy=8")
        stream.append((now, request))
    return stream


def collect_wire_bytes(server_cls, stream, keepalive):
    """Run *stream* against a fresh engine behind *server_cls*; return the
    exact bytes each response occupied on the wire, plus parsed copies."""
    clock = SettableClock()
    raws, parsed = [], []
    with server_cls(build_engine(), site_host=HOST, clock=clock) as origin:

        def exchange(sock, reader, timestamp, request):
            clock.value = timestamp
            sock.sendall(request.serialize())
            tee = TeeReader(reader)
            response = read_response(tee)
            raws.append(bytes(tee.taken))
            parsed.append(response)

        if keepalive:
            with socket.create_connection(
                (origin.address, origin.port), timeout=10.0
            ) as sock:
                reader = sock.makefile("rb")
                for timestamp, request in stream:
                    exchange(sock, reader, timestamp, request)
        else:
            from repro.httpmodel.headers import Headers

            for timestamp, request in stream:
                request = HttpRequest(
                    method=request.method,
                    target=request.target,
                    headers=Headers(request.headers),
                )
                request.headers.set("Connection", "close")
                with socket.create_connection(
                    (origin.address, origin.port), timeout=10.0
                ) as sock:
                    reader = sock.makefile("rb")
                    exchange(sock, reader, timestamp, request)
    return raws, parsed


# -- byte identity ---------------------------------------------------------


@pytest.mark.parametrize("keepalive", [True, False], ids=["keepalive", "close"])
def test_async_responses_byte_identical_to_threaded(keepalive):
    stream = request_stream()
    threaded_raw, threaded_parsed = collect_wire_bytes(
        PiggybackHttpServer, stream, keepalive
    )
    async_raw, _ = collect_wire_bytes(AsyncPiggybackHttpServer, stream, keepalive)
    assert len(threaded_raw) == len(async_raw) == len(stream)
    for index, (expected, actual) in enumerate(zip(threaded_raw, async_raw)):
        assert expected == actual, f"response {index} diverges on the wire"
    # The stream must actually exercise the protocol, not just agree on
    # trivia: piggyback trailers and a 404 both appear.
    trailers = [
        response.trailers.get(P_VOLUME_HEADER) for response in threaded_parsed
    ]
    assert any(trailer is not None for trailer in trailers)
    assert any(response.status == 404 for response in threaded_parsed)
    for response, (_, request) in zip(threaded_parsed, stream):
        if response.status == 200:
            url = HOST + request.target
            assert response.body == synthetic_body(url, PAGES[url])


def test_malformed_request_identical_400():
    payload = b"NOT A REQUEST\r\n\r\n"
    replies = {}
    for label, cls in BACKEND_CLASSES.items():
        with cls(build_engine(), site_host=HOST) as origin:
            with socket.create_connection(
                (origin.address, origin.port), timeout=5.0
            ) as sock:
                sock.sendall(payload)
                sock.settimeout(2.0)
                chunks = []
                try:
                    while True:
                        piece = sock.recv(4096)
                        if not piece:
                            break
                        chunks.append(piece)
                except TimeoutError:
                    pass
                replies[label] = b"".join(chunks)
    assert replies["threaded"].startswith(b"HTTP/1.1 400")
    assert replies["threaded"] == replies["async"]


def test_async_proxy_responses_byte_identical_to_threaded():
    """Same client stream through a threaded vs an async proxy (each over
    its own threaded origin): identical bytes on the client wire,
    including cache-hit revisits and a 404."""
    targets = [f"http://{url}" for url in sorted(PAGES)[:4]]
    targets = targets + targets + [f"http://{HOST}/missing/nothing.html"]
    raws = {}
    for label, proxy_cls in {
        "threaded": PiggybackHttpProxy, "async": AsyncPiggybackHttpProxy
    }.items():
        clock = SettableClock()
        taken = []
        with PiggybackHttpServer(
            build_engine(), site_host=HOST, clock=clock
        ) as origin:
            proxy = proxy_cls(
                origins={HOST: (origin.address, origin.port)},
                config=ProxyConfig(name="diff-proxy"),
                clock=clock,
            )
            with proxy:
                with socket.create_connection(
                    (proxy.address, proxy.port), timeout=10.0
                ) as sock:
                    reader = sock.makefile("rb")
                    for index, target in enumerate(targets):
                        clock.value = 1_000_000.0 + index * 15.0
                        request = HttpRequest(method="GET", target=target)
                        request.headers.set("Host", HOST)
                        sock.sendall(request.serialize())
                        tee = TeeReader(reader)
                        read_response(tee)
                        taken.append(bytes(tee.taken))
        raws[label] = taken
    assert len(raws["threaded"]) == len(targets)
    for index, (expected, actual) in enumerate(
        zip(raws["threaded"], raws["async"])
    ):
        assert expected == actual, f"proxy response {index} diverges"
    assert any(raw.startswith(b"HTTP/1.1 404") for raw in raws["threaded"])


# -- transport faults against the async server -----------------------------


def get_via(connection, url):
    request = HttpRequest(method="GET", target="/" + url.partition("/")[2])
    request.headers.set("Host", HOST)
    return connection.request_once(request)


@pytest.mark.parametrize(
    "fault",
    [
        Fault.reset_after(120),
        Fault.truncate_after(80),
        Fault.garbage(),
        Fault.delay(0.05),
    ],
    ids=["reset", "truncate", "garbage", "delay"],
)
def test_async_origin_survives_client_side_faults(fault):
    """Every odd client connection is mangled by the interposer; the async
    origin must survive and keep answering clean connections perfectly."""
    schedule = lambda index: fault if index % 2 == 0 else Fault.none()
    with AsyncPiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        with FaultInjectingInterposer(
            (origin.address, origin.port), schedule=schedule
        ) as interposer:
            ok = 0
            for attempt, url in enumerate(sorted(PAGES)):
                connection = HttpConnection(
                    interposer.address, interposer.port, timeout=2.0
                )
                try:
                    response = get_via(connection, url)
                    if response.status == 200:
                        assert response.body == synthetic_body(url, PAGES[url])
                        ok += 1
                except (EOFError, TimeoutError, ConnectionError, OSError, ValueError):
                    pass  # the fault's job; the server must not care
                finally:
                    connection.close()
            assert ok >= len(PAGES) // 2  # the clean half got through
        # The origin is still fully healthy after the abuse.
        request = HttpRequest(method="GET", target="/" + sorted(PAGES)[0].partition("/")[2])
        request.headers.set("Host", HOST)
        assert fetch_once(origin.address, origin.port, request).status == 200
    assert origin.active_workers() == 0, "leaked connection tasks"


def test_async_proxy_masks_faulty_origin_with_retries():
    """Async proxy over an interposed origin: every odd upstream
    connection is reset, retries must mask it fully (chaos parity)."""
    schedule = lambda index: Fault.reset_after(100) if index % 2 == 0 else Fault.none()
    with PiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        with FaultInjectingInterposer(
            (origin.address, origin.port), schedule=schedule
        ) as interposer:
            proxy = AsyncPiggybackHttpProxy(
                origins={HOST: (interposer.address, interposer.port)},
                config=ProxyConfig(name="aio-chaos-proxy"),
                upstream_policy=FAST_RETRIES,
            )
            with proxy:
                with HttpConnection(proxy.address, proxy.port, timeout=5.0) as conn:
                    for url in sorted(PAGES)[:6]:
                        request = HttpRequest(method="GET", target=f"http://{url}")
                        request.headers.set("Host", HOST)
                        response = conn.request_once(request)
                        assert response.status == 200
                        assert response.body == synthetic_body(url, PAGES[url])
            assert proxy.upstream.stats.retries > 0, "fault never actually hit"
    assert proxy.active_workers() == 0


# -- admin namespace on the async backend ----------------------------------


def admin_request(server, method, path):
    import http.client

    connection = http.client.HTTPConnection(server.address, server.port, timeout=10)
    try:
        connection.request(method, path, headers={"Host": HOST})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


def test_async_admin_status_and_unknown_paths():
    with AsyncPiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        url = sorted(PAGES)[0]
        request = HttpRequest(method="GET", target="/" + url.partition("/")[2])
        request.headers.set("Host", HOST)
        assert fetch_once(origin.address, origin.port, request).status == 200
        status, body = admin_request(origin, "GET", "/.repro/status")
        assert status == 200
        payload = json.loads(body)
        assert payload["server"].startswith("origin:")
        assert payload["draining"] is False
        assert payload["wire_stats"]["requests_served"] >= 1
        assert admin_request(origin, "GET", "/.repro/snapshot")[0] == 405
        assert admin_request(origin, "GET", "/.repro/bogus")[0] == 404


def test_async_drain_inline_closes_listener_before_ack():
    """Inline (loop-thread) drain: by the time the client has the drain
    acknowledgement, the listener must already refuse new connections —
    the exact ordering the threaded stack guarantees."""
    with AsyncPiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        status, body = admin_request(origin, "POST", "/.repro/drain")
        assert status == 200 and json.loads(body)["draining"] is True
        with pytest.raises(OSError):
            probe = socket.create_connection(
                (origin.address, origin.port), timeout=1.0
            )
            # A refused connect raises above; if the kernel accepted it
            # before close, the server must hang up without answering.
            probe.settimeout(1.0)
            probe.sendall(b"GET /.repro/status HTTP/1.1\r\nHost: h\r\n\r\n")
            if probe.recv(1) != b"":
                raise AssertionError("drained server answered a new connection")
            raise ConnectionError("connection was accepted then dropped")  # noqa: TRY301
        origin.stop()
        assert origin.wire_stats.requests_served == 1


@pytest.fixture()
def durable_async_origin(tmp_path):
    site_resources = ResourceStore()
    for url, size in PAGES.items():
        site_resources.add(url, size=size, last_modified=100.0)
    state = DurableState(tmp_path / "state", driver.make_store,
                         resources=site_resources)
    engine = PiggybackServer(site_resources, state.store)
    server = AsyncPiggybackHttpServer(
        engine, site_host=HOST, durable_state=state
    )
    server.start()
    try:
        yield server, engine, state
    finally:
        server.stop()
        state.close()


def test_async_drain_finishes_in_flight_request(durable_async_origin):
    """Offloaded (executor-thread) drain with a request mid-handler: the
    in-flight request completes, new connections are refused."""
    server, engine, _state = durable_async_origin
    path = "/" + sorted(PAGES)[0].partition("/")[2]
    started = threading.Event()
    release = threading.Event()
    original_handle = engine.handle

    def gated_handle(request):
        started.set()
        assert release.wait(10), "in-flight request was abandoned"
        return original_handle(request)

    engine.handle = gated_handle
    results = {}

    def in_flight():
        results["status"], results["body"] = admin_request(server, "GET", path)

    worker = threading.Thread(target=in_flight, daemon=True)
    worker.start()
    assert started.wait(10)

    status, body = admin_request(server, "POST", "/.repro/drain")
    assert status == 200 and json.loads(body)["draining"] is True

    with pytest.raises(OSError):
        probe = socket.create_connection((server.address, server.port), timeout=1.0)
        probe.settimeout(1.0)
        probe.sendall(b"GET /x HTTP/1.1\r\nHost: h\r\n\r\n")
        if probe.recv(1) == b"":
            raise ConnectionError("accepted then dropped")  # noqa: TRY301
        raise AssertionError("drained server answered a new connection")

    release.set()
    worker.join(10)
    assert not worker.is_alive()
    assert results["status"] == 200

    deadline = time.monotonic() + 5
    while server.active_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.active_workers() == 0


def test_async_snapshot_and_reload(durable_async_origin):
    server, engine, state = durable_async_origin
    path = "/" + sorted(PAGES)[0].partition("/")[2]
    for _ in range(3):
        assert admin_request(server, "GET", path)[0] == 200
    status, body = admin_request(server, "POST", "/.repro/snapshot")
    assert status == 200
    assert json.loads(body)["last_seq"] >= 1
    base_before = state.store.epoch_base
    status, body = admin_request(server, "POST", "/.repro/reload")
    assert status == 200
    payload = json.loads(body)
    assert payload["last_seq"] == state.store.journal.last_seq
    assert state.store.epoch_base > base_before
    # The origin still serves correctly from the reloaded state.
    assert admin_request(server, "GET", path)[0] == 200


# -- idle keep-alive reaping (both backends) -------------------------------


@pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES), ids=sorted(BACKEND_CLASSES))
def test_idle_keepalive_connection_is_reaped(backend):
    server_cls = BACKEND_CLASSES[backend]
    url = sorted(PAGES)[0]
    with server_cls(
        build_engine(), site_host=HOST, io_timeout=5.0, idle_timeout=0.2
    ) as origin:
        connection = HttpConnection(origin.address, origin.port, timeout=5.0)
        try:
            request = HttpRequest(method="GET", target="/" + url.partition("/")[2])
            request.headers.set("Host", HOST)
            assert connection.request(request).status == 200
            deadline = time.monotonic() + 3.0
            while origin.wire_stats.idle_reaped < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert origin.wire_stats.idle_reaped == 1
            assert origin.wire_stats.idle_timeouts == 0
            # The client's next request transparently reconnects.
            assert connection.request(request).status == 200
        finally:
            connection.close()


@pytest.mark.parametrize("backend", sorted(BACKEND_CLASSES), ids=sorted(BACKEND_CLASSES))
def test_silent_client_counts_as_idle_timeout_not_reap(backend):
    """A connection that never completes a request is an idle *timeout*;
    ``idle_reaped`` counts only post-response keep-alive reaping."""
    server_cls = BACKEND_CLASSES[backend]
    with server_cls(
        build_engine(), site_host=HOST, io_timeout=0.3, idle_timeout=5.0
    ) as origin:
        silent = socket.create_connection((origin.address, origin.port))
        try:
            deadline = time.monotonic() + 3.0
            while origin.wire_stats.idle_timeouts < 1 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert origin.wire_stats.idle_timeouts == 1
            assert origin.wire_stats.idle_reaped == 0
        finally:
            silent.close()


# -- async load generator --------------------------------------------------


def loadgen_validator():
    def validate(url, response):
        return response.status == 200 and response.body == synthetic_body(
            url, PAGES[url]
        )

    return validate


def test_async_loadgen_closed_loop_against_async_origin():
    urls = sorted(PAGES)
    with AsyncPiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        report = run_load_async(
            origin.address,
            origin.port,
            urls,
            LoadConfig(clients=4, requests_per_client=15, piggy_filter="maxpiggy=8"),
            validate=loadgen_validator(),
        )
    assert report.requests == 60
    assert report.errors == 0
    assert report.corrupted == 0
    assert report.error_breakdown == {
        "connect": 0, "timeout": 0, "reset": 0, "corrupt": 0
    }
    assert report.target_rps is None
    assert report.piggyback_messages > 0
    assert origin.wire_stats.requests_served == 60


def test_async_loadgen_open_loop_reports_achieved_rate():
    urls = sorted(PAGES)
    with AsyncPiggybackHttpServer(build_engine(), site_host=HOST) as origin:
        report = run_load_async(
            origin.address,
            origin.port,
            urls,
            LoadConfig(
                clients=6,
                requests_per_client=10,
                mode="open",
                rate=400.0,
                max_inflight=8,
            ),
        )
    assert report.requests == 60
    assert report.errors == 0
    assert report.target_rps == 400.0
    text = report.format()
    assert "offered load" in text
    assert "achieved" in text


def test_async_loadgen_classifies_connect_errors():
    # A listener that is bound but never accepted from: grab a port, close
    # it, and point the loadgen at the now-dead address.
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    address, port = probe.getsockname()
    probe.close()
    report = run_load_async(
        address,
        port,
        sorted(PAGES),
        LoadConfig(clients=2, requests_per_client=3, timeout=1.0),
    )
    assert report.requests == 6
    assert report.errors == 6
    assert report.error_breakdown["connect"] == 6
    assert "connect 6" in report.format()
