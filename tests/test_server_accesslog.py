"""Tests for server-side Common Log Format access logging."""

import io
import threading

from repro.core.protocol import OK, ProxyRequest, ServerResponse
from repro.server.accesslog import AccessLogger
from repro.traces.common_log import parse_lines


def exchange(url="www.s.example/a/p.html", t=899721000.0, status=OK, size=100):
    request = ProxyRequest(url=url, timestamp=t, source="10.0.0.1")
    response = ServerResponse(url=url, status=status, timestamp=t, size=size)
    return request, response


class TestAccessLogger:
    def test_lines_parse_back_as_records(self):
        buffer = io.StringIO()
        logger = AccessLogger(buffer)
        logger.log(*exchange())
        logger.log(*exchange(status=304, size=0, t=899721060.0))
        records = list(parse_lines(buffer.getvalue().splitlines()))
        assert len(records) == 2
        assert records[0].source == "10.0.0.1"
        assert records[0].status == 200
        assert records[0].size == 100
        assert records[1].status == 304

    def test_counts_lines(self):
        logger = AccessLogger(io.StringIO())
        for _ in range(5):
            logger.log(*exchange())
        assert logger.lines_written == 5

    def test_file_destination(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLogger(path) as logger:
            logger.log(*exchange())
        content = path.read_text()
        assert "10.0.0.1" in content
        assert '"GET /a/p.html' in content

    def test_append_mode(self, tmp_path):
        path = tmp_path / "access.log"
        with AccessLogger(path) as logger:
            logger.log(*exchange())
        with AccessLogger(path) as logger:
            logger.log(*exchange())
        assert len(path.read_text().splitlines()) == 2

    def test_thread_safety(self):
        buffer = io.StringIO()
        logger = AccessLogger(buffer)

        def worker():
            for _ in range(50):
                logger.log(*exchange())

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert logger.lines_written == 200
        assert len(buffer.getvalue().splitlines()) == 200

    def test_wire_server_integration(self):
        from repro.httpmodel.messages import HttpRequest
        from repro.httpwire.netclient import fetch_once
        from repro.httpwire.netserver import PiggybackHttpServer
        from repro.server.resources import ResourceStore
        from repro.server.server import PiggybackServer
        from repro.volumes.directory import DirectoryVolumeStore

        resources = ResourceStore()
        resources.add("www.w.example/x.html", size=10, last_modified=1.0)
        engine = PiggybackServer(resources, DirectoryVolumeStore())
        buffer = io.StringIO()
        logger = AccessLogger(buffer)
        server = PiggybackHttpServer(
            engine, site_host="www.w.example",
            clock=lambda: 899721000.0, access_logger=logger,
        )
        with server:
            request = HttpRequest(method="GET", target="/x.html")
            request.headers.set("Host", "www.w.example")
            fetch_once(server.address, server.port, request)
        records = list(parse_lines(buffer.getvalue().splitlines()))
        assert len(records) == 1
        assert records[0].url == "/x.html"
