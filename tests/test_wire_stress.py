"""Concurrency stress tests for the wire origin and proxy.

Hammers the live loopback servers with >= 32 concurrent clients sending a
mixed GET / If-Modified-Since workload and asserts the three things a
thread-per-connection server must get right:

* zero corrupted or interleaved responses — every 200 body matches the
  deterministic synthetic body for its URL, byte for byte;
* volume-store invariants hold afterwards (each URL in exactly one
  volume FIFO, access counts reconcile with observed requests);
* request counts reconcile exactly across the layers — nothing lost,
  nothing double-counted, no leaked worker threads.

``REPRO_STRESS_PROFILE=long`` raises the per-client request count for
soak runs; the default profile keeps CI fast.
"""

import os
import threading

import pytest

from repro.httpwire.loadgen import LoadConfig, run_load
from repro.httpwire.netproxy import PiggybackHttpProxy, UpstreamPolicy
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.proxy.proxy import ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.workloads.sitegen import SiteConfig, generate_site

HOST = "www.stress.example"
CLIENTS = 32
REQUESTS_PER_CLIENT = 40 if os.environ.get("REPRO_STRESS_PROFILE") == "long" else 12


def build_origin_engine(page_count=40, seed=5):
    site = generate_site(
        SiteConfig(host=HOST, page_count=page_count, directory_count=5, seed=seed)
    )
    resources = ResourceStore.from_site(site)
    store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    return PiggybackServer(resources, store), resources


def body_validator(sizes):
    def validate(url, response):
        if response.status == 200:
            return response.body == synthetic_body(url, sizes[url])
        if response.status == 304:
            return response.body == b""
        return False

    return validate


def assert_volume_invariants(store, observed_requests):
    """Structural invariants of a DirectoryVolumeStore after concurrency."""
    seen_urls = {}
    total_accesses = 0
    for key, volume in store._volumes.items():
        assert len(volume) > 0, f"empty volume {key!r} left behind"
        for partition, fifo in volume._fifos.items():
            for url, entry in fifo.items():
                assert entry.url == url
                assert entry.access_count >= 1
                assert (
                    url not in seen_urls
                ), f"{url} in two volumes/partitions: {seen_urls[url]} and {(key, partition)}"
                seen_urls[url] = (key, partition)
                assert store.volume_key(url) == key
                total_accesses += entry.access_count
    # Every observed request touched exactly one entry exactly once.
    assert total_accesses == observed_requests


def run_mixed_load(address, port, urls, sizes, *, absolute, piggy, seed=0):
    config = LoadConfig(
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        seed=seed,
        ims_fraction=0.4,
        piggy_filter="maxpiggy=10" if piggy else None,
        absolute_targets=absolute,
        timeout=30.0,
    )
    return run_load(address, port, urls, config, validate=body_validator(sizes))


@pytest.fixture()
def site_urls():
    engine, resources = build_origin_engine()
    sizes = {
        url: record.size
        for url in resources.urls()
        if (record := resources.get(url)) is not None
    }
    return engine, sorted(sizes), sizes


def test_origin_under_concurrent_mixed_load(site_urls):
    engine, urls, sizes = site_urls
    before = threading.active_count()
    with PiggybackHttpServer(engine, site_host=HOST, max_workers=64) as origin:
        report = run_mixed_load(
            origin.address, origin.port, urls, sizes, absolute=False, piggy=True
        )
        assert origin.active_workers() == 0 or report.errors == 0
    total = CLIENTS * REQUESTS_PER_CLIENT

    assert report.errors == 0
    assert report.corrupted == 0, "interleaved or corrupted response bodies"
    assert report.requests == total
    assert sum(report.status_counts.values()) == total
    assert set(report.status_counts) <= {200, 304}
    # Piggyback trailers flowed under concurrency.
    assert report.piggyback_messages > 0
    assert report.piggyback_bytes > 0

    # Exact reconciliation: every wire request reached the engine once.
    assert engine.stats.requests == total
    assert origin.wire_stats.requests_served == total
    assert origin.wire_stats.bad_requests == 0
    assert origin.wire_stats.internal_errors == 0
    assert (
        engine.stats.ok_responses + engine.stats.not_modified_responses == total
    )

    observed = engine.stats.ok_responses + engine.stats.not_modified_responses
    assert_volume_invariants(engine.volume_store, observed)

    # No leaked worker threads after stop().
    assert origin.active_workers() == 0
    assert threading.active_count() <= before + 1


def test_proxy_under_concurrent_mixed_load(site_urls):
    engine, urls, sizes = site_urls

    def validate(url, response):
        if response.status == 200:
            return response.body == synthetic_body(url, sizes[url])
        return response.status == 304

    config = LoadConfig(
        clients=CLIENTS,
        requests_per_client=REQUESTS_PER_CLIENT,
        seed=3,
        ims_fraction=0.0,
        absolute_targets=True,
        timeout=30.0,
    )
    with PiggybackHttpServer(engine, site_host=HOST, max_workers=64) as origin:
        with PiggybackHttpProxy(
            origins={HOST: (origin.address, origin.port)},
            config=ProxyConfig(name="stress-proxy"),
            upstream_policy=UpstreamPolicy(timeout=10.0, pool_size=32),
            max_workers=64,
        ) as proxy:
            report = run_load(
                proxy.address, proxy.port, urls, config, validate=validate
            )
            stats = proxy.engine.stats
            upstream = proxy.upstream.stats

            total = CLIENTS * REQUESTS_PER_CLIENT
            assert report.errors == 0
            assert report.corrupted == 0
            assert report.requests == total

    # Wire counters are incremented after the response bytes go out, so
    # they are only settled once stop() has joined the workers — assert
    # all reconciliation outside the with blocks.
    # Layer-by-layer, exact: clients -> frontend -> engine -> upstream -> origin.
    assert proxy.wire_stats.requests_served == total
    assert stats.client_requests == total
    assert upstream.retries == 0
    assert upstream.failures == 0
    assert upstream.exchanges == (
        stats.server_requests + stats.prefetch_requests
    )
    assert engine.stats.requests == upstream.exchanges
    # Caching must actually happen under concurrency.
    assert stats.server_requests < total

    observed = engine.stats.ok_responses + engine.stats.not_modified_responses
    assert_volume_invariants(engine.volume_store, observed)
    assert origin.active_workers() == 0
    assert proxy.active_workers() == 0


def test_stress_is_deterministic_in_outcome():
    """Three seeded runs reconcile identically (no order-dependent loss)."""
    for run_index in range(3):
        engine, resources = build_origin_engine(page_count=20, seed=9)
        sizes = {
            url: record.size
            for url in resources.urls()
            if (record := resources.get(url)) is not None
        }
        urls = sorted(sizes)
        with PiggybackHttpServer(engine, site_host=HOST, max_workers=64) as origin:
            config = LoadConfig(
                clients=CLIENTS,
                requests_per_client=6,
                seed=17,
                ims_fraction=0.5,
                piggy_filter="maxpiggy=5",
                timeout=30.0,
            )
            report = run_load(
                origin.address, origin.port, urls, config,
                validate=body_validator(sizes),
            )
        assert report.errors == 0, f"run {run_index}"
        assert report.corrupted == 0, f"run {run_index}"
        assert engine.stats.requests == CLIENTS * 6, f"run {run_index}"
        assert origin.active_workers() == 0, f"run {run_index}"
