"""Unit tests for informed fetching."""

import pytest

from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.proxy.fetch_queue import (
    InformedFetchQueue,
    simulate_fcfs_latency,
    simulate_sjf_latency,
)


def remember(queue, *pairs):
    queue.remember(
        PiggybackMessage(1, tuple(PiggybackElement(url, 0.0, size) for url, size in pairs))
    )


class TestQueueOrdering:
    def test_smallest_expected_first(self):
        queue = InformedFetchQueue()
        remember(queue, ("h/big", 100_000), ("h/small", 100), ("h/mid", 5_000))
        for url in ("h/big", "h/small", "h/mid"):
            queue.enqueue(url, now=0.0)
        order = [f.url for f in queue.drain()]
        assert order == ["h/small", "h/mid", "h/big"]

    def test_unknown_sizes_assumed_large(self):
        queue = InformedFetchQueue(default_size=1 << 20)
        remember(queue, ("h/known", 100))
        queue.enqueue("h/unknown", now=0.0)
        queue.enqueue("h/known", now=0.0)
        assert queue.pop().url == "h/known"

    def test_duplicate_enqueues_coalesced(self):
        queue = InformedFetchQueue()
        queue.enqueue("h/a", now=0.0)
        queue.enqueue("h/a", now=1.0)
        assert len(queue) == 1

    def test_pop_empty_returns_none(self):
        assert InformedFetchQueue().pop() is None

    def test_fifo_tiebreak_for_equal_sizes(self):
        queue = InformedFetchQueue()
        remember(queue, ("h/a", 100), ("h/b", 100))
        queue.enqueue("h/a", now=0.0)
        queue.enqueue("h/b", now=1.0)
        assert [f.url for f in queue.drain()] == ["h/a", "h/b"]

    def test_metadata_capacity_bounded(self):
        queue = InformedFetchQueue(metadata_capacity=2)
        remember(queue, ("h/a", 1), ("h/b", 2), ("h/c", 3))
        assert queue.expected_size("h/c") == queue.default_size

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            InformedFetchQueue(default_size=-1)
        with pytest.raises(ValueError):
            InformedFetchQueue(metadata_capacity=0)


class TestLatencyModel:
    def test_sjf_never_worse_than_fcfs(self):
        sizes = [5000, 100, 20_000, 400, 1_000]
        assert simulate_sjf_latency(sizes, 1000.0) <= simulate_fcfs_latency(sizes, 1000.0)

    def test_sjf_strictly_better_on_inverted_order(self):
        sizes = [10_000, 100]
        assert simulate_sjf_latency(sizes, 100.0) < simulate_fcfs_latency(sizes, 100.0)

    def test_equal_for_sorted_input(self):
        sizes = [100, 200, 300]
        assert simulate_sjf_latency(sizes, 10.0) == simulate_fcfs_latency(sizes, 10.0)

    def test_empty_queue_zero_latency(self):
        assert simulate_fcfs_latency([], 100.0) == 0.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            simulate_fcfs_latency([10], 0.0)
