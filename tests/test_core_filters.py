"""Unit tests for proxy filters."""

import pytest

from repro.core.filters import CandidateElement, ProxyFilter


def candidates():
    return (
        CandidateElement("h/a.html", 10.0, 500, access_count=100,
                         probability=0.9, content_type="text"),
        CandidateElement("h/b.gif", 11.0, 5000, access_count=50,
                         probability=0.5, content_type="image"),
        CandidateElement("h/c.html", 12.0, 100, access_count=5,
                         probability=0.2, content_type="text"),
        CandidateElement("h/d.mpg", 13.0, 9_000_000, access_count=80,
                         probability=0.8, content_type="video"),
    )


class TestAdmission:
    def test_requested_url_never_included(self):
        message = ProxyFilter().apply(1, candidates(), "h/a.html")
        assert "h/a.html" not in message.urls()

    def test_max_elements_truncates_in_order(self):
        message = ProxyFilter(max_elements=2).apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html", "h/b.gif"]

    def test_max_elements_zero_suppresses_message(self):
        assert ProxyFilter(max_elements=0).apply(1, candidates(), "h/zzz") is None

    def test_min_access_count(self):
        message = ProxyFilter(min_access_count=60).apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html", "h/d.mpg"]

    def test_probability_threshold(self):
        message = ProxyFilter(probability_threshold=0.6).apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html", "h/d.mpg"]

    def test_max_resource_size(self):
        message = ProxyFilter(max_resource_size=1000).apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html", "h/c.html"]

    def test_excluded_content_types(self):
        proxy_filter = ProxyFilter(excluded_content_types=frozenset({"image", "video"}))
        message = proxy_filter.apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html", "h/c.html"]

    def test_all_criteria_compose(self):
        proxy_filter = ProxyFilter(
            max_elements=1,
            min_access_count=10,
            probability_threshold=0.4,
            max_resource_size=100_000,
            excluded_content_types=frozenset({"image"}),
        )
        message = proxy_filter.apply(1, candidates(), "h/zzz")
        assert message.urls() == ["h/a.html"]

    def test_empty_result_returns_none(self):
        assert ProxyFilter(min_access_count=10_000).apply(1, candidates(), "h/z") is None


class TestRpvAndEnable:
    def test_rpv_hit_suppresses_message(self):
        proxy_filter = ProxyFilter(recently_piggybacked=frozenset({3, 4}))
        assert proxy_filter.apply(3, candidates(), "h/z") is None
        assert proxy_filter.apply(5, candidates(), "h/z") is not None

    def test_disabled_filter_suppresses_everything(self):
        assert ProxyFilter.disabled().apply(1, candidates(), "h/z") is None

    def test_with_rpv_builder(self):
        proxy_filter = ProxyFilter().with_rpv([1, 2])
        assert proxy_filter.recently_piggybacked == frozenset({1, 2})
        assert not proxy_filter.admits_volume(2)


class TestStreamingConsumption:
    def test_lazy_candidates_consumed_only_as_needed(self):
        seen = []

        def generator():
            for candidate in candidates():
                seen.append(candidate.url)
                yield candidate

        ProxyFilter(max_elements=1).apply(1, generator(), "h/zzz")
        # Stops right after the first admitted element.
        assert seen == ["h/a.html"]


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ProxyFilter(max_elements=-1)
        with pytest.raises(ValueError):
            ProxyFilter(probability_threshold=1.5)
        with pytest.raises(ValueError):
            ProxyFilter(min_access_count=-2)
        with pytest.raises(ValueError):
            ProxyFilter(max_resource_size=-5)
