"""Admin-endpoint tests: status, drain, snapshot-now under load, reload,
and the ``repro serve`` CLI end to end."""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import durability_driver as driver
from repro.httpwire.netserver import PiggybackHttpServer
from repro.server.durability import DurableState, recover_state
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.workloads.sitegen import SiteConfig, generate_site

HOST = "www.admin.example"


@pytest.fixture()
def origin(tmp_path):
    site = generate_site(
        SiteConfig(host=HOST, page_count=10, directory_count=4, seed=2)
    )
    resources = ResourceStore.from_site(site)
    state = DurableState(tmp_path / "state", driver.make_store,
                         resources=resources)
    engine = PiggybackServer(resources, state.store)
    server = PiggybackHttpServer(engine, site_host=HOST, durable_state=state)
    server.start()
    try:
        yield server, engine, state, resources
    finally:
        server.stop()
        state.close()


def _request(server, method, path, headers=None):
    connection = http.client.HTTPConnection(
        server.address, server.port, timeout=10
    )
    try:
        connection.request(method, path, headers={"Host": HOST, **(headers or {})})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


def _site_paths(resources):
    return sorted("/" + url.split("/", 1)[1] for url in resources.urls())


def test_status_reports_durable_state(origin):
    server, _engine, state, resources = origin
    _request(server, "GET", _site_paths(resources)[0])
    status, body, _ = _request(server, "GET", "/.repro/status")
    assert status == 200
    payload = json.loads(body)
    assert payload["server"].startswith("origin:")
    assert payload["draining"] is False
    assert payload["wire_stats"]["requests_served"] >= 1
    durable = payload["durable_state"]
    assert durable["generation"] == state.generation
    assert durable["journal"]["last_seq"] >= 1
    assert durable["recovery"]["last_seq"] == 0


def test_admin_endpoints_refuse_wrong_method_and_unknown_paths(origin):
    server, _engine, _state, _resources = origin
    assert _request(server, "GET", "/.repro/snapshot")[0] == 405
    assert _request(server, "GET", "/.repro/reload")[0] == 405
    assert _request(server, "GET", "/.repro/bogus")[0] == 404


def test_admin_namespace_never_reaches_the_engine(origin):
    server, engine, _state, _resources = origin
    before = engine.stats.requests
    _request(server, "GET", "/.repro/status")
    _request(server, "GET", "/.repro/bogus")
    assert engine.stats.requests == before


def test_drain_refuses_new_connections_but_finishes_in_flight(origin):
    server, engine, _state, resources = origin
    path = _site_paths(resources)[0]
    started = threading.Event()
    release = threading.Event()
    original_handle = engine.handle

    def gated_handle(request):
        started.set()
        assert release.wait(10), "in-flight request was abandoned"
        return original_handle(request)

    engine.handle = gated_handle
    results: dict[str, object] = {}

    def in_flight():
        results["status"], results["body"], _ = _request(server, "GET", path)

    worker = threading.Thread(target=in_flight, daemon=True)
    worker.start()
    assert started.wait(10)

    # Drain while that request is still being handled.
    status, body, _ = _request(server, "POST", "/.repro/drain")
    assert status == 200 and json.loads(body)["draining"] is True

    # New connections are refused once the listener is closed.
    with pytest.raises(OSError):
        probe = http.client.HTTPConnection(server.address, server.port, timeout=2)
        probe.request("GET", path, headers={"Host": HOST})
        probe.getresponse()

    # The in-flight request still completes successfully.
    release.set()
    worker.join(10)
    assert not worker.is_alive()
    assert results["status"] == 200
    # Lame-duck workers wind down without stop() having to force them.
    deadline = time.monotonic() + 5
    while server.active_workers() and time.monotonic() < deadline:
        time.sleep(0.01)
    assert server.active_workers() == 0


def test_snapshot_now_is_serializable_with_concurrent_load(origin):
    server, _engine, state, resources = origin
    paths = _site_paths(resources)
    errors: list[str] = []
    stop = threading.Event()

    def hammer(worker_id: int):
        index = worker_id
        while not stop.is_set():
            path = paths[index % len(paths)]
            index += 1
            status, _, _ = _request(
                server, "GET", path, headers={"Piggy-filter": "maxpiggy=10"}
            )
            if status != 200:
                errors.append(f"GET {path} -> {status}")
                return

    workers = [
        threading.Thread(target=hammer, args=(i,), daemon=True) for i in range(4)
    ]
    for worker in workers:
        worker.start()
    snapshots = []
    for _ in range(5):
        status, body, _ = _request(server, "POST", "/.repro/snapshot")
        assert status == 200
        snapshots.append(json.loads(body)["last_seq"])
        time.sleep(0.02)
    stop.set()
    for worker in workers:
        worker.join(10)
    assert not errors
    assert snapshots == sorted(snapshots)  # cuts advance monotonically

    # The disk state recovers to exactly the live in-memory state: every
    # journaled record after the last cut replays on top of the snapshot.
    urls = sorted(resources.urls())
    live = driver.trailer_map(state.store, urls)
    recovered, report = recover_state(state.state_dir, driver.make_store)
    assert report.snapshot_loaded
    assert report.last_seq == state.store.journal.last_seq
    assert driver.trailer_map(recovered, urls) == live


def test_reload_swaps_state_and_invalidates_the_piggyback_cache(origin):
    server, engine, state, resources = origin
    paths = _site_paths(resources)
    for path in paths[:6]:
        _request(server, "GET", path, headers={"Piggy-filter": "maxpiggy=10"})
    assert engine.piggyback_cache is not None
    assert len(engine.piggyback_cache) > 0
    base_before = state.store.epoch_base
    urls = sorted(resources.urls())
    trailers_before = driver.trailer_map(state.store, urls)

    status, body, _ = _request(server, "POST", "/.repro/reload")
    assert status == 200
    report = json.loads(body)
    assert report["last_seq"] == state.store.journal.last_seq

    assert len(engine.piggyback_cache) == 0  # invalidate hook ran
    assert state.store.epoch_base > base_before  # stale keys can't collide
    # Same state, served at higher epochs: trailers are unchanged and
    # requests keep working (repopulating the cache).
    assert driver.trailer_map(state.store, urls) == trailers_before
    status, _, _ = _request(
        server, "GET", paths[0], headers={"Piggy-filter": "maxpiggy=10"}
    )
    assert status == 200


def test_serve_cli_end_to_end(tmp_path):
    """`repro serve --state-dir` boots, serves, drains, and exits cleanly."""
    state_dir = tmp_path / "state"
    access_log = tmp_path / "access.log"
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-u", "-m", "repro.cli", "serve",
         "--state-dir", str(state_dir), "--pages", "8",
         "--access-log", str(access_log), "--flush-interval", "0.1",
         "--max-seconds", "20"],
        env=env, stdout=subprocess.PIPE, text=True,
    )
    try:
        port = None
        assert process.stdout is not None
        for line in process.stdout:
            match = re.search(r"serving .* on 127\.0\.0\.1:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "serve never announced its port"

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("GET", "/.repro/status")
        payload = json.loads(connection.getresponse().read())
        assert payload["durable_state"]["generation"] == 1
        connection.close()

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("GET", "/d0/img0.gif",
                           headers={"Host": "www.serve.example"})
        assert connection.getresponse().status in (200, 404)
        connection.close()

        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
        connection.request("POST", "/.repro/drain")
        assert connection.getresponse().status == 200
        connection.close()
        assert process.wait(timeout=20) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()
    assert (state_dir / "meta.json").exists()
    assert access_log.exists() and access_log.read_text().strip()
