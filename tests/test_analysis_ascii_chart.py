"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.analysis.ascii_chart import bar_chart, scatter_plot


class TestBarChart:
    def test_proportional_bars(self):
        lines = bar_chart([("a", 10.0), ("b", 5.0)], width=10)
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_labels_aligned(self):
        lines = bar_chart([("short", 1.0), ("a-longer-label", 2.0)])
        assert lines[0].index("|") == lines[1].index("|")

    def test_values_appended(self):
        (line,) = bar_chart([("x", 42.0)])
        assert line.rstrip().endswith("42")

    def test_explicit_max_scales_bars(self):
        (line,) = bar_chart([("x", 5.0)], width=10, max_value=10.0)
        assert line.count("#") == 5

    def test_values_clamped_to_max(self):
        (line,) = bar_chart([("x", 50.0)], width=10, max_value=10.0)
        assert line.count("#") == 10

    def test_zero_and_negative_safe(self):
        lines = bar_chart([("zero", 0.0), ("neg", -3.0)])
        assert all("#" not in line for line in lines)

    def test_empty_rows(self):
        assert bar_chart([]) == []

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=0)


class TestScatterPlot:
    def test_markers_present_per_series(self):
        lines = scatter_plot(
            {"one": [(0.0, 0.0), (1.0, 1.0)], "two": [(0.5, 0.5)]},
            width=20, height=6,
        )
        text = "\n".join(lines)
        assert "o" in text and "x" in text
        assert "o=one" in text and "x=two" in text

    def test_axis_labels_present(self):
        lines = scatter_plot({"s": [(1.0, 2.0), (3.0, 4.0)]},
                             x_label="size", y_label="recall")
        text = "\n".join(lines)
        assert "recall" in text
        assert "(size)" in text

    def test_extreme_points_land_on_edges(self):
        lines = scatter_plot({"s": [(0.0, 0.0), (10.0, 10.0)]},
                             width=20, height=6)
        plot_rows = [line for line in lines if "|" in line]
        assert "o" in plot_rows[0]    # max y on the top row
        assert "o" in plot_rows[-1]   # min y on the bottom row

    def test_single_point_does_not_crash(self):
        lines = scatter_plot({"s": [(2.0, 3.0)]})
        assert any("o" in line for line in lines)

    def test_empty_series(self):
        lines = scatter_plot({"s": []}, x_label="a", y_label="b")
        assert lines == ["(no data for b vs a)"]

    def test_too_small_plot_rejected(self):
        with pytest.raises(ValueError):
            scatter_plot({"s": [(0, 0)]}, width=5, height=5)

    def test_deterministic(self):
        data = {"s": [(0.0, 1.0), (2.0, 3.0), (4.0, 2.0)]}
        assert scatter_plot(data) == scatter_plot(data)
