"""Tests for rate-of-change measurement and delta savings estimation."""

import pytest

from repro.analysis.rate_of_change import estimate_delta_savings, rate_of_change
from repro.traces.records import Trace
from repro.workloads.synth import server_log_preset

from conftest import make_record


def build_trace():
    return Trace(
        [
            make_record(0.0, "c1", "h/a.html", last_modified=10.0, size=1000),
            make_record(100.0, "c2", "h/a.html", last_modified=10.0, size=1000),  # same
            make_record(200.0, "c1", "h/a.html", last_modified=150.0, size=1000),  # changed
            make_record(0.0, "c1", "h/b.gif", last_modified=5.0, size=400),
            make_record(300.0, "c1", "h/b.gif", last_modified=5.0, size=400),  # same
            make_record(10.0, "c1", "h/nolm.html"),  # no Last-Modified: skipped
        ]
    )


class TestRateOfChange:
    def test_counts(self):
        stats = rate_of_change(build_trace())
        assert stats.repeat_accesses == 3
        assert stats.changed_accesses == 1
        assert stats.changed_fraction == pytest.approx(1 / 3)

    def test_content_type_breakdown(self):
        stats = rate_of_change(build_trace())
        assert stats.changed_fraction_for("text") == pytest.approx(1 / 2)
        assert stats.changed_fraction_for("image") == 0.0
        assert stats.changed_fraction_for("video") == 0.0

    def test_empty_trace(self):
        stats = rate_of_change(Trace([]))
        assert stats.changed_fraction == 0.0

    def test_preset_calibration_near_paper_value(self):
        # Appendix A: ~15% of repeat responses reflected a change (a
        # conservative estimate).  The default modification process should
        # land in the same decade.
        trace, _ = server_log_preset("aiusa", scale=0.3)
        stats = rate_of_change(trace)
        assert stats.repeat_accesses > 100
        assert 0.005 < stats.changed_fraction < 0.4


class TestDeltaSavings:
    def test_savings_on_changed_transfers(self):
        savings = estimate_delta_savings(build_trace())
        assert savings.changed_transfers == 1
        assert savings.full_bytes == 1000
        assert savings.delta_bytes < savings.full_bytes
        # Only a version stamp changed: the delta should be tiny.
        assert savings.savings_fraction > 0.8

    def test_no_changes_no_transfers(self):
        trace = Trace(
            [
                make_record(0.0, "c1", "h/x.html", last_modified=1.0, size=500),
                make_record(9.0, "c1", "h/x.html", last_modified=1.0, size=500),
            ]
        )
        savings = estimate_delta_savings(trace)
        assert savings.changed_transfers == 0
        assert savings.savings_fraction == 0.0

    def test_cap_limits_work(self):
        records = []
        for i in range(40):
            records.append(make_record(i * 10.0, "c1", "h/hot.html",
                                       last_modified=float(i), size=800))
        savings = estimate_delta_savings(Trace(records), max_transfers=5)
        assert savings.changed_transfers == 5

    def test_preset_savings_substantial(self):
        trace, _ = server_log_preset("aiusa", scale=0.2)
        savings = estimate_delta_savings(trace, max_transfers=100)
        if savings.changed_transfers:
            assert savings.savings_fraction > 0.5
