"""Tests for the repro-web command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "--preset", "sun", "--scale", "0.1", "--out", "x.log"]
        )
        assert args.preset == "sun"
        assert args.scale == 0.1


class TestCommands:
    def test_generate_writes_log(self, tmp_path, capsys):
        out = tmp_path / "synthetic.log"
        code = main(["generate", "--preset", "marimba", "--scale", "0.05",
                     "--out", str(out)])
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_generate_unknown_preset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--preset", "nope", "--out", str(tmp_path / "x")])

    def test_stats_on_preset(self, capsys):
        code = main(["stats", "--preset", "aiusa", "--scale", "0.05",
                     "--min-accesses", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "requests" in output
        assert "unique resources" in output

    def test_stats_on_generated_file(self, tmp_path, capsys):
        out = tmp_path / "log"
        main(["generate", "--preset", "aiusa", "--scale", "0.05", "--out", str(out)])
        code = main(["stats", "--log", str(out), "--kind", "server",
                     "--min-accesses", "1"])
        assert code == 0

    def test_fig1_runs(self, capsys):
        code = main(["fig1", "--preset", "att_client", "--scale", "0.02",
                     "--min-accesses", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "level" in output

    def test_fig6_runs(self, capsys):
        code = main(["fig6", "--preset", "aiusa", "--scale", "0.05",
                     "--min-accesses", "2"])
        assert code == 0
        assert "variant" in capsys.readouterr().out

    def test_table1_runs(self, capsys):
        code = main(["table1", "--presets", "aiusa", "--scale", "0.05",
                     "--min-accesses", "2"])
        assert code == 0
        assert "aiusa" in capsys.readouterr().out

    def test_fig4_runs(self, capsys):
        code = main(["fig4", "--preset", "aiusa", "--scale", "0.03",
                     "--min-accesses", "2"])
        assert code == 0
        assert "min-gap" in capsys.readouterr().out

    def test_build_volumes_writes_artifact(self, tmp_path, capsys):
        from repro.volumes.persistence import load_volumes

        out = tmp_path / "volumes.json"
        code = main(["build-volumes", "--preset", "aiusa", "--scale", "0.05",
                     "--min-accesses", "2", "--out", str(out),
                     "--threshold", "0.3"])
        assert code == 0
        artifact = load_volumes(out)
        assert artifact.probability_threshold == 0.3
        assert artifact.source_log == "aiusa"
        assert len(artifact.volumes) > 0

    def test_simulate_runs(self, capsys):
        code = main(["simulate", "--preset", "aiusa", "--scale", "0.05",
                     "--min-accesses", "2", "--prefetch"])
        assert code == 0
        output = capsys.readouterr().out
        assert "fresh hit rate" in output
        assert "prefetches" in output

    def test_simulate_rejects_client_preset(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--preset", "att_client"])

    def test_roc_runs(self, capsys):
        code = main(["roc", "--preset", "aiusa", "--scale", "0.1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "changed fraction" in output

    def test_fig1_chart_flag(self, capsys):
        code = main(["fig1", "--preset", "att_client", "--scale", "0.02",
                     "--min-accesses", "1", "--chart"])
        assert code == 0
        assert "#" in capsys.readouterr().out


class TestTraceCommands:
    def test_gen_stats_verify_pipeline(self, tmp_path, capsys):
        path = str(tmp_path / "net.rpchunk")
        code = main(["trace", "gen", "--out", path, "--records", "2000",
                     "--origins", "4", "--clients", "5000", "--rate", "0.5",
                     "--seed", "8"])
        assert code == 0
        assert "wrote 2000 records" in capsys.readouterr().out

        code = main(["trace", "verify", path])
        assert code == 0
        assert "ok" in capsys.readouterr().out

        code = main(["trace", "stats", path])
        assert code == 0
        output = capsys.readouterr().out
        assert "requests             2000" in output
        assert "median response bytes" in output

        code = main(["trace", "stats", path, "--kind", "client"])
        assert code == 0
        assert "servers" in capsys.readouterr().out

    def test_stats_rejects_damaged_file(self, tmp_path, capsys):
        path = tmp_path / "bad.rpchunk"
        path.write_bytes(b"not a chunk file at all")
        code = main(["trace", "stats", str(path)])
        assert code == 2
        assert "trace stats:" in capsys.readouterr().err

    def test_verify_reports_damage(self, tmp_path, capsys):
        path = str(tmp_path / "net.rpchunk")
        main(["trace", "gen", "--out", path, "--records", "500",
              "--origins", "2", "--clients", "1000", "--rate", "0.5",
              "--seed", "3"])
        capsys.readouterr()
        data = bytearray(open(path, "rb").read())
        data[40] ^= 0x01
        open(path, "wb").write(bytes(data))
        code = main(["trace", "verify", path])
        assert code == 1
        assert "offset" in capsys.readouterr().err
