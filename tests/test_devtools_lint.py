"""Tests for the ``repro lint`` rule engine and every built-in rule.

Each rule gets a positive fixture (violating snippet -> finding), a
negative fixture (compliant snippet -> clean), and a suppression check.
The engine itself is covered via policy scoping, the baseline round trip,
and the CLI's text/JSON surfaces; finally the real repository is linted
and must be clean — the same gate CI enforces.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.devtools.lint import (
    Baseline,
    Policy,
    load_builtin_rules,
    registered_rules,
    run_lint,
)
from repro.devtools.lint.api import CodecParityRule, ReplayMetricsParityRule

REPO_ROOT = Path(__file__).resolve().parent.parent

load_builtin_rules()


def lint_snippet(tmp_path: Path, source: str, filename: str = "snippet.py"):
    """Lint one snippet with every family applied to every path."""
    path = tmp_path / filename
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    report = run_lint(tmp_path, [path], policy=Policy.everywhere())
    return report


def rule_ids(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# -- determinism rules ---------------------------------------------------


def test_wall_clock_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()
        """,
    )
    assert rule_ids(report) == ["det-wall-clock"]


def test_wall_clock_through_alias(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from time import time as now

        def stamp():
            return now()
        """,
    )
    assert rule_ids(report) == ["det-wall-clock"]


def test_datetime_now_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import datetime

        def stamp():
            return datetime.datetime.now()
        """,
    )
    assert rule_ids(report) == ["det-wall-clock"]


def test_trace_timestamp_use_is_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def render(timestamp):
            return time.strftime("%d/%b/%Y", time.gmtime(timestamp))
        """,
    )
    assert report.clean


def test_entropy_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
        """,
    )
    assert rule_ids(report) == ["det-entropy", "det-entropy"]


def test_global_random_flagged_seeded_rng_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import random

        def good(seed):
            rng = random.Random(seed)
            return rng.random()

        def bad():
            return random.random()
        """,
    )
    assert rule_ids(report) == ["det-global-random"]


def test_unseeded_rng_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import random

        def make():
            return random.Random()
        """,
    )
    assert rule_ids(report) == ["det-unseeded-rng"]


def test_id_keyed_container_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def group(items):
            table = {}
            for item in items:
                table[id(item)] = item
            seen = set()
            seen.add(id(items))
            return table, seen
        """,
    )
    assert rule_ids(report) == ["det-id-key", "det-id-key"]


def test_identity_compare_with_id_is_clean(tmp_path):
    # id() for a direct equality comparison is not a container key.
    report = lint_snippet(
        tmp_path,
        """
        def same(a, b):
            return id(a) == id(b)
        """,
    )
    assert report.clean


def test_set_iteration_flagged_sorted_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def bad(urls):
            return [u for u in set(urls)]

        def good(urls):
            return [u for u in sorted(set(urls))]
        """,
    )
    assert rule_ids(report) == ["det-set-iteration"]


# -- lock discipline rules ----------------------------------------------


def test_blocking_call_under_lock_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading
        import time

        class Engine:
            def __init__(self, upstream):
                self._lock = threading.Lock()
                self.upstream = upstream

            def fetch(self, request, sock):
                with self._lock:
                    time.sleep(0.1)
                    sock.sendall(b"x")
                    return self.upstream(request)
        """,
    )
    assert rule_ids(report) == ["lock-blocking-call"] * 3


def test_io_after_lock_release_is_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading

        class Engine:
            def __init__(self, upstream):
                self._lock = threading.Lock()
                self.upstream = upstream

            def fetch(self, request):
                with self._lock:
                    request = self.prepare(request)
                return self.upstream(request)

            def prepare(self, request):
                return request
        """,
    )
    assert report.clean


def test_non_lock_with_is_ignored(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def fetch(connection_factory, request):
            with connection_factory() as connection:
                return connection.request(request)
        """,
    )
    assert report.clean


def test_bare_acquire_flagged_try_finally_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading

        lock = threading.Lock()
        other_lock = threading.Lock()

        def bad():
            lock.acquire()
            do_work()

        def good():
            other_lock.acquire()
            try:
                do_work()
            finally:
                other_lock.release()

        def do_work():
            pass
        """,
    )
    assert rule_ids(report) == ["lock-bare-acquire"]


def test_lock_order_cycle_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def forward():
            with a_lock:
                with b_lock:
                    pass

        def backward():
            with b_lock:
                with a_lock:
                    pass
        """,
    )
    assert "lock-order" in rule_ids(report)


def test_consistent_lock_order_is_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def one():
            with a_lock:
                with b_lock:
                    pass

        def two():
            with a_lock:
                with b_lock:
                    pass
        """,
    )
    assert report.clean


def test_lock_order_cycle_across_files(tmp_path):
    (tmp_path / "first.py").write_text(
        textwrap.dedent(
            """
            import threading
            a_lock = threading.Lock()
            b_lock = threading.Lock()
            def forward():
                with a_lock:
                    with b_lock:
                        pass
            """
        ),
        encoding="utf-8",
    )
    (tmp_path / "second.py").write_text(
        textwrap.dedent(
            """
            import threading
            a_lock = threading.Lock()
            b_lock = threading.Lock()
            def backward():
                with b_lock:
                    with a_lock:
                        pass
            """
        ),
        encoding="utf-8",
    )
    report = run_lint(tmp_path, [tmp_path], policy=Policy.everywhere())
    assert "lock-order" in rule_ids(report)


# -- resource hygiene rules ----------------------------------------------


def test_unclosed_socket_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import socket

        def leak():
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.connect(("127.0.0.1", 80))
            data = sock.recv(10)
            return data
        """,
    )
    assert "res-socket-lifetime" in rule_ids(report)


def test_closed_socket_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import socket

        def fine():
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                sock.connect(("127.0.0.1", 80))
                return sock.recv(10)
            finally:
                sock.close()
        """,
    )
    assert report.clean


def test_unclosed_file_flagged_with_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def bad(path):
            handle = open(path)
            data = handle.read()
            return data

        def inline(path):
            return open(path).read()

        def good(path):
            with open(path) as handle:
                return handle.read()
        """,
    )
    assert rule_ids(report) == ["res-file-lifetime", "res-file-lifetime"]


def test_unjoined_thread_flagged_daemon_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import threading

        def bad(task):
            worker = threading.Thread(target=task)
            worker.start()

        def daemonic(task):
            worker = threading.Thread(target=task, daemon=True)
            worker.start()

        def joined(task):
            worker = threading.Thread(target=task)
            worker.start()
            worker.join(timeout=5.0)
        """,
    )
    assert rule_ids(report) == ["res-thread-lifecycle"]


def test_join_without_timeout_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def drain(threads, parts):
            for thread in threads:
                thread.join()
            return ", ".join(parts)
        """,
    )
    assert rule_ids(report) == ["res-join-timeout"]


# -- API parity rules ----------------------------------------------------


def _write_parity_fixture(tmp_path: Path, fast_writes_all: bool) -> None:
    (tmp_path / "metrics.py").write_text(
        textwrap.dedent(
            """
            class ReplayMetrics:
                requests: int = 0
                piggyback_bytes: int = 0
            """
        ),
        encoding="utf-8",
    )
    (tmp_path / "reference.py").write_text(
        textwrap.dedent(
            """
            def replay(metrics):
                metrics.requests += 1
                metrics.piggyback_bytes += 10
            """
        ),
        encoding="utf-8",
    )
    fast_body = "def replay(metrics):\n    metrics.requests += 1\n"
    if fast_writes_all:
        fast_body += "    metrics.piggyback_bytes += 10\n"
    (tmp_path / "fast.py").write_text(fast_body, encoding="utf-8")


@pytest.mark.parametrize("fast_writes_all", [True, False])
def test_replay_metrics_parity(tmp_path, fast_writes_all):
    _write_parity_fixture(tmp_path, fast_writes_all)
    rule = ReplayMetricsParityRule()
    rule.metrics_path = "metrics.py"
    rule.engine_paths = ("reference.py", "fast.py")
    report = run_lint(
        tmp_path, [tmp_path], policy=Policy.everywhere(), rules=[rule]
    )
    if fast_writes_all:
        assert report.clean
    else:
        assert rule_ids(report) == ["api-replay-metrics-parity"]
        assert "piggyback_bytes" in report.findings[0].message


def test_codec_parity_detects_missing_key(tmp_path):
    (tmp_path / "codec.py").write_text(
        textwrap.dedent(
            """
            def format_thing(thing):
                return f"alpha={thing.alpha}; beta={thing.beta}"

            def parse_thing(value):
                for part in value.split(";"):
                    key, _, token = part.partition("=")
                    key = key.strip()
                    if key == "alpha":
                        pass
                return None
            """
        ),
        encoding="utf-8",
    )
    rule = CodecParityRule()
    rule.codec_path = "codec.py"
    report = run_lint(tmp_path, [tmp_path], policy=Policy.everywhere(), rules=[rule])
    assert rule_ids(report) == ["api-codec-parity"]
    assert "beta" in report.findings[0].message


# -- telemetry registration rules -----------------------------------------


def test_computed_metric_name_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from repro.telemetry import REGISTRY

        PREFIX = "proxy"
        COUNTER = REGISTRY.counter(PREFIX + "_hits_total", "cache hits")
        """,
    )
    assert rule_ids(report) == ["tel-literal-name"]


def test_fstring_metric_name_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from repro.telemetry import REGISTRY

        layer = "proxy"
        HIST = REGISTRY.histogram(f"{layer}_seconds", "latency")
        """,
    )
    assert rule_ids(report) == ["tel-literal-name"]


def test_literal_snake_case_name_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from repro.telemetry import REGISTRY

        COUNTER = REGISTRY.counter("proxy_hits_total", "cache hits")
        GAUGE = REGISTRY.gauge("active_workers")
        HIST = REGISTRY.histogram("request_seconds", "latency")
        """,
    )
    assert report.clean


def test_non_registry_receiver_ignored(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        def use(analyzer, name):
            # Not a metrics registry: same method name, different receiver.
            return analyzer.counter(name)
        """,
    )
    assert report.clean


def test_bad_name_format_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from repro.telemetry import REGISTRY

        COUNTER = REGISTRY.counter("ProxyHits", "camel case")
        OTHER = REGISTRY.gauge("bad-dashes")
        """,
    )
    assert rule_ids(report) == ["tel-name-format", "tel-name-format"]


def test_duplicate_registration_across_files_flagged(tmp_path):
    (tmp_path / "one.py").write_text(
        'from repro.telemetry import REGISTRY\n'
        'A = REGISTRY.counter("shared_total", "first owner")\n',
        encoding="utf-8",
    )
    (tmp_path / "two.py").write_text(
        'from repro.telemetry import REGISTRY\n'
        'B = REGISTRY.counter("shared_total", "second owner")\n',
        encoding="utf-8",
    )
    report = run_lint(tmp_path, [tmp_path], policy=Policy.everywhere())
    assert rule_ids(report) == ["tel-duplicate-registration"]
    assert "one.py" in report.findings[0].message
    assert report.findings[0].path == "two.py"


def test_single_call_site_is_not_duplicate(tmp_path):
    # One lexical call site executed many times (e.g. per-instance
    # registries) is fine; the rule counts distinct source locations.
    report = lint_snippet(
        tmp_path,
        """
        from repro.telemetry import MetricsRegistry

        class Accumulator:
            def __init__(self):
                self.registry = MetricsRegistry(enabled=True)
                self.requests = self.registry.counter("acc_requests_total")
        """,
    )
    assert report.clean


def test_self_registry_receiver_matches(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        class Holder:
            def build(self, suffix):
                return self._registry.counter("base_" + suffix)
        """,
    )
    assert rule_ids(report) == ["tel-literal-name"]


# -- aio event-loop hygiene rules -----------------------------------------


def test_blocking_sleep_in_coroutine_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        async def handler():
            time.sleep(0.1)
        """,
    )
    assert rule_ids(report) == ["aio-blocking-call"]


def test_blocking_sleep_through_alias_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        from time import sleep as pause

        async def handler():
            pause(0.1)
        """,
    )
    assert rule_ids(report) == ["aio-blocking-call"]


def test_sync_socket_call_in_coroutine_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        async def pump(sock, payload):
            sock.sendall(payload)
        """,
    )
    assert rule_ids(report) == ["aio-blocking-call"]


def test_awaited_async_connect_is_clean(tmp_path):
    # Async methods sharing a blocking-socket name are fine when awaited.
    report = lint_snippet(
        tmp_path,
        """
        async def dial(upstream):
            await upstream.connect()
        """,
    )
    assert report.clean


def test_asyncio_sleep_is_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import asyncio

        async def pace():
            await asyncio.sleep(0.1)
        """,
    )
    assert report.clean


def test_blocking_call_outside_coroutine_is_out_of_scope(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def worker():
            time.sleep(0.1)
        """,
    )
    assert report.clean


def test_unawaited_acquire_in_coroutine_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        async def grab(self):
            self._conn_sem.acquire()
        """,
    )
    assert rule_ids(report) == ["aio-unawaited-acquire"]


def test_awaited_acquire_is_clean(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        async def grab(self):
            await self._conn_sem.acquire()
        """,
    )
    assert report.clean


def test_aio_suppression(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        async def handler():
            time.sleep(0.1)  # repro: allow[aio-blocking-call]
        """,
    )
    assert report.clean
    assert report.suppressed == 1


def test_aio_family_scoped_to_async_stack():
    from repro.devtools.lint.policy import DEFAULT_POLICY

    assert DEFAULT_POLICY.applies("aio", "src/repro/httpwire/aio/server.py")
    assert DEFAULT_POLICY.applies("aio", "src/repro/httpmodel/aio.py")
    assert not DEFAULT_POLICY.applies("aio", "src/repro/httpwire/netserver.py")


# -- suppressions, policy, baseline --------------------------------------


def test_same_line_suppression(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[det-wall-clock]
        """,
    )
    assert report.clean
    assert report.suppressed == 1


def test_standalone_comment_suppresses_next_line(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def stamp():
            # benchmarks time themselves deliberately
            # repro: allow[det-wall-clock]
            return time.time()
        """,
    )
    assert report.clean
    assert report.suppressed == 1


def test_suppression_is_rule_specific(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[det-entropy]
        """,
    )
    assert rule_ids(report) == ["det-wall-clock"]


def test_wildcard_suppression(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time

        def stamp():
            return time.time()  # repro: allow[*]
        """,
    )
    assert report.clean


def test_policy_scopes_families_by_path(tmp_path):
    source = textwrap.dedent(
        """
        import time

        def stamp():
            return time.time()
        """
    )
    scoped = tmp_path / "scoped"
    unscoped = tmp_path / "unscoped"
    scoped.mkdir()
    unscoped.mkdir()
    (scoped / "mod.py").write_text(source, encoding="utf-8")
    (unscoped / "mod.py").write_text(source, encoding="utf-8")
    policy = Policy(scopes=(("determinism", ("scoped",)),))
    report = run_lint(tmp_path, [tmp_path], policy=policy)
    assert [finding.path for finding in report.findings] == ["scoped/mod.py"]


def test_baseline_roundtrip(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import time\n\nvalue = time.time()\n", encoding="utf-8")
    first = run_lint(tmp_path, [tmp_path], policy=Policy.everywhere())
    assert not first.clean
    baseline = Baseline.from_findings(first.findings)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)
    reloaded = Baseline.load(baseline_path)
    second = run_lint(
        tmp_path, [tmp_path], policy=Policy.everywhere(), baseline=reloaded
    )
    assert second.clean
    assert second.baselined == len(first.findings)


def test_parse_error_reported(tmp_path):
    (tmp_path / "broken.py").write_text("def oops(:\n", encoding="utf-8")
    report = run_lint(tmp_path, [tmp_path], policy=Policy.everywhere())
    assert not report.clean
    assert report.parse_errors and report.parse_errors[0].rule == "parse-error"


# -- CLI surface ---------------------------------------------------------


def test_cli_json_schema(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        "import time\n\nvalue = time.time()  # not scoped by default policy\n",
        encoding="utf-8",
    )
    code = cli_main(["lint", "--root", str(tmp_path), "--format", "json", "mod.py"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0  # default policy scopes determinism to src/repro only
    assert payload["version"] == 1
    assert payload["clean"] is True
    assert payload["files_checked"] == 1
    assert isinstance(payload["findings"], list)
    assert {"id", "family", "description"} <= set(payload["rules"][0])


def test_cli_exit_code_and_finding_shape(tmp_path, capsys):
    scoped = tmp_path / "src" / "repro" / "analysis"
    scoped.mkdir(parents=True)
    (scoped / "mod.py").write_text("import time\n\nvalue = time.time()\n",
                                   encoding="utf-8")
    code = cli_main(["lint", "--root", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    (finding,) = payload["findings"]
    assert {"rule", "family", "path", "line", "col", "message", "fingerprint"} <= set(
        finding
    )
    assert finding["rule"] == "det-wall-clock"
    assert finding["path"] == "src/repro/analysis/mod.py"


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    scoped = tmp_path / "src" / "repro" / "analysis"
    scoped.mkdir(parents=True)
    (scoped / "mod.py").write_text("import time\n\nvalue = time.time()\n",
                                   encoding="utf-8")
    assert cli_main(["lint", "--root", str(tmp_path), "--write-baseline"]) == 0
    capsys.readouterr()
    assert cli_main(["lint", "--root", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


# -- the real repository must be clean ------------------------------------


def test_repository_is_lint_clean():
    baseline_path = REPO_ROOT / "lint-baseline.json"
    baseline = Baseline.load(baseline_path) if baseline_path.is_file() else None
    report = run_lint(REPO_ROOT, baseline=baseline)
    assert report.files_checked > 50
    assert report.clean, report.render_text()


def test_registry_has_all_rule_families():
    families = {rule.family for rule in registered_rules()}
    assert {
        "determinism",
        "locks",
        "resources",
        "api",
        "telemetry",
        "aio",
        "flow",
    } <= families


# -- aio alias resolution (name bindings) --------------------------------


def test_blocking_sleep_through_bound_name_alias_flagged(tmp_path):
    # `_sleep = time.sleep` is a module-level name binding, not an
    # import — it must still resolve to the blocking call.
    report = lint_snippet(
        tmp_path,
        """
        import time

        _sleep = time.sleep

        async def handler():
            _sleep(0.1)
        """,
    )
    assert rule_ids(report) == ["aio-blocking-call"]


def test_blocking_sleep_through_alias_chain_flagged(tmp_path):
    report = lint_snippet(
        tmp_path,
        """
        import time as t

        pause = t.sleep
        nap = pause

        async def handler():
            nap(0.1)
        """,
    )
    assert rule_ids(report) == ["aio-blocking-call"]


def test_relative_import_resolves_through_package(tmp_path):
    # name_bindings resolves `from .sync import fsync_all` against the
    # importing module's package, so the flow layer sees project-local
    # names; the aio rule itself keys on stdlib names and stays clean.
    from repro.devtools.lint.astutil import name_bindings
    import ast

    tree = ast.parse("from .sync import fsync_all\nfrom ..core import util\n")
    bindings = name_bindings(tree, package="repro.httpwire.aio")
    assert bindings["fsync_all"] == "repro.httpwire.aio.sync.fsync_all"
    assert bindings["util"] == "repro.httpwire.core.util"


# -- baseline relocation --------------------------------------------------


def test_baseline_digest_is_path_independent(tmp_path):
    (tmp_path / "a").mkdir()
    (tmp_path / "b").mkdir()
    report_a = lint_snippet(tmp_path / "a", "import time\n\ndef f():\n    return time.time()\n")
    report_b = lint_snippet(tmp_path / "b", "import time\n\ndef f():\n    return time.time()\n")
    digest_a = report_a.findings[0].fingerprint().rpartition(":")[2]
    digest_b = report_b.findings[0].fingerprint().rpartition(":")[2]
    assert digest_a == digest_b


def test_baseline_migrates_absolute_path_entries(tmp_path):
    report = lint_snippet(tmp_path, "import time\n\ndef f():\n    return time.time()\n")
    finding = report.findings[0]
    relative_fp = finding.fingerprint()
    path_part, _, tail = relative_fp.partition(":")
    absolute_fp = f"{tmp_path / path_part}:{tail}"

    baseline_path = tmp_path / "lint-baseline.json"
    baseline_path.write_text(json.dumps({"fingerprints": [absolute_fp]}), encoding="utf-8")

    baseline = Baseline.load(baseline_path, root=tmp_path)
    assert baseline.migrated == 1
    assert baseline.matches(finding)

    # Persisting the migrated baseline writes relocatable entries.
    baseline.save(baseline_path)
    payload = json.loads(baseline_path.read_text(encoding="utf-8"))
    assert payload["version"] == 2
    assert payload["fingerprints"] == [relative_fp]


def test_baseline_survives_checkout_relocation(tmp_path):
    # Simulate the repo moving: lint in one root, match in another.
    snippet = "import time\n\ndef f():\n    return time.time()\n"
    (tmp_path / "old-checkout").mkdir()
    (tmp_path / "new-checkout").mkdir()
    old_report = lint_snippet(tmp_path / "old-checkout", snippet)
    baseline = Baseline.from_findings(old_report.findings)
    baseline_path = tmp_path / "old-checkout" / "lint-baseline.json"
    baseline.save(baseline_path)

    new_report = lint_snippet(tmp_path / "new-checkout", snippet)
    reloaded = Baseline.load(baseline_path)
    assert reloaded.matches(new_report.findings[0])


# -- policy scoping edge cases -------------------------------------------


def test_policy_overlapping_prefixes_apply_once(tmp_path):
    policy = Policy(
        scopes=(("determinism", ("src/repro", "src/repro/analysis")),)
    )
    # Both prefixes match; the family applies (no double-reporting).
    assert policy.applies("determinism", "src/repro/analysis/metrics.py")
    path = tmp_path / "src" / "repro" / "analysis" / "m.py"
    path.parent.mkdir(parents=True)
    path.write_text("import time\n\ndef f():\n    return time.time()\n", encoding="utf-8")
    report = run_lint(tmp_path, [path], policy=policy)
    assert rule_ids(report) == ["det-wall-clock"]


def test_policy_prefix_is_a_path_boundary():
    policy = Policy(scopes=(("determinism", ("src/repro/analysis",)),))
    assert policy.applies("determinism", "src/repro/analysis/metrics.py")
    assert not policy.applies("determinism", "src/repro/analysis2/metrics.py")
    assert policy.applies("determinism", "src/repro/analysis")
    assert not policy.applies("determinism", "src/repro/analysis.py")


def test_rule_family_glob_suppression(tmp_path):
    # allow[det-*] waives every determinism rule on the line, but not
    # other families.
    report = lint_snippet(
        tmp_path,
        """
        import time

        def f():
            return time.time()  # repro: allow[det-*]
        """,
    )
    assert report.findings == []
    assert report.suppressed == 1

    report = lint_snippet(
        tmp_path,
        """
        import time

        def f():
            return time.time()  # repro: allow[lock-*]
        """,
    )
    assert rule_ids(report) == ["det-wall-clock"]


def test_suppression_on_decorated_statement(tmp_path):
    # A standalone waiver above a decorator stack covers a finding
    # anchored on any decorator line of the stack.
    report = lint_snippet(
        tmp_path,
        """
        import time

        def tag(value):
            def deco(fn):
                return fn

            return deco

        # repro: allow[det-wall-clock]
        @tag(time.time())
        def stamp():
            return 0
        """,
    )
    assert report.findings == []
    assert report.suppressed >= 1


def test_standalone_waiver_reaches_def_through_decorators():
    # Unit-level check: a waiver above the decorator stack extends
    # through every decorator line down to the def line itself.
    import ast as ast_mod

    from repro.devtools.lint.engine import SourceModule

    source = textwrap.dedent(
        """
        # repro: allow[api-example]
        @deco_one
        @deco_two
        def anchored():
            pass
        """
    ).lstrip()
    module = SourceModule(
        Path("/r"), Path("/r/m.py"), source, ast_mod.parse(source)
    )
    for line in (2, 3, 4):  # both decorators and the def line
        assert module.is_suppressed(line, "api-example"), line
    assert not module.is_suppressed(5, "api-example")


def test_suppression_on_multiline_statement(tmp_path):
    # The waiver above a multi-line statement covers its anchor line
    # even though the statement continues past it.
    report = lint_snippet(
        tmp_path,
        """
        import time

        def f():
            # repro: allow[det-wall-clock]
            value = time.time() + sum(
                [1, 2]
            )
            return value
        """,
    )
    assert report.findings == []
    assert report.suppressed == 1
