"""Tests for the tracer: header codec, parent resolution, span records."""

from __future__ import annotations

import threading

import pytest

from repro.telemetry import (
    Tracer,
    format_trace_header,
    parse_trace_header,
)

TRACE_ID = "deadbeefdeadbeef"
SPAN_ID = "cafef00d"


class TestHeaderCodec:
    def test_format_parse_roundtrip(self):
        header = format_trace_header(TRACE_ID, SPAN_ID)
        assert header == f"{TRACE_ID}-{SPAN_ID}"
        assert parse_trace_header(header) == (TRACE_ID, SPAN_ID)

    def test_surrounding_whitespace_tolerated(self):
        assert parse_trace_header(f"  {TRACE_ID}-{SPAN_ID} ") == (TRACE_ID, SPAN_ID)

    @pytest.mark.parametrize(
        "value",
        [
            None,
            "",
            "garbage",
            "deadbeef-cafef00d",  # trace id too short
            f"{TRACE_ID}-cafe",  # span id too short
            f"{TRACE_ID.upper()}-{SPAN_ID}",  # hex must be lowercase
            f"{TRACE_ID}_{SPAN_ID}",  # wrong separator
            f"{TRACE_ID}-{SPAN_ID}-extra",
        ],
    )
    def test_garbage_returns_none(self, value):
        assert parse_trace_header(value) is None


class TestDisabledTracer:
    def test_span_is_shared_null(self):
        tracer = Tracer(enabled=False)
        first = tracer.span("a")
        second = tracer.span("b")
        assert first is second
        assert first.header is None
        with first as span:
            span.tag("k", "v")
            span.event("ignored")
        assert tracer.recent() == []
        assert tracer.current_header() is None


class TestSpanLifecycle:
    def test_root_span_records(self):
        tracer = Tracer(enabled=True, seed=1)
        with tracer.span("root") as span:
            span.tag("url", "/x")
            span.event("hit cache")
        records = tracer.recent()
        assert len(records) == 1
        record = records[0]
        assert record.name == "root"
        assert record.parent_id is None
        assert record.tags == {"url": "/x"}
        assert [text for _, text in record.events] == ["hit cache"]
        assert record.duration >= 0.0
        assert parse_trace_header(f"{record.trace_id}-{record.span_id}") is not None

    def test_nested_span_inherits_trace(self):
        tracer = Tracer(enabled=True, seed=1)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_parent_header_overrides_current(self):
        tracer = Tracer(enabled=True, seed=1)
        header = format_trace_header(TRACE_ID, SPAN_ID)
        with tracer.span("local"):
            with tracer.span("remote_child", parent_header=header) as child:
                assert child.trace_id == TRACE_ID
                assert child.parent_id == SPAN_ID

    def test_malformed_parent_header_starts_fresh_trace(self):
        tracer = Tracer(enabled=True, seed=1)
        with tracer.span("root", parent_header="not-a-header") as span:
            assert span.parent_id is None

    def test_current_header_matches_span_header(self):
        tracer = Tracer(enabled=True, seed=1)
        assert tracer.current_header() is None
        with tracer.span("one") as span:
            assert tracer.current_header() == span.header
        assert tracer.current_header() is None

    def test_exception_sets_error_tag_and_propagates(self):
        tracer = Tracer(enabled=True, seed=1)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("nope")
        (record,) = tracer.recent()
        assert record.tags["error"] == "RuntimeError"

    def test_seeded_tracers_are_reproducible(self):
        ids = []
        for _ in range(2):
            tracer = Tracer(enabled=True, seed=99)
            with tracer.span("a") as span:
                ids.append((span.trace_id, span.span_id))
        assert ids[0] == ids[1]


class TestHistory:
    def test_ring_buffer_caps_history(self):
        tracer = Tracer(enabled=True, capacity=4, seed=1)
        for index in range(10):
            with tracer.span(f"s{index}"):
                pass
        names = [record.name for record in tracer.recent()]
        assert names == ["s6", "s7", "s8", "s9"]

    def test_reset_clears_history(self):
        tracer = Tracer(enabled=True, seed=1)
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.recent() == []

    def test_span_stack_is_thread_local(self):
        tracer = Tracer(enabled=True, seed=1)
        seen: dict[str, str | None] = {}

        def worker() -> None:
            seen["other_thread"] = tracer.current_header()

        with tracer.span("main_thread_only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join(timeout=10.0)
        assert seen["other_thread"] is None

    def test_record_json_shape(self):
        tracer = Tracer(enabled=True, seed=1)
        with tracer.span("jsonable") as span:
            span.event("mark")
        (record,) = tracer.recent()
        payload = record.to_json()
        assert payload["name"] == "jsonable"
        assert payload["parent_id"] is None
        assert isinstance(payload["events"], list)
