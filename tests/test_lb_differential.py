"""Differential suite: the cluster front tier against direct origins.

The load balancer's contract is *wire transparency*: the bytes a client
reads through the LB — status line, headers, chunked framing, and the
``P-volume`` piggyback trailer — must be identical to what a direct
connection to an equivalently warmed origin would have produced.  Both
sides are driven with the same deterministic request stream under a
pinned clock and compared element-wise:

* one shard, both LB frontends, keep-alive and ``Connection: close``
  modes — pure relay transparency;
* many shards against per-shard shadow origins fed the partitioned
  subsequences the hash ring implies — partition coherence: because a
  proxy's stream for a volume always lands on the same shard, that
  shard's RPV state evolves exactly like a single origin's would.

Plus the behavioural consequences: RPV suppression (second visit by the
same proxy carries no trailer; a different proxy still gets one) and the
LB answering its own ``/.repro/`` admin namespace instead of relaying.
"""

from __future__ import annotations

import json
import random
import socket

import pytest

from repro.httpmodel.headers import Headers
from repro.httpmodel.messages import HttpRequest, read_response
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER
from repro.httpwire.netserver import PiggybackHttpServer, synthetic_body
from repro.lb.aio import AsyncLbHttpServer
from repro.lb.balancer import LbHttpServer, LbPolicy
from repro.lb.hashring import ConsistentHashRing, partition_key
from repro.lb.routing import BackendSlot, RoutingTable
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.lbdiff.example"
PAGES = {
    f"{HOST}/d{d}/p{p}.html": 300 + 70 * d + 13 * p
    for d in range(6)
    for p in range(4)
}
LB_CLASSES = {"threaded": LbHttpServer, "async": AsyncLbHttpServer}


class SettableClock:
    def __init__(self, value=1_000_000.0):
        self.value = value

    def __call__(self):
        return self.value


class TeeReader:
    """Binary reader recording every byte ``read_response`` consumes."""

    def __init__(self, raw):
        self.raw = raw
        self.taken = bytearray()

    def read(self, size=-1):
        data = self.raw.read(size)
        self.taken += data
        return data

    def readline(self, limit=-1):
        data = self.raw.readline(limit)
        self.taken += data
        return data


def build_engine():
    resources = ResourceStore()
    for url, size in PAGES.items():
        resources.add(url, size=size, last_modified=100.0)
    return PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )


def request_stream(count=70, seed=23):
    """Deterministic (timestamp, request) stream: revisits from a few
    proxies plus periodic 404 probes, piggyback negotiated throughout."""
    rng = random.Random(seed)
    urls = sorted(PAGES)
    stream = []
    now = 1_000_000.0
    for index in range(count):
        now += rng.expovariate(1.0 / 15.0)
        if index % 17 == 16:
            target = "/missing/nothing.html"
        else:
            target = "/" + rng.choice(urls).partition("/")[2]
        request = HttpRequest(method="GET", target=target)
        request.headers.set("Host", HOST)
        request.headers.set("X-Proxy-Name", f"proxy-{rng.randrange(3)}")
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", "maxpiggy=8")
        stream.append((now, request))
    return stream


def exchange_all(address, port, stream, clock, keepalive=True):
    """Send *stream* to one endpoint; return exact wire bytes + parses."""
    raws, parsed = [], []

    def exchange(sock, reader, timestamp, request):
        clock.value = timestamp
        sock.sendall(request.serialize())
        tee = TeeReader(reader)
        parsed.append(read_response(tee))
        raws.append(bytes(tee.taken))

    if keepalive:
        with socket.create_connection((address, port), timeout=10.0) as sock:
            reader = sock.makefile("rb")
            for timestamp, request in stream:
                exchange(sock, reader, timestamp, request)
            reader.close()
    else:
        for timestamp, request in stream:
            request = HttpRequest(
                method=request.method,
                target=request.target,
                headers=Headers(request.headers),
            )
            request.headers.set("Connection", "close")
            with socket.create_connection((address, port), timeout=10.0) as sock:
                reader = sock.makefile("rb")
                exchange(sock, reader, timestamp, request)
                reader.close()
    return raws, parsed


class ShardedLb:
    """N single-replica shards (fresh engines) behind one LB frontend."""

    def __init__(self, shards, frontend="threaded", clock=None):
        self.clock = clock or SettableClock()
        self.origins = [
            PiggybackHttpServer(build_engine(), site_host=HOST, clock=self.clock)
            for _ in range(shards)
        ]
        for origin in self.origins:
            origin.start()
        slots = [
            BackendSlot(shard, 0, origin.address, origin.port)
            for shard, origin in enumerate(self.origins)
        ]
        self.table = RoutingTable(shards, slots, snapshot_ttl=0.5)
        self.lb = LB_CLASSES[frontend](
            self.table, policy=LbPolicy(), site_host=HOST
        )
        self.lb.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.lb.stop()
        for origin in self.origins:
            origin.stop()


# -- one shard: pure relay transparency ------------------------------------


@pytest.mark.parametrize("keepalive", [True, False], ids=["keepalive", "close"])
@pytest.mark.parametrize("frontend", sorted(LB_CLASSES), ids=sorted(LB_CLASSES))
def test_single_shard_lb_byte_identical_to_direct_origin(frontend, keepalive):
    stream = request_stream()
    direct_clock = SettableClock()
    with PiggybackHttpServer(
        build_engine(), site_host=HOST, clock=direct_clock
    ) as origin:
        direct_raw, direct_parsed = exchange_all(
            origin.address, origin.port, stream, direct_clock, keepalive
        )
    with ShardedLb(1, frontend=frontend) as cluster:
        lb_raw, _ = exchange_all(
            cluster.lb.address, cluster.lb.port, stream, cluster.clock, keepalive
        )
    assert len(direct_raw) == len(lb_raw) == len(stream)
    for index, (expected, actual) in enumerate(zip(direct_raw, lb_raw)):
        assert expected == actual, f"response {index} diverges through the LB"
    # The stream actually exercised the protocol end to end.
    trailers = [r.trailers.get(P_VOLUME_HEADER) for r in direct_parsed]
    assert any(t is not None for t in trailers)
    assert any(t is None and r.status == 200
               for t, r in zip(trailers, direct_parsed))  # RPV suppression fired
    assert any(r.status == 404 for r in direct_parsed)
    for response, (_, request) in zip(direct_parsed, stream):
        if response.status == 200:
            url = HOST + request.target
            assert response.body == synthetic_body(url, PAGES[url])


# -- many shards: partition coherence --------------------------------------


def test_multi_shard_lb_byte_identical_to_partitioned_shadow_origins():
    """Each shard's responses through the 3-shard LB must match a shadow
    origin that saw only that shard's subsequence of the stream."""
    shards = 3
    stream = request_stream(count=90)
    ring = ConsistentHashRing(shards)

    def shard_of(request):
        url = HOST + request.target
        return ring.shard_for_key(partition_key(url))

    with ShardedLb(shards) as cluster:
        lb_raw, lb_parsed = exchange_all(
            cluster.lb.address, cluster.lb.port, stream, cluster.clock
        )

    # Shadow pass: per-shard direct origins fed the same subsequences.
    shadow_clock = SettableClock()
    shadow_raw = [b""] * len(stream)
    origins = [
        PiggybackHttpServer(build_engine(), site_host=HOST, clock=shadow_clock)
        for _ in range(shards)
    ]
    connections = []
    try:
        for origin in origins:
            origin.start()
            sock = socket.create_connection(
                (origin.address, origin.port), timeout=10.0
            )
            connections.append((sock, sock.makefile("rb")))
        for index, (timestamp, request) in enumerate(stream):
            sock, reader = connections[shard_of(request)]
            shadow_clock.value = timestamp
            sock.sendall(request.serialize())
            tee = TeeReader(reader)
            read_response(tee)
            shadow_raw[index] = bytes(tee.taken)
    finally:
        for sock, reader in connections:
            reader.close()
            sock.close()
        for origin in origins:
            origin.stop()

    shards_used = {shard_of(request) for _, request in stream}
    assert len(shards_used) >= 2, "stream must actually span shards"
    for index, (expected, actual) in enumerate(zip(shadow_raw, lb_raw)):
        assert expected == actual, f"response {index} diverges across the split"
    assert any(r.trailers.get(P_VOLUME_HEADER) for r in lb_parsed)


# -- RPV suppression is per-proxy through the LB ---------------------------


def test_rpv_suppression_through_lb_is_per_proxy():
    """A proxy's ``rpv=`` filter names *shard-local* volume ids, so the
    suppression round trip only works because stickiness keeps each
    proxy's stream for a volume on the one shard that minted the id."""
    from repro.httpmodel.piggy_codec import parse_p_volume

    directory_urls = [u for u in sorted(PAGES) if "/d0/" in u]
    default_target = "/" + directory_urls[0].partition("/")[2]

    def fetch(cluster, proxy, at, piggy_filter="maxpiggy=8", target=None):
        request = HttpRequest(method="GET", target=target or default_target)
        request.headers.set("Host", HOST)
        request.headers.set("X-Proxy-Name", proxy)
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", piggy_filter)
        request.headers.set("Connection", "close")
        cluster.clock.value = at
        with socket.create_connection(
            (cluster.lb.address, cluster.lb.port), timeout=10.0
        ) as sock:
            reader = sock.makefile("rb")
            sock.sendall(request.serialize())
            response = read_response(reader)
            reader.close()
        return response

    with ShardedLb(2) as cluster:
        # Warm the volume: candidates exist only once siblings are seen.
        now = 1_000_000.0
        for index, url in enumerate(directory_urls[1:]):
            fetch(cluster, "proxy-warm", now + index,
                  target="/" + url.partition("/")[2])

        first = fetch(cluster, "proxy-a", now + 15.0)
        assert first.status == 200
        trailer = first.trailers.get(P_VOLUME_HEADER)
        assert trailer is not None
        volume_id = parse_p_volume(trailer).volume_id
        # The proxy reports the volume as recently piggybacked: the shard
        # suppresses the repeat trailer (RPV).  The round trip only works
        # because stickiness kept proxy-a on the shard that minted the id.
        repeat = fetch(
            cluster, "proxy-a", now + 30.0,
            piggy_filter=f'maxpiggy=8;rpv="{volume_id}"',
        )
        assert repeat.status == 200
        assert repeat.trailers.get(P_VOLUME_HEADER) is None
        # A proxy with no RPV state for the volume still gets the trailer.
        other = fetch(cluster, "proxy-b", now + 45.0)
        assert other.status == 200
        assert other.trailers.get(P_VOLUME_HEADER) is not None


# -- the LB answers its own admin namespace --------------------------------


def test_lb_admin_status_is_local_not_relayed():
    import http.client

    stream = request_stream(count=30)
    with ShardedLb(2) as cluster:
        exchange_all(cluster.lb.address, cluster.lb.port, stream, cluster.clock)
        connection = http.client.HTTPConnection(
            cluster.lb.address, cluster.lb.port, timeout=10
        )
        try:
            connection.request("GET", "/.repro/status", headers={"Host": HOST})
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
    assert response.status == 200
    assert payload["server"] == "lb"
    lb_section = payload["lb"]
    assert lb_section["routing"]["shards"] == 2
    assert sum(lb_section["shard_routes"]) == len(stream)
    assert lb_section["sticky"]["pins"] >= 1
    assert lb_section["unroutable"] == 0
