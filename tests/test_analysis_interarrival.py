"""Unit tests for Figure 1's directory locality computations."""

import pytest

from repro.analysis.interarrival import cumulative_distribution, directory_locality
from repro.traces.records import Trace

from conftest import make_record


def build_trace():
    return Trace(
        [
            make_record(0.0, "s1", "h/a/x.html"),
            make_record(10.0, "s2", "h/a/y.html"),
            make_record(30.0, "s1", "h/b/z.html"),
            make_record(100.0, "s1", "h/a/x.html"),
        ]
    )


class TestDirectoryLocality:
    def test_level0_everything_seen_after_first(self):
        (row,) = directory_locality(build_trace(), levels=(0,))
        assert row.requests == 4
        assert row.seen_before_fraction == pytest.approx(3 / 4)
        assert row.interarrivals == (10.0, 20.0, 70.0)
        assert row.median_interarrival == 20.0

    def test_level1_splits_directories(self):
        (row,) = directory_locality(build_trace(), levels=(1,))
        # Prefix h/a seen at 0, 10, 100; prefix h/b only once.
        assert row.seen_before_fraction == pytest.approx(2 / 4)
        assert row.interarrivals == (10.0, 90.0)
        assert row.median_interarrival == 50.0

    def test_deeper_levels_never_more_local(self):
        rows = directory_locality(build_trace(), levels=(0, 1, 2))
        fractions = [r.seen_before_fraction for r in rows]
        assert fractions == sorted(fractions, reverse=True)

    def test_fraction_within(self):
        (row,) = directory_locality(build_trace(), levels=(0,))
        assert row.fraction_within(10.0) == pytest.approx(1 / 3)
        assert row.fraction_within(1000.0) == 1.0
        assert row.fraction_within(1.0) == 0.0

    def test_mean_interarrival(self):
        (row,) = directory_locality(build_trace(), levels=(0,))
        assert row.mean_interarrival == pytest.approx(100 / 3)

    def test_interarrivals_are_global_across_sources(self):
        # The 0->10 gap spans two different sources on the same prefix:
        # the paper measures spacing within the trace, not per client.
        (row,) = directory_locality(build_trace(), levels=(1,))
        assert 10.0 in row.interarrivals


class TestCumulativeDistribution:
    def test_basic_points(self):
        cdf = cumulative_distribution([1.0, 2.0, 3.0, 4.0], points=[0.0, 2.0, 10.0])
        assert cdf == [(0.0, 0.0), (2.0, 0.5), (10.0, 1.0)]

    def test_empty_values(self):
        assert cumulative_distribution([], points=[1.0]) == [(1.0, 0.0)]

    def test_monotone(self):
        values = [5.0, 1.0, 9.0, 3.0, 3.0]
        points = [0.5, 1.0, 3.0, 6.0, 10.0]
        cdf = [f for _, f in cumulative_distribution(values, points)]
        assert cdf == sorted(cdf)
