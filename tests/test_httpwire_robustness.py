"""Failure injection and concurrency tests for the wire layer."""

import socket
import threading
import time

import pytest

from repro.httpmodel.messages import HttpRequest, read_response
from repro.httpwire.netclient import HttpConnection, fetch_once
from repro.httpwire.netserver import PiggybackHttpServer
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeStore

HOST = "www.robust.example"


@pytest.fixture()
def origin():
    resources = ResourceStore()
    resources.add(f"{HOST}/x.html", size=2048, last_modified=10.0)
    for i in range(10):
        resources.add(f"{HOST}/r{i}.html", size=100 + i, last_modified=10.0)
    engine = PiggybackServer(resources, DirectoryVolumeStore())
    server = PiggybackHttpServer(engine, site_host=HOST, clock=lambda: 1000.0)
    with server:
        yield server


def raw_exchange(server, payload: bytes) -> bytes:
    """Send raw bytes, read whatever comes back until close/timeout."""
    with socket.create_connection((server.address, server.port), timeout=5.0) as sock:
        sock.sendall(payload)
        sock.settimeout(2.0)
        chunks = []
        try:
            while True:
                piece = sock.recv(4096)
                if not piece:
                    break
                chunks.append(piece)
        except socket.timeout:
            pass
        return b"".join(chunks)


class TestMalformedInput:
    def test_garbage_request_line_gets_400(self, origin):
        reply = raw_exchange(origin, b"NOT A REQUEST\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")

    def test_binary_garbage_gets_400_or_close(self, origin):
        reply = raw_exchange(origin, bytes(range(256)) + b"\r\n\r\n")
        assert reply == b"" or b"400" in reply.split(b"\r\n", 1)[0]

    def test_header_without_colon_gets_400(self, origin):
        reply = raw_exchange(origin, b"GET /x.html HTTP/1.1\r\nbadheader\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400")

    def test_malformed_piggy_filter_does_not_break_the_get(self, origin):
        request = HttpRequest(method="GET", target="/x.html")
        request.headers.set("Host", HOST)
        request.headers.set("Piggy-filter", "maxpiggy=banana")
        # A broken filter is treated as "extension not spoken": the GET
        # succeeds with a plain response and no piggyback trailer.
        response = fetch_once(origin.address, origin.port, request)
        assert response.status == 200
        assert response.trailers.get("P-volume") is None

    def test_malformed_piggy_report_ignored(self, origin):
        request = HttpRequest(method="GET", target="/x.html")
        request.headers.set("Host", HOST)
        request.headers.set("Piggy-report", "r=broken")
        response = fetch_once(origin.address, origin.port, request)
        assert response.status == 200
        assert origin.server.stats.reported_cache_hits == 0


class TestDisconnects:
    def test_client_disconnect_mid_headers_leaves_server_alive(self, origin):
        with socket.create_connection((origin.address, origin.port)) as sock:
            sock.sendall(b"GET /x.html HTTP/1.1\r\nHost: ")
            # Abruptly close mid-header.
        # The server must keep serving other clients.
        request = HttpRequest(method="GET", target="/x.html")
        request.headers.set("Host", HOST)
        assert fetch_once(origin.address, origin.port, request).status == 200

    def test_truncated_body_leaves_server_alive(self, origin):
        payload = b"POST /x.html HTTP/1.1\r\nHost: h\r\nContent-Length: 100\r\n\r\nshort"
        raw_exchange(origin, payload)
        request = HttpRequest(method="GET", target="/x.html")
        request.headers.set("Host", HOST)
        assert fetch_once(origin.address, origin.port, request).status == 200

    def test_connection_reconnects_after_server_side_close(self, origin):
        connection = HttpConnection(origin.address, origin.port)
        request = HttpRequest(method="GET", target="/x.html")
        request.headers.set("Host", HOST)
        assert connection.request(request).status == 200
        # Force-close our socket; the next request must reconnect.
        connection._sock.close()
        assert connection.request(request).status == 200
        connection.close()


class TestConcurrency:
    def test_many_parallel_clients(self, origin):
        errors = []
        counts = []

        def worker(index):
            try:
                with HttpConnection(origin.address, origin.port) as connection:
                    ok = 0
                    for j in range(10):
                        request = HttpRequest(
                            method="GET", target=f"/r{(index + j) % 10}.html"
                        )
                        request.headers.set("Host", HOST)
                        response = connection.request(request)
                        if response.status == 200:
                            ok += 1
                    counts.append(ok)
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not errors
        assert sum(counts) == 80
        assert origin.server.stats.requests == 80

    def test_pipelined_requests_on_one_connection(self, origin):
        with socket.create_connection((origin.address, origin.port)) as sock:
            first = HttpRequest(method="GET", target="/r0.html")
            first.headers.set("Host", HOST)
            second = HttpRequest(method="GET", target="/r1.html")
            second.headers.set("Host", HOST)
            sock.sendall(first.serialize() + second.serialize())
            reader = sock.makefile("rb")
            one = read_response(reader)
            two = read_response(reader)
        assert one.status == two.status == 200
        assert len(one.body) == 100
        assert len(two.body) == 101


def build_server(**kwargs):
    resources = ResourceStore()
    resources.add(f"{HOST}/x.html", size=256, last_modified=10.0)
    engine = PiggybackServer(resources, DirectoryVolumeStore())
    return PiggybackHttpServer(
        engine, site_host=HOST, clock=lambda: 1000.0, **kwargs
    )


def wait_until(predicate, deadline=3.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestSocketTimeouts:
    """Regression: accepted sockets used to have NO timeout, so a client
    that connected and never spoke parked a worker thread forever."""

    def test_silent_client_is_reclaimed(self):
        with build_server(io_timeout=0.3) as server:
            silent = socket.create_connection((server.address, server.port))
            try:
                assert wait_until(lambda: server.active_workers() >= 1)
                # The worker must be reclaimed by the idle timeout even
                # though the client never sends a byte or disconnects.
                assert wait_until(lambda: server.active_workers() == 0)
                assert server.wire_stats.idle_timeouts == 1
            finally:
                silent.close()
            # And the server still serves normal traffic afterwards.
            request = HttpRequest(method="GET", target="/x.html")
            request.headers.set("Host", HOST)
            assert fetch_once(server.address, server.port, request).status == 200

    def test_half_request_client_is_reclaimed(self):
        with build_server(io_timeout=0.3) as server:
            stalled = socket.create_connection((server.address, server.port))
            try:
                stalled.sendall(b"GET /x.html HTTP/1.1\r\nHost: h")  # never finishes
                assert wait_until(
                    lambda: server.wire_stats.connections_accepted == 1
                )
                assert wait_until(lambda: server.wire_stats.idle_timeouts == 1)
                assert wait_until(lambda: server.active_workers() == 0)
            finally:
                stalled.close()

    def test_worker_cap_with_silent_clients_recovers(self):
        """Silent clients saturating the worker cap are timed out, and the
        queued well-behaved request is then served (backpressure, no 5xx)."""
        with build_server(io_timeout=0.4, max_workers=2) as server:
            hogs = [
                socket.create_connection((server.address, server.port))
                for _ in range(2)
            ]
            try:
                assert wait_until(lambda: server.active_workers() == 2)
                assert server.active_workers() <= 2
                request = HttpRequest(method="GET", target="/x.html")
                request.headers.set("Host", HOST)
                # Waits in the listen backlog until a hog is reclaimed.
                response = fetch_once(server.address, server.port, request)
                assert response.status == 200
                assert wait_until(lambda: server.wire_stats.idle_timeouts == 2)
            finally:
                for hog in hogs:
                    hog.close()
            assert wait_until(lambda: server.active_workers() == 0)
