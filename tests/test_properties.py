"""Property-based tests (hypothesis) on core invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import urls
from repro.analysis.prediction import ReplayConfig, replay
from repro.core.filters import ProxyFilter
from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.core.rpv import RpvList
from repro.httpmodel.chunked import decode_chunked, encode_chunked
from repro.httpmodel.headers import Headers
from repro.httpmodel.piggy_codec import (
    format_p_volume,
    format_piggy_filter,
    parse_p_volume,
    parse_piggy_filter,
)
from repro.proxy.cache import ProxyCache
from repro.traces.records import LogRecord, Trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.probability import PairwiseConfig, PairwiseEstimator

# --- strategies -----------------------------------------------------------

url_segment = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8)


@st.composite
def canonical_urls(draw):
    host = "www." + draw(url_segment) + ".example"
    depth = draw(st.integers(min_value=0, max_value=4))
    parts = [draw(url_segment) for _ in range(depth)]
    name = draw(url_segment) + draw(st.sampled_from([".html", ".gif", ""]))
    return "/".join([host, *parts, name])


@st.composite
def log_records(draw):
    return LogRecord(
        timestamp=draw(st.floats(min_value=0.0, max_value=1e5,
                                 allow_nan=False, allow_infinity=False)),
        source=draw(st.sampled_from(["s1", "s2", "s3"])),
        url=draw(st.sampled_from([
            "h/a/x.html", "h/a/y.gif", "h/a/z.html",
            "h/b/p.html", "h/b/q.gif", "h/c/r.html",
        ])),
        size=draw(st.integers(min_value=0, max_value=10_000)),
    )


# --- URL invariants ---------------------------------------------------------


class TestUrlProperties:
    @given(canonical_urls())
    def test_canonicalize_idempotent(self, url):
        once = urls.canonicalize(url)
        assert urls.canonicalize(once) == once

    @given(canonical_urls(), st.integers(min_value=0, max_value=6))
    def test_prefix_is_a_prefix_of_the_url(self, url, level):
        prefix = urls.directory_prefix(url, level)
        assert url == prefix or url.startswith(prefix + "/")

    @given(canonical_urls(), st.integers(min_value=0, max_value=5))
    def test_prefixes_nest_by_level(self, url, level):
        shallow = urls.directory_prefix(url, level)
        deep = urls.directory_prefix(url, level + 1)
        assert deep == shallow or deep.startswith(shallow + "/")

    @given(canonical_urls())
    def test_level_never_exceeds_available_directories(self, url):
        deepest = urls.directory_prefix(url, 99)
        assert deepest == urls.directory_prefix(url, urls.directory_levels(url))


# --- wire format round trips -------------------------------------------------


class TestWireProperties:
    @given(st.binary(max_size=5000), st.integers(min_value=1, max_value=600))
    def test_chunked_round_trip(self, body, chunk_size):
        decoded, trailers, rest = decode_chunked(encode_chunked(body, chunk_size=chunk_size))
        assert decoded == body
        assert len(trailers) == 0
        assert rest == b""

    @given(st.binary(max_size=2000),
           st.text(alphabet=string.ascii_letters + string.digits + " ._-", max_size=60))
    def test_chunked_trailer_round_trip(self, body, value):
        trailers = Headers([("P-volume", value.strip() or "x")])
        decoded, parsed, _ = decode_chunked(encode_chunked(body, trailers=trailers))
        assert decoded == body
        assert parsed == trailers

    @given(
        st.lists(
            st.tuples(canonical_urls(),
                      st.integers(min_value=0, max_value=2**40),
                      st.integers(min_value=0, max_value=2**31)),
            max_size=20,
        ),
        st.integers(min_value=0, max_value=32767),
    )
    def test_p_volume_round_trip(self, elements, volume_id):
        message = PiggybackMessage(
            volume_id=volume_id,
            elements=tuple(
                PiggybackElement(url, float(mtime), size) for url, mtime, size in elements
            ),
        )
        parsed = parse_p_volume(format_p_volume(message))
        assert parsed.volume_id == message.volume_id
        assert parsed.urls() == message.urls()
        assert [e.size for e in parsed] == [e.size for e in message]

    @given(
        st.one_of(st.none(), st.integers(min_value=0, max_value=500)),
        st.frozensets(st.integers(min_value=0, max_value=32767), max_size=8),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=0, max_value=100),
        st.frozensets(st.sampled_from(["image", "video", "applet"]), max_size=3),
    )
    def test_piggy_filter_round_trip(self, max_elements, rpv, pthresh, minaccess, notype):
        original = ProxyFilter(
            max_elements=max_elements,
            recently_piggybacked=rpv,
            probability_threshold=round(pthresh, 6),
            min_access_count=minaccess,
            excluded_content_types=notype,
        )
        parsed = parse_piggy_filter(format_piggy_filter(original))
        assert parsed.max_elements == original.max_elements
        assert parsed.recently_piggybacked == original.recently_piggybacked
        assert parsed.min_access_count == original.min_access_count
        assert parsed.excluded_content_types == original.excluded_content_types
        assert abs(parsed.probability_threshold - original.probability_threshold) < 1e-6


# --- stateful-ish invariants --------------------------------------------------


class TestRpvProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=50),
                              st.floats(min_value=0.0, max_value=1000.0,
                                        allow_nan=False)),
                    max_size=60))
    def test_bounded_and_fresh(self, events):
        rpv = RpvList(timeout=100.0, max_entries=5)
        clock = 0.0
        for volume_id, advance in events:
            clock += advance
            rpv.record(volume_id, clock)
            assert len(rpv) <= 5
        active = rpv.active_ids(clock)
        for volume_id in active:
            assert clock - rpv.last_piggyback(volume_id) <= 100.0


class TestCacheProperties:
    @given(st.lists(st.tuples(st.sampled_from(["a", "b", "c", "d", "e"]),
                              st.integers(min_value=1, max_value=60)),
                    max_size=40))
    def test_capacity_and_accounting(self, puts):
        cache = ProxyCache(capacity_bytes=100)
        clock = 0.0
        for url, size in puts:
            clock += 1.0
            cache.put(f"h/{url}", size=size, last_modified=0.0, now=clock)
            assert cache.used_bytes == sum(e.size for e in cache.entries())
            assert cache.used_bytes <= 100 or len(cache) == 1


class TestEstimatorProperties:
    @given(st.lists(log_records(), max_size=80))
    def test_probabilities_bounded(self, records):
        estimator = PairwiseEstimator(PairwiseConfig(window=120.0))
        estimator.observe_trace(Trace(records))
        for implication in estimator.implications(0.0):
            assert 0.0 < implication.probability <= 1.0
            assert implication.antecedent != implication.consequent


class TestReplayProperties:
    @settings(deadline=None)
    @given(st.lists(log_records(), max_size=80))
    def test_metric_invariants_on_random_traces(self, records):
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        metrics = replay(Trace(records), store,
                         ReplayConfig(max_elements=10, rpv_min_gap=30.0))
        assert metrics.requests == len(records)
        assert metrics.predicted_requests <= metrics.requests
        assert metrics.predictions_true <= metrics.predictions_opened
        assert metrics.piggyback_messages <= metrics.requests
        assert metrics.prev_occurrence_recent <= metrics.prev_occurrence_within_history
        assert (metrics.prev_occurrence_recent + metrics.updated_by_piggyback
                <= metrics.requests)
        assert 0.0 <= metrics.fraction_predicted <= 1.0
        assert 0.0 <= metrics.true_prediction_fraction <= 1.0
        if metrics.piggyback_messages:
            assert metrics.mean_piggyback_size <= 10.0
