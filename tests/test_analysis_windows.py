"""Unit tests for replay bookkeeping structures."""

from repro.analysis.windows import SourceState, TimestampMap


class TestTimestampMap:
    def test_record_and_last(self):
        tmap = TimestampMap()
        tmap.record("h/a", 10.0)
        assert tmap.last("h/a") == 10.0
        assert tmap.last("h/b") is None
        assert len(tmap) == 1

    def test_within_is_half_open_on_the_left(self):
        tmap = TimestampMap()
        tmap.record("h/a", 10.0)
        assert tmap.within("h/a", now=310.0, window=300.0)  # exactly T apart
        assert not tmap.within("h/a", now=310.1, window=300.0)

    def test_age(self):
        tmap = TimestampMap()
        tmap.record("h/a", 10.0)
        assert tmap.age("h/a", 25.0) == 15.0
        assert tmap.age("h/b", 25.0) is None

    def test_forget(self):
        tmap = TimestampMap()
        tmap.record("h/a", 10.0)
        tmap.forget("h/a")
        assert tmap.last("h/a") is None
        tmap.forget("h/never")  # no-op


class TestSourceState:
    def test_prediction_lifecycle_true(self):
        state = SourceState()
        state.open_prediction("h/a", 100.0)
        assert state.resolve_prediction("h/a", 150.0, window=300.0)
        # Resolution pops the pending entry.
        assert not state.resolve_prediction("h/a", 151.0, window=300.0)

    def test_prediction_lifecycle_expired(self):
        state = SourceState()
        state.open_prediction("h/a", 100.0)
        assert not state.resolve_prediction("h/a", 500.0, window=300.0)

    def test_resolution_without_prediction(self):
        assert not SourceState().resolve_prediction("h/a", 0.0, window=10.0)
