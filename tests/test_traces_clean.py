"""Unit tests for the Appendix-A log cleaning pipeline."""

import pytest

from repro.traces.clean import CleaningConfig, clean_trace
from repro.traces.records import Trace

from conftest import make_record


def build_trace():
    records = []
    # Popular resource: 12 accesses.
    for i in range(12):
        records.append(make_record(float(i), "c%d" % (i % 4), "www.x.example/a/p.html"))
    # Unpopular resource: 3 accesses.
    for i in range(3):
        records.append(make_record(100.0 + i, "c1", "www.x.example/a/rare.html"))
    # Uncachable resources.
    records.append(make_record(200.0, "c1", "www.x.example/cgi-bin/q"))
    records.append(make_record(201.0, "c1", "www.x.example/a/p.html?x=1"))
    # POST request.
    records.append(make_record(202.0, "c1", "www.x.example/a/p.html", method="POST"))
    # Duplicate URL forms.
    for i in range(10):
        records.append(make_record(300.0 + i, "c2", "http://WWW.X.example/"))
    return Trace(records)


class TestCleanTrace:
    def test_default_pipeline(self):
        cleaned, report = clean_trace(build_trace())
        assert report.input_records == len(build_trace())
        # POST dropped.
        assert report.dropped_method == 1
        # cgi and query URLs dropped.
        assert report.dropped_uncachable == 2
        # rare.html (3 < 10 accesses) dropped.
        assert report.dropped_unpopular == 3
        assert report.output_records == len(cleaned)
        assert all(r.method == "GET" for r in cleaned)

    def test_url_canonicalization_merges_duplicate_forms(self):
        cleaned, _ = clean_trace(build_trace())
        assert "www.x.example" in cleaned.urls()
        assert not any(u.startswith("http://") for u in cleaned.urls())

    def test_popularity_floor_counts_after_canonicalization(self):
        # 10 accesses to http://WWW.X.example/ survive a floor of 10 only
        # because canonicalization merged them into one resource.
        cleaned, _ = clean_trace(build_trace(), CleaningConfig(min_accesses=10))
        assert "www.x.example" in cleaned.urls()

    def test_time_range_filter(self):
        config = CleaningConfig(start_time=100.0, end_time=250.0, min_accesses=0)
        cleaned, report = clean_trace(build_trace(), config)
        assert report.dropped_time_range > 0
        assert all(100.0 <= r.timestamp <= 250.0 for r in cleaned)

    def test_keep_methods_empty_keeps_all(self):
        config = CleaningConfig(keep_methods=(), min_accesses=0)
        cleaned, report = clean_trace(build_trace(), config)
        assert report.dropped_method == 0
        assert any(r.method == "POST" for r in cleaned)

    def test_disable_uncachable_drop(self):
        config = CleaningConfig(drop_uncachable=False, min_accesses=0)
        cleaned, report = clean_trace(build_trace(), config)
        assert report.dropped_uncachable == 0
        assert any("cgi" in r.url for r in cleaned)

    def test_kept_fraction(self):
        _, report = clean_trace(build_trace())
        assert 0.0 < report.kept_fraction < 1.0
        assert report.kept_fraction == report.output_records / report.input_records

    def test_empty_trace(self):
        cleaned, report = clean_trace(Trace([]))
        assert len(cleaned) == 0
        assert report.kept_fraction == 1.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CleaningConfig(min_accesses=-1)
        with pytest.raises(ValueError):
            CleaningConfig(start_time=10.0, end_time=5.0)
