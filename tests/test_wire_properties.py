"""Seeded-random round-trip properties of the wire codecs.

Complements the hypothesis suite in ``test_properties.py`` with explicit
seeded ``random`` trials that target the wire stack's attack surface:
header-injection-shaped URLs (embedded CR/LF, delimiters, whitespace,
non-ASCII) through the ``P-volume``/``Piggy-report`` codecs, arbitrary
bodies and chunk sizes through the chunked coder, and full
``HttpResponse`` messages through serialize -> read_response.  Every
trial is reproducible from its printed seed.
"""

import io
import random
import string

from repro.core.filters import ProxyFilter
from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.httpmodel.chunked import decode_chunked, encode_chunked
from repro.httpmodel.headers import Headers
from repro.httpmodel.messages import HttpResponse, read_response
from repro.httpmodel.piggy_codec import (
    format_p_volume,
    format_piggy_filter,
    format_piggy_report,
    parse_p_volume,
    parse_piggy_filter,
    parse_piggy_report,
)

TRIALS = 200

# Deliberately hostile alphabet: CR/LF for header injection, the codec's
# own delimiters, quoting characters, whitespace, and non-ASCII.
HOSTILE_CHARS = "\r\n|;=\"', %\t&?#" + "é世"
URL_CHARS = string.ascii_lowercase + string.digits + "/._-" + HOSTILE_CHARS


def random_url(rng: random.Random) -> str:
    length = rng.randint(1, 40)
    return "h/" + "".join(rng.choice(URL_CHARS) for _ in range(length))


class TestPVolumeRoundTrip:
    def test_random_messages_round_trip(self):
        rng = random.Random(1234)
        for trial in range(TRIALS):
            elements = tuple(
                PiggybackElement(
                    url=random_url(rng),
                    last_modified=float(rng.randint(0, 2_000_000_000)),
                    size=rng.randint(0, 10_000_000),
                )
                for _ in range(rng.randint(0, 8))
            )
            message = PiggybackMessage(
                volume_id=rng.randint(0, 32767), elements=elements
            )
            wire = format_p_volume(message)
            # The wire value must be safe to place in an HTTP header.
            assert "\r" not in wire and "\n" not in wire, f"trial {trial}"
            parsed = parse_p_volume(wire)
            assert parsed.volume_id == message.volume_id, f"trial {trial}"
            assert parsed.elements == elements, f"trial {trial}"

    def test_injection_shaped_urls_cannot_smuggle_elements(self):
        rng = random.Random(99)
        for trial in range(TRIALS):
            # A URL that *looks like* extra codec attributes or a header.
            hostile = (
                f"h/a{rng.randint(0, 9)}.html\r\nSet-Cookie: x"
                f"; e=/fake|0|0; id=1|{rng.randint(0, 99)}"
            )
            message = PiggybackMessage(
                volume_id=7,
                elements=(
                    PiggybackElement(url=hostile, last_modified=100.0, size=10),
                ),
            )
            parsed = parse_p_volume(format_p_volume(message))
            assert len(parsed.elements) == 1, f"trial {trial}"
            assert parsed.elements[0].url == hostile, f"trial {trial}"


class TestPiggyReportRoundTrip:
    def test_random_reports_round_trip(self):
        rng = random.Random(777)
        for trial in range(TRIALS):
            report = tuple(
                (random_url(rng), rng.randint(1, 10_000))
                for _ in range(rng.randint(1, 10))
            )
            wire = format_piggy_report(report)
            assert wire is not None
            assert "\r" not in wire and "\n" not in wire, f"trial {trial}"
            assert parse_piggy_report(wire) == report, f"trial {trial}"

    def test_empty_report_is_absent(self):
        assert format_piggy_report(()) is None
        assert parse_piggy_report(None) == ()


class TestPiggyFilterRoundTrip:
    def test_random_filters_round_trip(self):
        rng = random.Random(31337)
        for trial in range(TRIALS):
            original = ProxyFilter(
                enabled=True,
                max_elements=rng.choice([None, rng.randint(1, 1000)]),
                recently_piggybacked=frozenset(
                    rng.randint(0, 32767) for _ in range(rng.randint(0, 6))
                ),
                probability_threshold=rng.choice([0.0, 0.25, 0.5]),
                min_access_count=rng.randint(0, 20),
                max_resource_size=rng.choice([None, rng.randint(1, 1 << 20)]),
                excluded_content_types=frozenset(
                    rng.sample(["image", "video", "audio", "text"], rng.randint(0, 3))
                ),
            )
            wire = format_piggy_filter(original)
            assert wire is not None
            parsed = parse_piggy_filter(wire)
            assert parsed.max_elements == original.max_elements, f"trial {trial}"
            assert (
                parsed.recently_piggybacked == original.recently_piggybacked
            ), f"trial {trial}"
            assert (
                parsed.probability_threshold == original.probability_threshold
            ), f"trial {trial}"
            assert parsed.min_access_count == original.min_access_count
            assert parsed.max_resource_size == original.max_resource_size
            assert (
                parsed.excluded_content_types == original.excluded_content_types
            ), f"trial {trial}"


class TestChunkedRoundTrip:
    def test_random_bodies_and_chunk_sizes(self):
        rng = random.Random(2024)
        for trial in range(TRIALS):
            body = rng.randbytes(rng.randint(0, 5000))
            chunk_size = rng.randint(1, 700)
            trailers = Headers()
            for _ in range(rng.randint(0, 3)):
                name = "X-T" + "".join(rng.choices(string.ascii_letters, k=5))
                # Leading/trailing OWS is (correctly) stripped on parse, so
                # generate values already in canonical form.
                value = "".join(
                    rng.choices(string.ascii_letters + string.digits + " ;|=", k=12)
                ).strip() or "v"
                trailers.set(name, value)
            encoded = encode_chunked(body, trailers, chunk_size=chunk_size)
            decoded, parsed_trailers, remainder = decode_chunked(encoded)
            assert decoded == body, f"trial {trial}"
            assert remainder == b"", f"trial {trial}"
            for name, value in trailers:
                assert parsed_trailers.get(name) == value, f"trial {trial}"

    def test_bodies_full_of_framing_bytes(self):
        """Bodies that *contain* chunked framing must not confuse decode."""
        rng = random.Random(55)
        fragments = [b"0\r\n", b"\r\n\r\n", b"5\r\nhello\r\n", b"0\r\n\r\n"]
        for trial in range(TRIALS):
            body = b"".join(
                rng.choice(fragments) for _ in range(rng.randint(1, 20))
            )
            encoded = encode_chunked(body, None, chunk_size=rng.randint(1, 16))
            decoded, _, remainder = decode_chunked(encoded)
            assert decoded == body, f"trial {trial}"
            assert remainder == b"", f"trial {trial}"


class TestHttpResponseRoundTrip:
    def test_random_responses_round_trip_through_streams(self):
        rng = random.Random(4242)
        for trial in range(TRIALS):
            # 304 is bodiless by HTTP semantics; pair it with an empty body.
            status = rng.choice([200, 304, 404, 502])
            body = b"" if status == 304 else rng.randbytes(rng.randint(0, 3000))
            response = HttpResponse(status=status)
            response.headers.set("Server", "prop-test")
            response.headers.set("X-Trial", str(trial))
            response.body = body
            with_trailer = rng.random() < 0.5
            if with_trailer:
                response.trailers.set(
                    "P-volume", f"id={rng.randint(0, 32767)}"
                )
            wire = response.serialize(chunk_size=rng.randint(1, 512))
            parsed = read_response(io.BytesIO(wire))
            assert parsed.status == response.status, f"trial {trial}"
            assert parsed.body == body, f"trial {trial}"
            assert parsed.headers.get("X-Trial") == str(trial)
            if with_trailer:
                assert parsed.trailers.get("P-volume") == response.trailers.get(
                    "P-volume"
                ), f"trial {trial}"
