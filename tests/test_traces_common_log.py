"""Unit tests for Common Log Format parsing and writing."""

import pytest

from repro.traces.common_log import (
    LogParseError,
    format_record,
    parse_line,
    parse_lines,
    read_log,
    write_log,
)
from repro.traces.records import Trace

from conftest import make_record

LINE = '10.0.0.1 - - [06/Jul/1998:10:30:00 +0000] "GET /a/b.html HTTP/1.0" 200 1530'


class TestParseLine:
    def test_basic_fields(self):
        record = parse_line(LINE)
        assert record.source == "10.0.0.1"
        assert record.url == "/a/b.html"
        assert record.method == "GET"
        assert record.status == 200
        assert record.size == 1530

    def test_timestamp_is_utc(self):
        record = parse_line(LINE)
        # 06 Jul 1998 10:30:00 UTC
        assert record.timestamp == 899721000.0

    def test_timezone_offset_applied(self):
        east = parse_line(LINE.replace("+0000", "+0200"))
        assert east.timestamp == 899721000.0 - 7200

    def test_negative_timezone_offset(self):
        west = parse_line(LINE.replace("+0000", "-0500"))
        assert west.timestamp == 899721000.0 + 18000

    def test_dash_size_becomes_zero(self):
        record = parse_line(LINE.replace("200 1530", "304 -"))
        assert record.size == 0
        assert record.status == 304

    def test_malformed_line_raises(self):
        with pytest.raises(LogParseError):
            parse_line("not a log line")

    def test_bad_month_raises(self):
        with pytest.raises(LogParseError):
            parse_line(LINE.replace("Jul", "Xxx"))

    def test_empty_request_field_raises(self):
        with pytest.raises(LogParseError):
            parse_line('h - - [06/Jul/1998:10:30:00 +0000] "" 200 10')

    def test_request_without_protocol(self):
        record = parse_line('h - - [06/Jul/1998:10:30:00 +0000] "GET /x" 200 10')
        assert record.url == "/x"


class TestParseLines:
    def test_skips_malformed_by_default(self):
        records = list(parse_lines([LINE, "garbage", "", LINE]))
        assert len(records) == 2

    def test_strict_mode_raises(self):
        with pytest.raises(LogParseError):
            list(parse_lines([LINE, "garbage"], strict=True))


class TestRoundTrip:
    def test_format_then_parse_preserves_fields(self):
        original = make_record(899721000.0, "10.1.2.3", "www.x.example/a/b.html",
                               status=200, size=4321)
        parsed = parse_line(format_record(original))
        assert parsed.timestamp == original.timestamp
        assert parsed.source == original.source
        assert parsed.status == original.status
        assert parsed.size == original.size
        assert parsed.url == "/a/b.html"  # host lives outside CLF lines

    def test_zero_size_round_trips_as_dash(self):
        line = format_record(make_record(899721000.0, size=0))
        assert line.endswith(" -")

    def test_write_and_read_log(self, tmp_path):
        trace = Trace(
            [make_record(899721000.0 + i, "10.0.0.%d" % (i % 3),
                         "www.x.example/d/p%d.html" % i, size=100 + i)
             for i in range(20)]
        )
        path = tmp_path / "access.log"
        write_log(trace, path)
        loaded = read_log(path)
        assert len(loaded) == 20
        assert [r.timestamp for r in loaded] == [r.timestamp for r in trace]
        assert [r.size for r in loaded] == [r.size for r in trace]
