"""Stateful property testing of the proxy cache (hypothesis)."""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.proxy.cache import CacheOutcome, ProxyCache
from repro.proxy.replacement import GreedyDualSizePolicy, LruPolicy

URLS = [f"h/u{i}" for i in range(8)]


class CacheMachine(RuleBasedStateMachine):
    """Drive a byte-bounded cache through arbitrary operation sequences."""

    def __init__(self):
        super().__init__()
        self.cache = ProxyCache(capacity_bytes=200, freshness_interval=50.0,
                                policy=LruPolicy())
        self.clock = 0.0
        self.model: dict[str, float] = {}  # url -> expiry we last assigned

    def _tick(self) -> float:
        self.clock += 1.0
        return self.clock

    @rule(url=st.sampled_from(URLS), size=st.integers(min_value=1, max_value=120))
    def put(self, url, size):
        now = self._tick()
        entry = self.cache.put(url, size=size, last_modified=now, now=now)
        if entry is not None:
            self.model[url] = now + 50.0

    @rule(url=st.sampled_from(URLS))
    def probe(self, url):
        now = self._tick()
        outcome = self.cache.probe(url, now)
        entry = self.cache.entry(url)
        if outcome is CacheOutcome.MISS:
            assert entry is None
        elif outcome is CacheOutcome.HIT_FRESH:
            assert entry is not None and entry.expires > now
        else:
            assert entry is not None and entry.expires <= now

    @rule(url=st.sampled_from(URLS))
    def validate(self, url):
        now = self._tick()
        self.cache.validate(url, now)

    @rule(url=st.sampled_from(URLS))
    def freshen(self, url):
        now = self._tick()
        self.cache.freshen_from_piggyback(url, now)
        entry = self.cache.entry(url)
        if entry is not None:
            assert entry.expires == now + 50.0
            assert entry.last_piggyback == now

    @rule(url=st.sampled_from(URLS))
    def invalidate(self, url):
        was_present = url in self.cache
        assert self.cache.invalidate(url) == was_present
        assert url not in self.cache

    @invariant()
    def byte_accounting_consistent(self):
        assert self.cache.used_bytes == sum(
            e.size for e in self.cache.entries()
        )

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= 200 or len(self.cache) == 1

    @invariant()
    def stats_balance(self):
        stats = self.cache.stats
        assert stats.probes == stats.fresh_hits + stats.expired_hits + stats.misses


class GdSizeCacheMachine(CacheMachine):
    """Same operations, GD-Size replacement: invariants must still hold."""

    def __init__(self):
        super().__init__()
        self.cache = ProxyCache(capacity_bytes=200, freshness_interval=50.0,
                                policy=GreedyDualSizePolicy())


TestCacheMachine = CacheMachine.TestCase
TestGdSizeCacheMachine = GdSizeCacheMachine.TestCase
TestCacheMachine.settings = settings(max_examples=30, stateful_step_count=40,
                                     deadline=None)
TestGdSizeCacheMachine.settings = settings(max_examples=30, stateful_step_count=40,
                                           deadline=None)
