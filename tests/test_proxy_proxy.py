"""Integration tests for PiggybackProxy against an in-process server."""

import pytest

from repro.core.frequency import MinimumGap
from repro.proxy.prefetch import PrefetchPolicy
from repro.proxy.proxy import ClientOutcome, PiggybackProxy, ProxyConfig
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore


def make_pair(proxy_config=None, pacing=None):
    resources = ResourceStore()
    resources.add("h/a/page.html", size=2000, last_modified=100.0)
    resources.add("h/a/img.gif", size=900, last_modified=100.0)
    resources.add("h/a/more.html", size=700, last_modified=100.0)
    server = PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )
    proxy = PiggybackProxy(
        server.handle,
        config=proxy_config or ProxyConfig(freshness_interval=100.0),
        pacing=pacing,
    )
    return proxy, server, resources


class TestBasicFlow:
    def test_miss_fetch_then_fresh_hit(self):
        proxy, server, _ = make_pair()
        first = proxy.handle_client_get("h/a/page.html", now=1000.0)
        assert first.outcome is ClientOutcome.FETCHED
        assert first.bytes_from_server == 2000
        second = proxy.handle_client_get("h/a/page.html", now=1050.0)
        assert second.outcome is ClientOutcome.CACHE_FRESH
        assert server.stats.requests == 1  # fresh hit never contacted the server

    def test_expired_hit_sends_conditional_get(self):
        proxy, server, _ = make_pair()
        proxy.handle_client_get("h/a/page.html", now=1000.0)
        result = proxy.handle_client_get("h/a/page.html", now=1200.0)
        assert result.outcome is ClientOutcome.VALIDATED
        assert server.stats.not_modified_responses == 1

    def test_modified_resource_refetched(self):
        proxy, server, resources = make_pair()
        proxy.handle_client_get("h/a/page.html", now=1000.0)
        resources.set_modified("h/a/page.html", 1100.0)
        result = proxy.handle_client_get("h/a/page.html", now=1200.0)
        assert result.outcome is ClientOutcome.FETCHED

    def test_unknown_resource_fails(self):
        proxy, _, _ = make_pair()
        result = proxy.handle_client_get("h/missing.html", now=0.0)
        assert result.outcome is ClientOutcome.FAILED


class TestPiggybackIntegration:
    def test_piggyback_freshens_cached_sibling(self):
        proxy, server, _ = make_pair()
        proxy.handle_client_get("h/a/img.gif", now=1000.0)
        # img expires at 1100; a piggyback on another request refreshes it.
        proxy.handle_client_get("h/a/page.html", now=1090.0)
        result = proxy.handle_client_get("h/a/img.gif", now=1150.0)
        assert result.outcome is ClientOutcome.CACHE_FRESH
        assert proxy.coherency.stats.freshened >= 1

    def test_piggyback_invalidates_stale_sibling(self):
        proxy, server, resources = make_pair()
        proxy.handle_client_get("h/a/img.gif", now=1000.0)
        resources.set_modified("h/a/img.gif", 1050.0)
        proxy.handle_client_get("h/a/page.html", now=1060.0)
        assert "h/a/img.gif" not in proxy.cache
        assert proxy.coherency.stats.invalidated >= 1

    def test_rpv_suppresses_back_to_back_piggybacks(self):
        proxy, server, _ = make_pair()
        proxy.handle_client_get("h/a/img.gif", now=1000.0)
        proxy.handle_client_get("h/a/page.html", now=1001.0)
        received_before = proxy.stats.piggybacks_received
        # Same volume within the RPV timeout: the filter blocks a repeat.
        proxy.handle_client_get("h/a/more.html", now=1002.0)
        assert proxy.stats.piggybacks_received == received_before

    def test_rpv_expires_allowing_new_piggyback(self):
        proxy, server, _ = make_pair()
        proxy.handle_client_get("h/a/img.gif", now=1000.0)
        proxy.handle_client_get("h/a/page.html", now=1001.0)
        received_before = proxy.stats.piggybacks_received
        proxy.handle_client_get("h/a/more.html", now=1200.0)  # past rpv_timeout
        assert proxy.stats.piggybacks_received == received_before + 1

    def test_pacing_policy_disables_filter(self):
        proxy, server, _ = make_pair(pacing=MinimumGap(gap=1e9))
        proxy.handle_client_get("h/a/img.gif", now=0.0)
        proxy.handle_client_get("h/a/page.html", now=1.0)
        # First piggyback arrives, then the gap policy silences the rest.
        proxy.handle_client_get("h/a/more.html", now=2.0)
        assert proxy.stats.piggybacks_received <= 2


class TestPrefetching:
    def prefetching_config(self):
        return ProxyConfig(
            freshness_interval=100.0,
            prefetch=PrefetchPolicy(enabled=True, max_resource_size=None),
        )

    def test_prefetch_fetches_uncached_piggybacked_resources(self):
        from conftest import make_record

        proxy, server, _ = make_pair(self.prefetching_config())
        # Another client of the server populated the volume with more.html.
        server.volume_store.observe(
            make_record(990.0, "other", "h/a/more.html", size=700, last_modified=100.0)
        )
        proxy.handle_client_get("h/a/page.html", now=1000.0)
        # The piggyback named the uncached more.html => prefetch issued.
        assert proxy.stats.prefetch_requests >= 1
        assert proxy.prefetcher.stats.issued >= 1
        assert "h/a/more.html" in proxy.cache

    def test_prefetched_resource_served_from_cache(self):
        proxy, server, _ = make_pair(self.prefetching_config())
        proxy.handle_client_get("h/a/img.gif", now=1000.0)
        proxy.handle_client_get("h/a/page.html", now=1001.0)
        # img was already cached; any prefetch targeted an uncached sibling.
        for url in ("h/a/more.html",):
            if url in proxy.cache:
                followup = proxy.handle_client_get(url, now=1002.0)
                assert followup.outcome is ClientOutcome.CACHE_FRESH
                assert followup.served_from_prefetch


class TestStats:
    def test_server_contact_rate(self):
        proxy, _, _ = make_pair()
        proxy.handle_client_get("h/a/page.html", now=0.0)
        proxy.handle_client_get("h/a/page.html", now=10.0)
        proxy.handle_client_get("h/a/page.html", now=20.0)
        assert proxy.stats.client_requests == 3
        assert proxy.stats.server_requests == 1
        assert proxy.stats.server_contact_rate == pytest.approx(1 / 3)

    def test_piggyback_bytes_tracked(self):
        proxy, _, _ = make_pair()
        proxy.handle_client_get("h/a/img.gif", now=0.0)
        proxy.handle_client_get("h/a/page.html", now=1.0)
        assert proxy.stats.piggyback_bytes_received > 0


class TestAdaptivePacingIntegration:
    def test_useless_piggyback_grows_the_gap(self):
        from conftest import make_record
        from repro.core.frequency import AdaptiveGap

        pacing = AdaptiveGap(initial_gap=10.0, min_gap=1.0, max_gap=1000.0)
        proxy, server, _ = make_pair(pacing=pacing)
        # Seed the server's volume with a resource this proxy never
        # cached: the piggyback naming it does no coherency work.
        server.volume_store.observe(
            make_record(0.0, "other", "h/a/more.html", size=700, last_modified=100.0)
        )
        proxy.handle_client_get("h/a/page.html", now=1.0)
        assert pacing.current_gap("h") > 10.0

    def test_useful_piggyback_shrinks_the_gap(self):
        from repro.core.frequency import AdaptiveGap

        pacing = AdaptiveGap(initial_gap=10.0, min_gap=1.0, max_gap=1000.0)
        proxy, server, _ = make_pair(pacing=pacing)
        proxy.handle_client_get("h/a/img.gif", now=0.0)
        # The piggyback on page.html names the cached img.gif and
        # freshens it: useful, so the gap shrinks.
        proxy.handle_client_get("h/a/page.html", now=50.0)
        assert pacing.current_gap("h") < 10.0


class TestUpstreamFailures:
    def test_upstream_exception_propagates(self):
        def broken(request):
            raise ConnectionError("origin unreachable")

        proxy = PiggybackProxy(broken, ProxyConfig(name="p", freshness_interval=100.0))
        with pytest.raises(ConnectionError):
            proxy.handle_client_get("h/a/x.html", now=0.0)

    def test_cache_still_serves_after_upstream_failure(self):
        proxy, server, _ = make_pair()
        proxy.handle_client_get("h/a/page.html", now=0.0)
        proxy.upstream = None  # simulate the origin going away entirely
        result = proxy.handle_client_get("h/a/page.html", now=50.0)
        assert result.outcome is ClientOutcome.CACHE_FRESH
