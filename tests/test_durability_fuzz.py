"""Seeded journal fuzzing: truncation, bit flips, and garbage suffixes.

These cover the damage SIGKILL cannot produce — a machine crash losing
un-synced page-cache tails, disk bit rot inside the file — by mutating
real journal bytes directly.  The invariant under every mutation is the
same prefix-consistency oracle the chaos harness uses: recovery must
never raise, and the recovered store must equal a fresh store fed some
prefix of the original stream.
"""

from __future__ import annotations

import os
import random

import pytest

import durability_driver as driver
from repro.server.durability import DurableState, recover_state

COUNT = 30
_LONG = os.environ.get("REPRO_STRESS_PROFILE") == "long"
CASES = 60 if _LONG else 24


def _build_state_dir(tmp_path, seed: int):
    """A real state directory: journal only, or snapshot plus journal."""
    rng = random.Random(seed)
    records = driver.make_records(seed, COUNT)
    state = DurableState(tmp_path, driver.make_store)
    snapshot_at = rng.randrange(COUNT) if rng.random() < 0.4 else None
    for index, record in enumerate(records):
        driver.feed(state.store, [record])
        if index == snapshot_at:
            state.snapshot_now()
    journal_path = state.store.journal.path
    state.close()
    return records, journal_path


def _mutate(journal_path, rng: random.Random) -> str:
    data = bytearray(journal_path.read_bytes())
    mutation = rng.choice(["truncate", "flip", "garbage", "flip+truncate"])
    if mutation == "truncate":
        data = data[: rng.randrange(len(data) + 1)]
    elif mutation == "flip":
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
    elif mutation == "garbage":
        data += bytes(rng.randrange(256) for _ in range(rng.randrange(1, 300)))
    else:
        position = rng.randrange(len(data))
        data[position] ^= 1 << rng.randrange(8)
        data = data[: rng.randrange(position, len(data) + 1)]
    journal_path.write_bytes(bytes(data))
    return mutation


@pytest.mark.parametrize("seed", range(CASES))
def test_fuzzed_journal_recovers_to_a_consistent_prefix(tmp_path, seed):
    records, journal_path = _build_state_dir(tmp_path, seed)
    rng = random.Random(1000 + seed)
    mutation = _mutate(journal_path, rng)

    recovered, report = recover_state(tmp_path, driver.make_store)
    applied = report.last_seq
    assert 0 <= applied <= COUNT, mutation
    urls = driver.record_urls(records)
    prefix_store = driver.feed(driver.make_store(), records[:applied])
    assert driver.trailer_map(recovered, urls) == driver.trailer_map(
        prefix_store, urls
    ), f"{mutation}: fuzzed recovery is not a clean prefix"

    # And the directory is still serviceable: a new generation opens,
    # finishes the stream, and matches the never-died endpoint.
    resumed = DurableState(tmp_path, driver.make_store)
    driver.feed(resumed.store, records[applied:])
    final = driver.trailer_map(resumed.store, urls)
    resumed.close()
    never_died = driver.trailer_map(driver.feed(driver.make_store(), records), urls)
    assert final == never_died, mutation


def test_fuzzing_actually_reduces_the_applied_count_sometimes(tmp_path):
    """Meta-check: the fuzzer is not a no-op — damage really costs records."""
    losses = 0
    for seed in range(CASES):
        case_dir = tmp_path / f"case-{seed}"
        case_dir.mkdir()
        _, journal_path = _build_state_dir(case_dir, seed)
        _mutate(journal_path, random.Random(1000 + seed))
        _, report = recover_state(case_dir, driver.make_store)
        if report.last_seq < COUNT:
            losses += 1
    assert losses > CASES // 4
