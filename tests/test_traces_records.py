"""Unit tests for LogRecord and Trace containers."""

import pytest

from repro.traces.records import LogRecord, Trace

from conftest import make_record


class TestLogRecord:
    def test_defaults(self):
        record = make_record(1.0)
        assert record.method == "GET"
        assert record.status == 200
        assert record.last_modified is None

    def test_ordering_is_by_time_then_source_then_url(self):
        a = LogRecord(1.0, "a", "h/x")
        b = LogRecord(1.0, "b", "h/x")
        c = LogRecord(0.5, "z", "h/z")
        assert sorted([b, a, c]) == [c, a, b]

    def test_with_url_preserves_other_fields(self):
        record = make_record(3.0, size=77, status=304)
        changed = record.with_url("h/new")
        assert changed.url == "h/new"
        assert changed.size == 77
        assert changed.status == 304
        assert changed.timestamp == 3.0

    def test_is_not_modified(self):
        assert make_record(0.0, status=304).is_not_modified
        assert not make_record(0.0, status=200).is_not_modified

    def test_is_get(self):
        assert make_record(0.0).is_get
        assert not make_record(0.0, method="POST").is_get


class TestTrace:
    def make_trace(self):
        return Trace(
            [
                make_record(5.0, "b", "h/2"),
                make_record(1.0, "a", "h/1"),
                make_record(3.0, "a", "h/1"),
                make_record(9.0, "c", "h/3"),
            ]
        )

    def test_sorted_on_construction(self):
        trace = self.make_trace()
        times = [r.timestamp for r in trace]
        assert times == sorted(times)

    def test_len_and_indexing(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert trace[0].timestamp == 1.0
        assert trace[-1].timestamp == 9.0

    def test_slicing_returns_trace(self):
        trace = self.make_trace()[1:3]
        assert isinstance(trace, Trace)
        assert len(trace) == 2

    def test_start_end_duration(self):
        trace = self.make_trace()
        assert trace.start_time == 1.0
        assert trace.end_time == 9.0
        assert trace.duration == 8.0

    def test_empty_trace_raises_on_start_time(self):
        with pytest.raises(ValueError):
            Trace([]).start_time

    def test_between_half_open(self):
        trace = self.make_trace()
        window = trace.between(1.0, 5.0)
        assert [r.timestamp for r in window] == [1.0, 3.0]

    def test_sources_and_urls(self):
        trace = self.make_trace()
        assert trace.sources() == {"a", "b", "c"}
        assert trace.urls() == {"h/1", "h/2", "h/3"}

    def test_by_source_groups_in_time_order(self):
        groups = self.make_trace().by_source()
        assert [r.timestamp for r in groups["a"]] == [1.0, 3.0]

    def test_url_counts(self):
        counts = self.make_trace().url_counts()
        assert counts == {"h/1": 2, "h/2": 1, "h/3": 1}

    def test_filter(self):
        kept = self.make_trace().filter(lambda r: r.source == "a")
        assert len(kept) == 2

    def test_map_urls(self):
        mapped = self.make_trace().map_urls(lambda u: u.upper())
        assert all(r.url.startswith("H/") for r in mapped)

    def test_repr_mentions_count(self):
        assert "4 records" in repr(self.make_trace())
        assert repr(Trace([])) == "Trace(empty)"
