"""Semantics tests for the piggyback replay engine.

These use tiny hand-built traces where every counter value can be derived
by hand from the Section 3.1 definitions.
"""

import pytest

from repro.analysis.prediction import ReplayConfig, replay
from repro.traces.records import Trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

from conftest import make_record


def dir_store(level=1):
    return DirectoryVolumeStore(
        DirectoryVolumeConfig(level=level, partition_by_type=False)
    )


def run(records, config=None, level=1):
    return replay(Trace(records), dir_store(level), config or ReplayConfig())


class TestBasicAccounting:
    def trace_a(self):
        return [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
            make_record(2.0, "s", "h/d/a"),
            make_record(3.0, "s", "h/d/c"),
        ]

    def test_request_and_message_counts(self):
        metrics = run(self.trace_a())
        assert metrics.requests == 4
        # t=0 produces no message (volume holds only the requested URL);
        # t=1 -> [a], t=2 -> [b], t=3 -> [a, b].
        assert metrics.piggyback_messages == 3
        assert metrics.piggyback_elements == 4

    def test_fraction_predicted(self):
        metrics = run(self.trace_a())
        # Only the t=2 request for a follows a piggyback carrying a.
        assert metrics.predicted_requests == 1
        assert metrics.fraction_predicted == pytest.approx(1 / 4)

    def test_true_prediction_accounting(self):
        metrics = run(self.trace_a())
        # Opened: a@1, b@2, a@3.  True: only a@1 (a requested at t=2).
        assert metrics.predictions_opened == 3
        assert metrics.predictions_true == 1
        assert metrics.true_prediction_fraction == pytest.approx(1 / 3)

    def test_recent_previous_occurrence(self):
        metrics = run(self.trace_a())
        assert metrics.prev_occurrence_within_history == 1
        assert metrics.prev_occurrence_recent == 1
        assert metrics.updated_by_piggyback == 0

    def test_mean_piggyback_size(self):
        metrics = run(self.trace_a())
        assert metrics.mean_piggyback_size == pytest.approx(4 / 3)

    def test_piggyback_bytes_positive(self):
        metrics = run(self.trace_a())
        assert metrics.piggyback_bytes > 0


class TestPredictionWindow:
    def test_prediction_expires_after_window(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),       # piggybacks [a]
            make_record(1.0 + 301.0, "s", "h/d/a"),  # beyond T=300
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 0
        assert metrics.predictions_true == 0

    def test_prediction_exactly_at_window_counts(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
            make_record(301.0, "s", "h/d/a"),  # exactly T after the carry
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 1
        assert metrics.predictions_true == 1


class TestUpdateFraction:
    def test_piggyback_updates_older_cached_copy(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1000.0, "s", "h/d/b"),   # piggybacks [a]
            make_record(1100.0, "s", "h/d/a"),   # predicted + old prev occ
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 1
        assert metrics.prev_occurrence_within_history == 1
        assert metrics.prev_occurrence_recent == 0
        assert metrics.updated_by_piggyback == 1
        assert metrics.update_fraction == pytest.approx(1 / 3)

    def test_prev_occurrence_beyond_history_window_ignored(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(10_000.0, "s", "h/d/b"),
            make_record(10_100.0, "s", "h/d/a"),  # prev occ 10100s > C=7200
        ]
        metrics = run(records)
        assert metrics.prev_occurrence_within_history == 0
        assert metrics.updated_by_piggyback == 0


class TestDeduplication:
    def test_redundant_carry_opens_no_new_prediction(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),  # carries [a]: opens a
            make_record(2.0, "s", "h/d/c"),  # carries [a, b]: a redundant, b new
        ]
        metrics = run(records)
        assert metrics.predictions_opened == 2  # a@1 and b@2 only

    def test_carry_refreshes_prediction_window_for_recall(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),    # carries [a]
            make_record(200.0, "s", "h/d/c"),  # carries [a, b] again
            make_record(450.0, "s", "h/d/a"),  # within T of the t=200 carry
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 1

    def test_request_consumes_prediction(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),   # carries [a]
            make_record(2.0, "s", "h/d/a"),   # consumes the prediction
            make_record(3.0, "s", "h/d/a"),   # no carry since => not predicted
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 1


class TestSourceIsolation:
    def test_piggybacks_are_per_source(self):
        records = [
            make_record(0.0, "s1", "h/d/a"),
            make_record(1.0, "s1", "h/d/b"),  # piggyback to s1 carries a
            make_record(2.0, "s2", "h/d/a"),  # s2 never received a piggyback
        ]
        metrics = run(records)
        assert metrics.predicted_requests == 0


class TestFilters:
    def test_access_filter_uses_whole_trace_counts(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
            make_record(2.0, "s", "h/d/a"),
            make_record(3.0, "s", "h/d/a"),
        ]
        # a occurs 3 times, b once: filter=2 keeps only a as a candidate.
        metrics = run(records, ReplayConfig(access_filter=2))
        assert metrics.piggyback_elements == metrics.piggyback_messages  # all [a]

    def test_online_access_filter(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
        ]
        metrics = run(records, ReplayConfig(access_filter=2, precount_accesses=False))
        # At t=1, a's online count is 1 < 2: nothing passes the filter.
        assert metrics.piggyback_messages == 0

    def test_max_elements_caps_messages(self):
        records = [make_record(float(i), "s", f"h/d/u{i}") for i in range(10)]
        metrics = run(records, ReplayConfig(max_elements=3))
        assert metrics.mean_piggyback_size <= 3.0

    def test_rpv_min_gap_suppresses_repeats(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),   # message (records volume in RPV)
            make_record(2.0, "s", "h/d/c"),   # suppressed: within 30 s gap
            make_record(40.0, "s", "h/d/d"),  # allowed: gap expired
        ]
        metrics = run(records, ReplayConfig(rpv_min_gap=30.0))
        assert metrics.piggyback_messages == 2

    def test_rpv_gap_zero_means_off(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
            make_record(2.0, "s", "h/d/c"),
        ]
        without = run(records, ReplayConfig(rpv_min_gap=None))
        zero = run(records, ReplayConfig(rpv_min_gap=0.0))
        assert zero.piggyback_messages == without.piggyback_messages == 2


class TestWarmup:
    def test_measure_after_skips_early_requests(self):
        records = [
            make_record(0.0, "s", "h/d/a"),
            make_record(1.0, "s", "h/d/b"),
            make_record(2.0, "s", "h/d/a"),
            make_record(1000.0, "s", "h/d/c"),
        ]
        metrics = run(records, ReplayConfig(measure_after=500.0))
        assert metrics.requests == 1  # only the t=1000 request is measured


class TestValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ReplayConfig(prediction_window=0.0)
        with pytest.raises(ValueError):
            ReplayConfig(prediction_window=100.0, history_window=50.0)
        with pytest.raises(ValueError):
            ReplayConfig(recent_window=1e9)
        with pytest.raises(ValueError):
            ReplayConfig(access_filter=-1)
        with pytest.raises(ValueError):
            ReplayConfig(rpv_min_gap=-1.0)
