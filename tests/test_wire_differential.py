"""Differential test: the live wire stack agrees with the trace replay.

The same synthetic trace is evaluated two ways:

* **simulated** — :func:`repro.analysis.prediction.replay` post-processes
  the trace against a directory volume store (the paper's methodology);
* **live** — each record is sent as a real HTTP request over loopback to
  a :class:`PiggybackHttpServer` (clock pinned to the record timestamp),
  the ``P-volume`` trailer is parsed off the chunked response, and the
  replay's scoring rules are applied to the *wire-delivered* piggybacks.

The Section 3.1 metrics — fraction predicted, true-prediction fraction,
update fraction — must agree across the two paths: the wire encoding,
the server engine, and the replay engine implement one protocol.
"""

import random

import pytest

from repro.analysis.metrics import ReplayMetrics
from repro.analysis.prediction import ReplayConfig, replay
from repro.analysis.windows import SourceState
from repro.httpmodel.messages import HttpRequest
from repro.httpmodel.piggy_codec import P_VOLUME_HEADER, parse_p_volume
from repro.httpwire.netclient import HttpConnection
from repro.httpwire.netserver import PiggybackHttpServer
from repro.server.resources import ResourceStore
from repro.server.server import PiggybackServer
from repro.traces.records import LogRecord, Trace
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore

HOST = "www.diff.example"
WINDOW = 300.0
MAX_ELEMENTS = 10
TOLERANCE = 0.02


def synthetic_trace(requests=400, sources=4, directories=3, pages=6, seed=42):
    """A small trace with enough revisits for predictions to open/resolve."""
    rng = random.Random(seed)
    urls = [
        f"{HOST}/d{d}/p{p}.html"
        for d in range(directories)
        for p in range(pages)
    ]
    records = []
    now = 1_000_000.0
    for _ in range(requests):
        now += rng.expovariate(1.0 / 20.0)  # ~20 s between requests
        url = rng.choice(urls)
        records.append(
            LogRecord(
                timestamp=now,
                source=f"proxy-{rng.randrange(sources)}",
                url=url,
                size=500 + 100 * (len(url) % 7),
            )
        )
    return Trace(records)


class SettableClock:
    """Returns whatever the test last pinned it to."""

    def __init__(self, value=0.0):
        self.value = value

    def __call__(self):
        return self.value


def score_records(records, piggyback_urls_for):
    """Apply the replay engine's scoring rules to externally supplied
    piggyback messages.

    *piggyback_urls_for(record)* performs the request (however the path
    under test does it) and returns the piggybacked URLs, or None when no
    message was attached.  Mirrors :func:`repro.analysis.prediction.replay`
    steps 1 and 4, with the wire supplying step 3's filtered message.
    """
    metrics = ReplayMetrics()
    states = {}
    for record in records:
        source, url, now = record.source, record.url, record.timestamp
        state = states.get(source)
        if state is None:
            state = SourceState()
            states[source] = state

        metrics.requests += 1
        predicted = state.carried.within(url, now, WINDOW)
        if predicted:
            metrics.predicted_requests += 1
        age = state.requested.age(url, now)
        if age is not None and age <= ReplayConfig().history_window:
            metrics.prev_occurrence_within_history += 1
            if age <= ReplayConfig().recent_window:
                metrics.prev_occurrence_recent += 1
            elif predicted:
                metrics.updated_by_piggyback += 1
        if state.resolve_prediction(url, now, WINDOW):
            metrics.predictions_true += 1
        state.carried.forget(url)
        state.requested.record(url, now)

        element_urls = piggyback_urls_for(record)
        if element_urls is None:
            continue
        metrics.piggyback_messages += 1
        metrics.piggyback_elements += len(element_urls)
        for element_url in element_urls:
            is_new = not state.carried.within(element_url, now, WINDOW)
            state.carried.record(element_url, now)
            if is_new:
                metrics.predictions_opened += 1
                state.open_prediction(element_url, now)
    return metrics


def run_live(trace):
    """Send every record over a real socket; score the wire piggybacks."""
    resources = ResourceStore()
    for record in trace:
        if record.url not in resources:
            resources.add(record.url, size=record.size, last_modified=100.0)
    engine = PiggybackServer(
        resources, DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    )
    clock = SettableClock()
    with PiggybackHttpServer(engine, site_host=HOST, clock=clock) as origin:
        connection = HttpConnection(origin.address, origin.port, timeout=10.0)
        try:

            def piggyback_urls_for(record):
                clock.value = record.timestamp
                _, _, path = record.url.partition("/")
                request = HttpRequest(method="GET", target="/" + path)
                request.headers.set("Host", HOST)
                request.headers.set("X-Proxy-Name", record.source)
                request.headers.set("TE", "chunked")
                request.headers.set("Piggy-filter", f"maxpiggy={MAX_ELEMENTS}")
                response = connection.request_once(request)
                assert response.status == 200
                trailer = response.trailers.get(P_VOLUME_HEADER)
                if trailer is None:
                    return None
                return parse_p_volume(trailer).urls()

            metrics = score_records(list(trace), piggyback_urls_for)
        finally:
            connection.close()
    return metrics


@pytest.fixture(scope="module")
def both_metrics():
    trace = synthetic_trace()
    store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    simulated = replay(
        trace,
        store,
        ReplayConfig(prediction_window=WINDOW, max_elements=MAX_ELEMENTS),
    )
    live = run_live(trace)
    return simulated, live


def test_traffic_reconciles_exactly(both_metrics):
    simulated, live = both_metrics
    assert live.requests == simulated.requests
    assert live.piggyback_messages == simulated.piggyback_messages
    assert live.piggyback_elements == simulated.piggyback_elements


def test_fraction_predicted_agrees(both_metrics):
    simulated, live = both_metrics
    assert simulated.fraction_predicted > 0.0
    assert abs(live.fraction_predicted - simulated.fraction_predicted) <= TOLERANCE


def test_true_prediction_fraction_agrees(both_metrics):
    simulated, live = both_metrics
    assert simulated.predictions_opened > 0
    assert (
        abs(live.true_prediction_fraction - simulated.true_prediction_fraction)
        <= TOLERANCE
    )


def test_update_fraction_agrees(both_metrics):
    simulated, live = both_metrics
    assert abs(live.update_fraction - simulated.update_fraction) <= TOLERANCE
