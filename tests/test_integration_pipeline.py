"""End-to-end integration: the full analysis pipeline in one test module.

Mirrors what a user of the library does: synthesize a server log, round
trip it through Common Log Format, clean it (Appendix A), extract
pseudo-proxies, build and persist probability volumes, replay for the
Section 3.1 metrics, and run the full proxy/server simulation — checking
cross-module consistency at each step.
"""

import pytest

from repro.analysis.prediction import ReplayConfig, replay
from repro.analysis.simulator import EndToEndSimulator, SimulationConfig
from repro.proxy.proxy import ProxyConfig
from repro.traces.clean import CleaningConfig, clean_trace
from repro.traces.common_log import read_log, write_log
from repro.traces.pseudo_proxy import extract_pseudo_proxies
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.volumes.persistence import load_volumes, save_volumes
from repro.volumes.probability import (
    PairwiseConfig,
    PairwiseEstimator,
    ProbabilityVolumeStore,
    build_probability_volumes,
)
from repro.volumes.thinning import measure_effectiveness, thin_by_effectiveness
from repro.workloads.synth import ServerLogConfig, generate_server_log
from repro.workloads.sitegen import SiteConfig


@pytest.fixture(scope="module")
def pipeline_log(tmp_path_factory):
    config = ServerLogConfig(
        site=SiteConfig(host="www.pipe.example", page_count=60,
                        directory_count=10, seed=31),
        source_count=40,
        session_count=500,
        duration_days=4.0,
        seed=33,
    )
    raw, site = generate_server_log(config)

    # CLF round trip (the host prefix is not part of CLF lines).
    path = tmp_path_factory.mktemp("logs") / "access.log"
    write_log(raw, path)
    loaded = read_log(path)
    assert len(loaded) == len(raw)
    restored = loaded.map_urls(lambda u: "www.pipe.example" + u)

    cleaned, report = clean_trace(restored, CleaningConfig(min_accesses=5))
    assert report.output_records > 0.5 * report.input_records
    return cleaned, site


class TestPipeline:
    def test_clf_round_trip_preserves_structure(self, pipeline_log):
        trace, site = pipeline_log
        assert trace.urls() <= set(site.resources)
        assert len(trace.sources()) > 1

    def test_pseudo_proxies_cover_trace(self, pipeline_log):
        trace, _ = pipeline_log
        proxies = list(extract_pseudo_proxies(trace))
        assert sum(p.request_count for p in proxies) == len(trace)

    def test_volume_build_persist_load_replay(self, pipeline_log, tmp_path):
        trace, _ = pipeline_log
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(trace)
        base = build_probability_volumes(estimator, 0.25)
        effectiveness = measure_effectiveness(trace, base, window=300.0)
        thinned = thin_by_effectiveness(base, effectiveness, 0.2)

        # Persist and reload: the loaded volumes must replay identically.
        path = tmp_path / "volumes.json"
        save_volumes(thinned, path, probability_threshold=0.25,
                     effectiveness_threshold=0.2)
        reloaded = load_volumes(path).volumes

        original = replay(trace, ProbabilityVolumeStore(thinned),
                          ReplayConfig(max_elements=50))
        restored = replay(trace, ProbabilityVolumeStore(reloaded),
                          ReplayConfig(max_elements=50))
        assert original.fraction_predicted == restored.fraction_predicted
        assert original.predictions_opened == restored.predictions_opened
        assert original.piggyback_elements == restored.piggyback_elements

    def test_replay_and_simulator_agree_on_scale(self, pipeline_log):
        """The offline replay and the full simulator see the same trace."""
        trace, site = pipeline_log
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
        metrics = replay(trace, store, ReplayConfig(max_elements=50))

        simulator = EndToEndSimulator(
            site, DirectoryVolumeStore(DirectoryVolumeConfig(level=1)),
            SimulationConfig(proxy=ProxyConfig(freshness_interval=600.0)),
            horizon=trace.end_time + 1.0,
        )
        result = simulator.run(trace)
        assert metrics.requests == result.client_requests
        # The simulated proxy absorbs piggybacks, so it contacts the
        # server for at most every request the replay saw.
        assert result.server_requests <= metrics.requests

    def test_probability_beats_directory_on_size(self, pipeline_log):
        """The paper's headline holds on a freshly generated pipeline."""
        trace, _ = pipeline_log
        directory = replay(
            trace, DirectoryVolumeStore(DirectoryVolumeConfig(level=1)),
            ReplayConfig(max_elements=200),
        )
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(trace)
        volumes = build_probability_volumes(estimator, 0.2)
        probability = replay(trace, ProbabilityVolumeStore(volumes),
                             ReplayConfig(max_elements=200))
        assert probability.mean_piggyback_size < directory.mean_piggyback_size
        assert (probability.true_prediction_fraction
                > directory.true_prediction_fraction)
