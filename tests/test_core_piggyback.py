"""Unit tests for piggyback messages and the Section 2.3 byte model."""

import pytest

from repro.core.piggyback import (
    ELEMENT_FIXED_BYTES,
    MAX_VOLUME_ID,
    VOLUME_ID_BYTES,
    PiggybackElement,
    PiggybackMessage,
)


class TestPiggybackElement:
    def test_wire_bytes_omits_server_name(self):
        element = PiggybackElement("www.sig.com/mafia.html", 866362345.0, 1530)
        assert element.wire_bytes() == len("mafia.html") + ELEMENT_FIXED_BYTES

    def test_wire_bytes_bare_host(self):
        element = PiggybackElement("www.sig.com")
        assert element.wire_bytes() == len("www.sig.com") + ELEMENT_FIXED_BYTES

    def test_paper_byte_budget(self):
        # Section 2.3: a typical 50-byte URL costs ~66 bytes per element.
        url = "www.sig.com/" + "a" * 50
        element = PiggybackElement(url)
        assert element.wire_bytes() == 50 + 16

    def test_frozen(self):
        element = PiggybackElement("h/x")
        with pytest.raises(AttributeError):
            element.size = 3  # type: ignore[misc]


class TestPiggybackMessage:
    def make(self, count=3):
        return PiggybackMessage(
            volume_id=7,
            elements=tuple(
                PiggybackElement(f"h/p{i}.html", float(i), 100 * i) for i in range(count)
            ),
        )

    def test_len_iter_bool(self):
        message = self.make(3)
        assert len(message) == 3
        assert [e.url for e in message] == ["h/p0.html", "h/p1.html", "h/p2.html"]
        assert bool(message)
        assert not PiggybackMessage(volume_id=0, elements=())

    def test_urls(self):
        assert self.make(2).urls() == ["h/p0.html", "h/p1.html"]

    def test_wire_bytes_sums_elements_plus_id(self):
        message = self.make(2)
        expected = VOLUME_ID_BYTES + sum(e.wire_bytes() for e in message)
        assert message.wire_bytes() == expected

    def test_volume_id_range_enforced(self):
        with pytest.raises(ValueError):
            PiggybackMessage(volume_id=MAX_VOLUME_ID + 1, elements=())
        with pytest.raises(ValueError):
            PiggybackMessage(volume_id=-1, elements=())
        # The boundary value itself is legal (32767 volumes per server).
        PiggybackMessage(volume_id=MAX_VOLUME_ID, elements=())

    def test_from_urls_with_metadata(self):
        message = PiggybackMessage.from_urls(
            3, ["h/a", "h/b"], metadata={"h/a": (11.0, 222)}
        )
        assert message.elements[0].last_modified == 11.0
        assert message.elements[0].size == 222
        assert message.elements[1].last_modified == 0.0

    def test_paper_example_message_size(self):
        # Section 2.3: 6 elements of ~66 bytes => ~398 bytes total.
        elements = tuple(
            PiggybackElement("www.sun.example/" + "x" * 50) for _ in range(6)
        )
        message = PiggybackMessage(volume_id=1, elements=elements)
        assert message.wire_bytes() == 2 + 6 * 66
