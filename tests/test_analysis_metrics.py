"""Unit tests for metric accumulators."""

import pytest

from repro.analysis.metrics import ReplayMetrics


class TestDerivedMetrics:
    def test_zero_division_safe(self):
        metrics = ReplayMetrics()
        assert metrics.fraction_predicted == 0.0
        assert metrics.true_prediction_fraction == 0.0
        assert metrics.update_fraction == 0.0
        assert metrics.mean_piggyback_size == 0.0
        assert metrics.mean_piggyback_bytes == 0.0
        assert metrics.piggyback_message_rate == 0.0

    def test_fraction_predicted(self):
        metrics = ReplayMetrics(requests=100, predicted_requests=60)
        assert metrics.fraction_predicted == pytest.approx(0.6)

    def test_true_prediction_fraction(self):
        metrics = ReplayMetrics(predictions_opened=50, predictions_true=10)
        assert metrics.true_prediction_fraction == pytest.approx(0.2)

    def test_update_fraction_is_table1_sum(self):
        metrics = ReplayMetrics(
            requests=200,
            prev_occurrence_recent=19,   # column 3 numerator
            updated_by_piggyback=22,     # column 4 numerator
        )
        assert metrics.update_fraction == pytest.approx(41 / 200)

    def test_table1_column_fractions(self):
        metrics = ReplayMetrics(
            requests=100,
            prev_occurrence_within_history=24,
            prev_occurrence_recent=10,
            updated_by_piggyback=11,
        )
        assert metrics.prev_occurrence_history_fraction == pytest.approx(0.24)
        assert metrics.prev_occurrence_recent_fraction == pytest.approx(0.10)
        assert metrics.updated_by_piggyback_fraction == pytest.approx(0.11)

    def test_piggyback_cost_metrics(self):
        metrics = ReplayMetrics(
            requests=10, piggyback_messages=5,
            piggyback_elements=30, piggyback_bytes=1000,
        )
        assert metrics.mean_piggyback_size == pytest.approx(6.0)
        assert metrics.mean_piggyback_bytes == pytest.approx(200.0)
        assert metrics.piggyback_message_rate == pytest.approx(0.5)
