"""Unit tests for recently-piggybacked-volume lists."""

import pytest

from repro.core.rpv import RpvList, RpvTable


class TestRpvList:
    def test_record_and_contains(self):
        rpv = RpvList(timeout=30.0)
        rpv.record(3, now=100.0)
        assert 3 in rpv
        assert 4 not in rpv

    def test_active_ids_within_timeout(self):
        rpv = RpvList(timeout=30.0)
        rpv.record(3, now=100.0)
        rpv.record(4, now=110.0)
        assert rpv.active_ids(now=120.0) == frozenset({3, 4})

    def test_expiry_drops_old_entries(self):
        rpv = RpvList(timeout=30.0)
        rpv.record(3, now=100.0)
        rpv.record(4, now=125.0)
        assert rpv.active_ids(now=131.0) == frozenset({4})
        assert 3 not in rpv

    def test_max_entries_evicts_oldest_fifo(self):
        rpv = RpvList(timeout=1e9, max_entries=2)
        rpv.record(1, 0.0)
        rpv.record(2, 1.0)
        rpv.record(3, 2.0)
        assert 1 not in rpv
        assert {2, 3} <= set(rpv.active_ids(3.0))

    def test_rerecording_refreshes_position_and_time(self):
        rpv = RpvList(timeout=30.0, max_entries=2)
        rpv.record(1, 0.0)
        rpv.record(2, 1.0)
        rpv.record(1, 2.0)  # 1 is now the most recent
        rpv.record(3, 3.0)  # evicts 2, not 1
        assert 1 in rpv and 3 in rpv and 2 not in rpv
        assert rpv.last_piggyback(1) == 2.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RpvList(timeout=0.0)
        with pytest.raises(ValueError):
            RpvList(max_entries=0)


class TestRpvTable:
    def test_per_server_isolation(self):
        table = RpvTable(timeout=30.0)
        table.record("a.com", 1, 0.0)
        table.record("b.com", 2, 0.0)
        assert table.active_ids("a.com", 1.0) == frozenset({1})
        assert table.active_ids("b.com", 1.0) == frozenset({2})

    def test_unknown_server_empty(self):
        table = RpvTable()
        assert table.active_ids("x.com", 0.0) == frozenset()

    def test_bounded_server_count_evicts_lru(self):
        table = RpvTable(max_servers=2)
        table.record("a.com", 1, 0.0)
        table.record("b.com", 1, 1.0)
        table.for_server("a.com")  # touch a.com so b.com is the LRU
        table.record("c.com", 1, 2.0)
        assert len(table) == 2
        assert table.active_ids("b.com", 3.0) == frozenset()
        assert table.active_ids("a.com", 3.0) == frozenset({1})

    def test_invalid_max_servers(self):
        with pytest.raises(ValueError):
            RpvTable(max_servers=0)
