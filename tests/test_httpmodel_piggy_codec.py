"""Unit tests for the Piggy-filter / P-volume wire codecs."""

import pytest

from repro.core.filters import ProxyFilter
from repro.core.piggyback import PiggybackElement, PiggybackMessage
from repro.httpmodel.piggy_codec import (
    PiggyCodecError,
    format_p_volume,
    format_piggy_filter,
    parse_p_volume,
    parse_piggy_filter,
)


class TestPiggyFilterCodec:
    def test_round_trip_full_filter(self):
        original = ProxyFilter(
            max_elements=10,
            recently_piggybacked=frozenset({3, 4}),
            probability_threshold=0.25,
            min_access_count=5,
            max_resource_size=65536,
            excluded_content_types=frozenset({"image", "video"}),
        )
        parsed = parse_piggy_filter(format_piggy_filter(original))
        assert parsed == original

    def test_paper_example_value(self):
        value = format_piggy_filter(
            ProxyFilter(max_elements=10, recently_piggybacked=frozenset({3, 4}))
        )
        assert value == 'maxpiggy=10; rpv="3,4"'

    def test_parse_paper_example(self):
        parsed = parse_piggy_filter('maxpiggy=10; rpv="3,4";')
        assert parsed.max_elements == 10
        assert parsed.recently_piggybacked == frozenset({3, 4})
        assert parsed.enabled

    def test_disabled_filter_has_no_header(self):
        assert format_piggy_filter(ProxyFilter.disabled()) is None

    def test_missing_header_parses_as_disabled(self):
        assert not parse_piggy_filter(None).enabled

    def test_unconstrained_filter_still_emits_header(self):
        value = format_piggy_filter(ProxyFilter())
        assert value is not None
        parsed = parse_piggy_filter(value)
        assert parsed.enabled
        assert parsed.max_elements is None

    def test_unknown_attributes_ignored(self):
        parsed = parse_piggy_filter("maxpiggy=5; future-knob=yes")
        assert parsed.max_elements == 5

    def test_malformed_attribute_raises(self):
        with pytest.raises(PiggyCodecError):
            parse_piggy_filter("maxpiggy")
        with pytest.raises(PiggyCodecError):
            parse_piggy_filter("maxpiggy=ten")
        with pytest.raises(PiggyCodecError):
            parse_piggy_filter('rpv="a,b"')

    def test_probability_threshold_round_trip(self):
        original = ProxyFilter(probability_threshold=0.2)
        parsed = parse_piggy_filter(format_piggy_filter(original))
        assert parsed.probability_threshold == pytest.approx(0.2)


class TestPVolumeCodec:
    def make_message(self):
        return PiggybackMessage(
            volume_id=7,
            elements=(
                PiggybackElement("www.sig.com/a/b.html", 866362345.0, 1530),
                PiggybackElement("www.sig.com/i.gif", 866362000.0, 4096),
            ),
        )

    def test_round_trip(self):
        message = self.make_message()
        parsed = parse_p_volume(format_p_volume(message))
        assert parsed.volume_id == 7
        assert parsed.urls() == message.urls()
        assert [e.size for e in parsed] == [1530, 4096]
        assert [e.last_modified for e in parsed] == [866362345.0, 866362000.0]

    def test_url_with_delimiters_escaped(self):
        message = PiggybackMessage(
            volume_id=1,
            elements=(PiggybackElement("h/a|b;c d.html", 1.0, 2),),
        )
        value = format_p_volume(message)
        parsed = parse_p_volume(value)
        assert parsed.elements[0].url == "h/a|b;c d.html"

    def test_empty_message(self):
        parsed = parse_p_volume(format_p_volume(PiggybackMessage(5, ())))
        assert parsed.volume_id == 5
        assert len(parsed) == 0

    def test_missing_id_raises(self):
        with pytest.raises(PiggyCodecError):
            parse_p_volume("e=/a|1|2")

    def test_malformed_element_raises(self):
        with pytest.raises(PiggyCodecError):
            parse_p_volume("id=1; e=/a|1")
        with pytest.raises(PiggyCodecError):
            parse_p_volume("id=1; e=/a|x|2")
        with pytest.raises(PiggyCodecError):
            parse_p_volume("id=zz")
        with pytest.raises(PiggyCodecError):
            parse_p_volume("id=1; garbage")

    def test_last_modified_truncated_to_seconds(self):
        message = PiggybackMessage(
            volume_id=1, elements=(PiggybackElement("h/a", 123.9, 10),)
        )
        parsed = parse_p_volume(format_p_volume(message))
        assert parsed.elements[0].last_modified == 123.0
