"""Tests for the end-to-end proxy/server simulator."""


from repro.analysis.simulator import EndToEndSimulator, SimulationConfig
from repro.proxy.prefetch import PrefetchPolicy
from repro.proxy.proxy import ProxyConfig
from repro.volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
from repro.workloads.modifications import ModificationConfig


def build_simulator(trace, site, **kwargs):
    config = SimulationConfig(
        proxy=kwargs.pop("proxy", ProxyConfig(freshness_interval=600.0)),
        modifications=kwargs.pop(
            "modifications",
            ModificationConfig(fast_fraction=0.1, fast_mean_interval=3600.0),
        ),
        use_volume_center=kwargs.pop("use_volume_center", False),
    )
    store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    return EndToEndSimulator(site, store, config, horizon=trace.end_time + 1.0)


class TestEndToEnd:
    def test_counters_are_consistent(self, small_server_log):
        trace, site = small_server_log
        simulator = build_simulator(trace, site)
        result = simulator.run(trace)
        assert result.client_requests == len(trace)
        total = result.cache_fresh + result.validated + result.fetched
        assert total == result.client_requests
        assert result.server_requests >= result.validated + result.fetched

    def test_cache_produces_fresh_hits(self, small_server_log):
        trace, site = small_server_log
        result = build_simulator(trace, site).run(trace)
        assert result.cache_fresh > 0
        assert 0.0 < result.fresh_hit_rate < 1.0
        assert result.server_contact_rate < 1.0

    def test_piggybacks_flow(self, small_server_log):
        trace, site = small_server_log
        result = build_simulator(trace, site).run(trace)
        assert result.piggyback_messages > 0
        assert result.piggyback_bytes > 0

    def test_stale_rate_low_with_piggybacks(self, small_server_log):
        trace, site = small_server_log
        result = build_simulator(trace, site).run(trace)
        assert result.stale_rate < 0.05

    def test_prefetching_runs_and_accounts(self, small_server_log):
        trace, site = small_server_log
        proxy_config = ProxyConfig(
            freshness_interval=600.0,
            prefetch=PrefetchPolicy(enabled=True, max_resource_size=None),
        )
        simulator = build_simulator(trace, site, proxy=proxy_config)
        result = simulator.run(trace)
        assert simulator.proxy.stats.prefetch_requests > 0
        assert result.prefetch_useful + result.prefetch_futile > 0

    def test_volume_center_mode(self, small_server_log):
        trace, site = small_server_log
        simulator = build_simulator(trace, site, use_volume_center=True)
        result = simulator.run(trace)
        assert simulator.center is not None
        assert simulator.center.stats.observed_responses > 0
        assert result.client_requests == len(trace)

    def test_piggybacks_reduce_server_contacts(self, small_server_log):
        trace, site = small_server_log
        with_piggyback = build_simulator(trace, site).run(trace)

        no_piggy_config = ProxyConfig(
            freshness_interval=600.0, max_piggyback_elements=0
        )
        without = build_simulator(trace, site, proxy=no_piggy_config).run(trace)
        # Piggyback freshening should avoid some validations/fetches.
        assert with_piggyback.server_requests <= without.server_requests
        assert with_piggyback.cache_fresh >= without.cache_fresh

    def test_packet_accounting(self, small_server_log):
        trace, site = small_server_log
        result = build_simulator(trace, site).run(trace)
        assert result.piggyback_extra_packets >= 0
        assert isinstance(result.packets_saved_estimate, int)
