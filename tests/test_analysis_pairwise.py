"""Unit tests for the probability-volume build drivers."""

import pytest

from repro.analysis.pairwise import (
    VolumeBuildConfig,
    build_volumes_from_trace,
    implication_probabilities,
)


class TestBuildVolumesFromTrace:
    def test_base_build_learns_bursts(self, burst_trace):
        volumes = build_volumes_from_trace(
            burst_trace, VolumeBuildConfig(probability_threshold=0.9)
        )
        members = {url for url, _ in volumes.members_of("www.b.example/a/p.html")}
        assert members == {"www.b.example/a/i1.gif", "www.b.example/a/i2.gif"}

    def test_threshold_prunes(self, burst_trace):
        low = build_volumes_from_trace(
            burst_trace, VolumeBuildConfig(probability_threshold=0.0)
        )
        high = build_volumes_from_trace(
            burst_trace, VolumeBuildConfig(probability_threshold=0.99)
        )
        assert high.implication_count() <= low.implication_count()

    def test_combined_restricts_to_directory(self, burst_trace):
        volumes = build_volumes_from_trace(
            burst_trace,
            VolumeBuildConfig(probability_threshold=0.5, combine_level=1),
        )
        for antecedent in volumes.antecedents():
            directory = antecedent.rsplit("/", 1)[0]
            for consequent, _ in volumes.members_of(antecedent):
                assert consequent.rsplit("/", 1)[0] == directory

    def test_effectiveness_thinning_keeps_useful_pairs(self, burst_trace):
        volumes = build_volumes_from_trace(
            burst_trace,
            VolumeBuildConfig(probability_threshold=0.5, effectiveness_threshold=0.5),
        )
        # p -> i1 opens a fresh, true prediction on every burst: it survives.
        members = {url for url, _ in volumes.members_of("www.b.example/a/p.html")}
        assert "www.b.example/a/i1.gif" in members

    def test_sampled_build_close_to_exact_on_small_trace(self, burst_trace):
        exact = build_volumes_from_trace(
            burst_trace, VolumeBuildConfig(probability_threshold=0.9)
        )
        sampled = build_volumes_from_trace(
            burst_trace,
            VolumeBuildConfig(probability_threshold=0.9, sample_counters=True, seed=5),
        )
        assert sampled.implication_count() <= exact.implication_count()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            VolumeBuildConfig(probability_threshold=1.5)
        with pytest.raises(ValueError):
            VolumeBuildConfig(effectiveness_threshold=-0.1)


class TestImplicationProbabilities:
    def test_sorted_and_bounded(self, burst_trace):
        probabilities = implication_probabilities(burst_trace)
        assert probabilities == sorted(probabilities)
        assert all(0.0 < p <= 1.0 for p in probabilities)

    def test_burst_pairs_at_probability_one(self, burst_trace):
        probabilities = implication_probabilities(burst_trace)
        assert probabilities[-1] == pytest.approx(1.0)
