"""Tests for the runtime race sanitizer (``REPRO_RACE=1``).

Covers the lockset state machine (exclusive phase, clean handoff,
candidate-set narrowing, the raise on interleaved unlocked writes), the
proxy's read/write split, factory composition with the lock-order
layer, and the wired-up hot objects in the serving stack.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import pytest

from repro.devtools import racecheck
from repro.devtools.racecheck import (
    RaceError,
    RaceLock,
    RaceMonitor,
    SharedStateProxy,
    share,
    wrap_lock,
)


@pytest.fixture
def race_on(monkeypatch):
    monkeypatch.setenv("REPRO_RACE", "1")


def run_threads(*targets):
    errors: list[BaseException] = []

    def wrap(fn):
        def runner():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for asserts
                errors.append(exc)

        return runner

    threads = [threading.Thread(target=wrap(t)) for t in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return errors


# -- gating ----------------------------------------------------------------


def test_share_is_identity_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_RACE", raising=False)
    obj: dict[str, int] = {}
    assert share(obj, "x") is obj
    lock = threading.Lock()
    assert wrap_lock(lock, "x") is lock


def test_share_wraps_when_enabled(race_on):
    proxy = share({}, "x")
    assert isinstance(proxy, SharedStateProxy)
    assert isinstance(wrap_lock(threading.Lock(), "x"), RaceLock)


# -- proxy surface ---------------------------------------------------------


def test_proxy_forwards_container_surface(race_on):
    inner: OrderedDict[str, int] = OrderedDict()
    proxy = share(inner, "cache")
    proxy["a"] = 1
    proxy.update(b=2)
    proxy.setdefault("c", 3)
    proxy.move_to_end("a")
    assert proxy["a"] == 1
    assert "b" in proxy
    assert len(proxy) == 3
    assert list(proxy) == ["b", "c", "a"]
    assert proxy.get("missing") is None
    assert bool(proxy)
    assert proxy == inner
    del proxy["b"]
    assert proxy.pop("c") == 3
    proxy.clear()
    assert len(inner) == 0


# -- lockset state machine -------------------------------------------------


def test_single_thread_mutation_never_raises(race_on):
    proxy = share({}, "solo")
    for i in range(100):
        proxy[i] = i
    assert len(proxy) == 100


def test_clean_ownership_handoff_is_silent(race_on):
    proxy = share({}, "handoff")
    proxy["built"] = 1  # main thread builds...

    def worker():
        for i in range(50):  # ...one worker mutates from then on
            proxy[i] = i

    assert run_threads(worker) == []


def test_interleaved_unlocked_writes_raise(race_on):
    # Deterministic interleave: A writes, B writes, A writes again.
    # The transition write (B's) is silent by design; A's next write
    # interleaves with it unprotected and must raise.
    proxy = share({}, "racy")
    turn_b = threading.Event()
    turn_a = threading.Event()

    def writer_a():
        proxy["a-1"] = 1
        turn_b.set()
        assert turn_a.wait(timeout=5)
        proxy["a-2"] = 2  # raises

    def writer_b():
        assert turn_b.wait(timeout=5)
        proxy["b-1"] = 1
        turn_a.set()

    errors = run_threads(writer_a, writer_b)
    assert len(errors) == 1
    assert isinstance(errors[0], RaceError)
    message = str(errors[0])
    assert "racy" in message
    assert "no common lock" in message


def test_common_lock_keeps_writes_clean(race_on):
    proxy = share({}, "guarded")
    lock = wrap_lock(threading.Lock(), "guarded.lock")
    barrier = threading.Barrier(2)

    def writer(name):
        def run():
            barrier.wait()
            for i in range(2000):
                with lock:
                    proxy[f"{name}-{i}"] = i

        return run

    assert run_threads(writer("a"), writer("b")) == []
    assert len(proxy) == 4000


def test_disjoint_locks_still_race(race_on):
    # Each writer holds *a* lock — but not the same one, so the
    # candidate set empties and the interleaved write raises.
    proxy = share({}, "split")
    lock_a = wrap_lock(threading.Lock(), "lock.a")
    lock_b = wrap_lock(threading.Lock(), "lock.b")
    turn_b = threading.Event()
    turn_a = threading.Event()

    def writer_a():
        with lock_a:
            proxy["a-1"] = 1
        turn_b.set()
        assert turn_a.wait(timeout=5)
        with lock_a:
            proxy["a-2"] = 2  # raises: candidate {lock.b} & {lock.a} = {}

    def writer_b():
        assert turn_b.wait(timeout=5)
        with lock_b:
            proxy["b-1"] = 1
        turn_a.set()

    errors = run_threads(writer_a, writer_b)
    assert len(errors) == 1
    assert isinstance(errors[0], RaceError)


def test_reads_after_join_never_raise(race_on):
    proxy = share({}, "readback")
    lock = wrap_lock(threading.Lock(), "readback.lock")

    def writer():
        for i in range(100):
            with lock:
                proxy[i] = i

    assert run_threads(writer, writer) == []
    # Join-synchronized reads from the main thread: always fine.
    assert len(proxy) == 100
    assert proxy[7] == 7
    assert sorted(proxy) == sorted(range(100))


def test_rlock_reentrancy_balances(race_on):
    monitor = RaceMonitor()
    lock = RaceLock(threading.RLock(), "re.lock", monitor)
    with lock:
        with lock:
            assert monitor.lockset() == {"re.lock"}
        assert monitor.lockset() == {"re.lock"}
    assert monitor.lockset() == frozenset()


# -- wired hot objects -----------------------------------------------------


def test_piggyback_cache_entries_are_proxied(race_on):
    from repro.server.piggyback_cache import PiggybackMessageCache

    cache = PiggybackMessageCache(max_entries=4)
    assert isinstance(cache._entries, SharedStateProxy)


def test_upstream_pools_are_proxied(race_on):
    from repro.httpwire.netproxy import HttpUpstream

    upstream = HttpUpstream(origins={})
    assert isinstance(upstream._pools, SharedStateProxy)
    assert isinstance(upstream._bodies, SharedStateProxy)


def test_metrics_registry_instruments_are_proxied(race_on):
    from repro.telemetry.registry import MetricsRegistry

    registry = MetricsRegistry()
    assert isinstance(registry._instruments, SharedStateProxy)


def test_volume_store_tables_and_lock_are_wrapped(race_on):
    from repro.volumes.directory import DirectoryVolumeStore

    store = DirectoryVolumeStore()
    assert isinstance(store._volumes, SharedStateProxy)
    assert isinstance(store._epochs, SharedStateProxy)
    assert isinstance(store.lock, RaceLock)


def test_wired_objects_plain_when_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_RACE", raising=False)
    from repro.server.piggyback_cache import PiggybackMessageCache
    from repro.volumes.directory import DirectoryVolumeStore

    cache = PiggybackMessageCache(max_entries=4)
    assert isinstance(cache._entries, OrderedDict)
    store = DirectoryVolumeStore()
    assert isinstance(store._volumes, dict)


def test_seeded_unsynchronized_store_mutation_detected(race_on):
    """The sanitizer catches a deliberately unsynchronized mutation of a
    wired object — the acceptance fixture for the whole subsystem."""
    from repro.volumes.directory import DirectoryVolumeStore
    from repro.traces.records import LogRecord

    store = DirectoryVolumeStore()
    turn_b = threading.Event()
    turn_a = threading.Event()

    def record(tag, i):
        # A fresh directory per observation forces a _volumes dict write.
        return LogRecord(
            timestamp=float(i),
            source=f"client-{tag}",
            url=f"/{tag}{i}/page.html",
            size=100,
        )

    def observer_a():
        # Bypass store.lock on purpose: interleaved observe() calls
        # mutate _volumes/_epochs unsynchronized.
        store.observe(record("a", 1))
        turn_b.set()
        assert turn_a.wait(timeout=5)
        store.observe(record("a", 2))  # raises

    def observer_b():
        assert turn_b.wait(timeout=5)
        store.observe(record("b", 1))
        turn_a.set()

    errors = run_threads(observer_a, observer_b)
    assert errors, "unsynchronized store.observe() must trip the sanitizer"
    assert all(isinstance(e, RaceError) for e in errors)


def test_locked_store_mutation_clean(race_on):
    from repro.volumes.directory import DirectoryVolumeStore
    from repro.traces.records import LogRecord

    store = DirectoryVolumeStore()
    barrier = threading.Barrier(2)

    def observer(offset):
        def run():
            barrier.wait()
            for i in range(300):
                with store.lock:
                    store.observe(
                        LogRecord(
                            timestamp=float(offset * 1000 + i),
                            source=f"client{offset}",
                            url=f"/dir{offset}/page{i}.html",
                            size=100,
                        )
                    )

        return run

    assert run_threads(observer(1), observer(2)) == []


def test_enabled_reflects_environment(monkeypatch):
    monkeypatch.setenv("REPRO_RACE", "yes")
    assert racecheck.enabled()
    monkeypatch.setenv("REPRO_RACE", "0")
    assert not racecheck.enabled()
    monkeypatch.delenv("REPRO_RACE")
    assert not racecheck.enabled()
