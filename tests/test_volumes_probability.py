"""Unit tests for pairwise estimation and probability-based volumes."""

import pytest

from repro.traces.records import Trace
from repro.volumes.probability import (
    PairwiseConfig,
    PairwiseEstimator,
    ProbabilityVolumeStore,
    ProbabilityVolumes,
    build_probability_volumes,
)

from conftest import make_record


def feed(estimator, specs):
    for t, source, url in specs:
        estimator.observe(make_record(t, source, url))


class TestPairwiseEstimator:
    def test_simple_implication(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        feed(estimator, [(0.0, "s", "h/a"), (1.0, "s", "h/b")])
        assert estimator.probability("h/a", "h/b") == 1.0
        assert estimator.probability("h/b", "h/a") == 0.0

    def test_proportion_of_antecedent_occurrences(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        # a followed by b once; a alone once.
        feed(estimator, [(0.0, "s", "h/a"), (1.0, "s", "h/b"),
                         (100.0, "s", "h/a")])
        assert estimator.probability("h/a", "h/b") == pytest.approx(0.5)

    def test_window_limits_crediting(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        feed(estimator, [(0.0, "s", "h/a"), (50.0, "s", "h/b")])
        assert estimator.probability("h/a", "h/b") == 0.0

    def test_sources_do_not_cross_credit(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        feed(estimator, [(0.0, "s1", "h/a"), (1.0, "s2", "h/b")])
        assert estimator.probability("h/a", "h/b") == 0.0

    def test_each_occurrence_credits_a_follower_once(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        # One a-occurrence followed by b twice: still one credit.
        feed(estimator, [(0.0, "s", "h/a"), (1.0, "s", "h/b"), (2.0, "s", "h/b")])
        assert estimator.probability("h/a", "h/b") == 1.0

    def test_multiple_occurrences_can_push_probability_to_one(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        for start in (0.0, 100.0, 200.0):
            feed(estimator, [(start, "s", "h/a"), (start + 1.0, "s", "h/b")])
        assert estimator.probability("h/a", "h/b") == 1.0
        assert estimator.occurrence_count("h/a") == 3

    def test_self_pairs_never_counted(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        feed(estimator, [(0.0, "s", "h/a"), (1.0, "s", "h/a")])
        assert estimator.probability("h/a", "h/a") == 0.0

    def test_same_directory_restriction(self):
        estimator = PairwiseEstimator(
            PairwiseConfig(window=10.0, same_directory_level=1)
        )
        feed(estimator, [(0.0, "s", "h/a/x"), (1.0, "s", "h/a/y"), (2.0, "s", "h/b/z")])
        assert estimator.probability("h/a/x", "h/a/y") == 1.0
        assert estimator.probability("h/a/x", "h/b/z") == 0.0

    def test_implications_sorted_and_thresholded(self):
        estimator = PairwiseEstimator(PairwiseConfig(window=10.0))
        feed(estimator, [(0.0, "s", "h/a"), (1.0, "s", "h/b"),
                         (100.0, "s", "h/a"), (101.0, "s", "h/b"),
                         (200.0, "s", "h/a"), (201.0, "s", "h/c")])
        implications = estimator.implications(0.5)
        assert [(i.antecedent, i.consequent) for i in implications] == [("h/a", "h/b")]
        all_implications = estimator.implications(0.0)
        assert len(all_implications) >= 2

    def test_burst_fixture_learns_embedded_images(self, burst_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(burst_trace)
        assert estimator.probability("www.b.example/a/p.html", "www.b.example/a/i1.gif") == 1.0
        assert estimator.probability("www.b.example/a/p.html", "www.b.example/a/i2.gif") == 1.0


class TestSampledCounters:
    def build_trace(self):
        records = []
        # Popular pair: a->b 50 times.  Rare pair: c->d once.
        for i in range(50):
            records.append(make_record(i * 100.0, "s", "h/a"))
            records.append(make_record(i * 100.0 + 1.0, "s", "h/b"))
        records.append(make_record(9000.0, "s", "h/c"))
        records.append(make_record(9001.0, "s", "h/d"))
        return Trace(records)

    def test_sampling_reduces_counters(self):
        exact = PairwiseEstimator(PairwiseConfig(window=10.0))
        exact.observe_trace(self.build_trace())
        sampled = PairwiseEstimator(
            PairwiseConfig(window=10.0, sample_counters=True,
                           sampling_constant=0.5, sampling_threshold=0.5, seed=3)
        )
        sampled.observe_trace(self.build_trace())
        assert sampled.counter_count <= exact.counter_count
        assert sampled.skipped_pair_events >= 0

    def test_frequent_pairs_still_estimated(self):
        sampled = PairwiseEstimator(
            PairwiseConfig(window=10.0, sample_counters=True,
                           sampling_constant=2.0, sampling_threshold=0.2, seed=1)
        )
        sampled.observe_trace(self.build_trace())
        # The popular a->b pair must get a counter early and a high estimate.
        assert sampled.probability("h/a", "h/b") > 0.8


class TestProbabilityVolumes:
    def build(self):
        return ProbabilityVolumes(
            {
                "h/a": [("h/b", 0.9), ("h/c", 0.3)],
                "h/b": [("h/a", 0.5)],
                "h/self": [("h/self", 1.0)],
            }
        )

    def test_members_sorted_by_probability(self):
        volumes = self.build()
        assert volumes.members_of("h/a") == [("h/b", 0.9), ("h/c", 0.3)]

    def test_missing_antecedent_empty(self):
        assert self.build().members_of("h/zzz") == []

    def test_implication_count(self):
        assert self.build().implication_count() == 4

    def test_symmetric_fraction(self):
        volumes = self.build()
        # Pairs: (a,b),(a,c),(b,a),(self,self); symmetric: (a,b),(b,a),(self,self).
        assert volumes.symmetric_fraction() == pytest.approx(3 / 4)

    def test_self_membership_fraction(self):
        assert self.build().self_membership_fraction() == pytest.approx(1 / 3)

    def test_membership_counts(self):
        counts = self.build().membership_counts()
        assert counts["h/a"] == 1
        assert counts["h/b"] == 1

    def test_filtered(self):
        volumes = self.build().filtered(lambda r, s, p: p >= 0.5)
        assert volumes.members_of("h/a") == [("h/b", 0.9)]
        assert "h/a" in volumes

    def test_empty_volumes_dropped(self):
        volumes = ProbabilityVolumes({"h/a": []})
        assert len(volumes) == 0


class TestBuildAndStore:
    def test_build_from_estimator(self, burst_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(burst_trace)
        volumes = build_probability_volumes(estimator, 0.9)
        members = dict(volumes.members_of("www.b.example/a/p.html"))
        assert set(members) == {"www.b.example/a/i1.gif", "www.b.example/a/i2.gif"}

    def test_store_lookup_carries_metadata(self, burst_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(burst_trace)
        volumes = build_probability_volumes(estimator, 0.9)
        store = ProbabilityVolumeStore(volumes)
        for record in burst_trace:
            store.observe(record)
        lookup = store.lookup("www.b.example/a/p.html").materialized()
        candidates = list(lookup.candidates)
        assert all(c.probability >= 0.9 for c in candidates)
        assert all(c.access_count > 0 for c in candidates)

    def test_store_lookup_none_for_unknown(self):
        store = ProbabilityVolumeStore(ProbabilityVolumes({}))
        assert store.lookup("h/x") is None

    def test_per_resource_volume_ids_distinct(self, burst_trace):
        estimator = PairwiseEstimator(PairwiseConfig(window=300.0))
        estimator.observe_trace(burst_trace)
        volumes = build_probability_volumes(estimator, 0.3)
        store = ProbabilityVolumeStore(volumes)
        ids = {
            store.lookup(url).volume_id
            for url in volumes.antecedents()
        }
        assert len(ids) == len(volumes.antecedents())


class TestValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            PairwiseConfig(window=0.0)
        with pytest.raises(ValueError):
            PairwiseConfig(sampling_threshold=0.0)
        with pytest.raises(ValueError):
            PairwiseConfig(same_directory_level=-1)

    def test_implication_threshold_bounds(self):
        estimator = PairwiseEstimator()
        with pytest.raises(ValueError):
            estimator.implications(-0.1)
