"""The interned trace representation: symbol tables and compiled columns."""

from __future__ import annotations

from repro import urls as url_utils
from repro.core.piggyback import PiggybackElement
from repro.traces.intern import SymbolTable, compile_trace
from repro.traces.records import Trace

from conftest import make_record


class TestSymbolTable:
    def test_ids_are_dense_and_first_seen(self):
        table = SymbolTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert len(table) == 2
        assert table.string(1) == "b"
        assert table.id_of("b") == 1
        assert table.id_of("missing") is None
        assert "a" in table and "missing" not in table

    def test_seeded_construction(self):
        table = SymbolTable(["x", "y", "x"])
        assert table.strings == ["x", "y"]


class TestCompiledTrace:
    def _trace(self):
        return Trace(
            [
                make_record(0.0, "c1", "www.x.example/a/p.html", size=1000,
                            last_modified=100.0),
                make_record(1.0, "c2", "www.x.example/a/i.gif", size=50),
                make_record(2.0, "c1", "www.x.example/b/q.html", size=2000),
                make_record(3.0, "c1", "www.x.example/a/p.html", size=1000),
            ]
        )

    def test_columns_match_records(self):
        trace = self._trace()
        compiled = compile_trace(trace)
        assert len(compiled) == len(trace)
        for index, record in enumerate(trace):
            assert compiled.timestamps[index] == record.timestamp
            assert compiled.urls.string(compiled.url_ids[index]) == record.url
            assert compiled.sources.string(compiled.source_ids[index]) == record.source
            assert compiled.sizes[index] == record.size
            assert compiled.has_mtime(index) == (record.last_modified is not None)

    def test_wire_bytes_match_piggyback_model(self):
        compiled = compile_trace(self._trace())
        wire = compiled.wire_bytes()
        for url_id, url in enumerate(compiled.urls.strings):
            assert wire[url_id] == PiggybackElement(url=url).wire_bytes()

    def test_content_type_and_prefix_columns(self):
        compiled = compile_trace(self._trace())
        type_ids = compiled.content_type_ids()
        for url_id, url in enumerate(compiled.urls.strings):
            name = compiled.content_types.string(type_ids[url_id])
            assert name == url_utils.content_type_of(url)
        for level in (0, 1, 2):
            prefix_ids = compiled.directory_prefix_ids(level)
            table = compiled.directory_prefix_table(level)
            for url_id, url in enumerate(compiled.urls.strings):
                assert table.string(prefix_ids[url_id]) == url_utils.directory_prefix(
                    url, level
                )

    def test_url_counts_match_trace(self):
        trace = self._trace()
        compiled = compile_trace(trace)
        counts = compiled.url_counts()
        by_string = trace.url_counts()
        for url_id, url in enumerate(compiled.urls.strings):
            assert counts[url_id] == by_string[url]

    def test_excluded_type_id_set(self):
        compiled = compile_trace(self._trace())
        excluded = compiled.content_type_id_set({"image"})
        gif_id = compiled.urls.id_of("www.x.example/a/i.gif")
        html_id = compiled.urls.id_of("www.x.example/a/p.html")
        type_ids = compiled.content_type_ids()
        assert type_ids[gif_id] in excluded
        assert type_ids[html_id] not in excluded

    def test_ensure_url_extends_built_columns(self):
        compiled = compile_trace(self._trace())
        wire = compiled.wire_bytes()
        type_ids = compiled.content_type_ids()
        prefix_ids = compiled.directory_prefix_ids(1)
        counts = compiled.url_counts()
        before = len(compiled.urls)

        new_id = compiled.ensure_url("www.x.example/c/new.html")
        assert new_id == before
        assert len(wire) == len(type_ids) == len(prefix_ids) == len(counts) == before + 1
        assert wire[new_id] == PiggybackElement(url="www.x.example/c/new.html").wire_bytes()
        assert counts[new_id] == 0
        table = compiled.directory_prefix_table(1)
        assert table.string(prefix_ids[new_id]) == url_utils.directory_prefix(
            "www.x.example/c/new.html", 1
        )
        # Re-interning an existing URL must not grow anything.
        assert compiled.ensure_url("www.x.example/a/p.html") < before
        assert len(wire) == before + 1

    def test_compile_is_memoized_per_trace(self):
        trace = self._trace()
        assert compile_trace(trace) is compile_trace(trace)
        assert compile_trace(self._trace()) is not compile_trace(trace)
        compiled = compile_trace(trace)
        assert compile_trace(compiled) is compiled


class TestTraceSortSkipping:
    def test_presorted_input_preserved(self):
        records = [make_record(float(i), "c1", f"www.x.example/{i}.html")
                   for i in range(5)]
        trace = Trace(records)
        assert list(trace) == records

    def test_unsorted_input_sorted(self):
        records = [make_record(3.0), make_record(1.0), make_record(2.0)]
        trace = Trace(records)
        assert [r.timestamp for r in trace] == [1.0, 2.0, 3.0]

    def test_slice_between_filter_preserve_order(self):
        records = [make_record(float(i), "c1", f"www.x.example/{i % 3}.html")
                   for i in range(10)]
        trace = Trace(records)
        assert [r.timestamp for r in trace[2:6]] == [2.0, 3.0, 4.0, 5.0]
        assert [r.timestamp for r in trace.between(3.0, 7.0)] == [3.0, 4.0, 5.0, 6.0]
        kept = trace.filter(lambda r: r.url.endswith("0.html"))
        assert [r.timestamp for r in kept] == [0.0, 3.0, 6.0, 9.0]
        assert kept.between(3.0, 9.0).start_time == 3.0
