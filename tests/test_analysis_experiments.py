"""Tests for the per-figure experiment entry points.

Run on the small fixture log; assert the paper's qualitative shapes (who
wins, monotone directions) rather than absolute numbers.
"""

import pytest

from repro.analysis import experiments


@pytest.fixture(scope="module")
def log(request):
    trace, site = request.getfixturevalue("small_server_log")
    return trace


# Re-export the session fixture at module scope for speed.
@pytest.fixture(scope="module")
def small_server_log_module(small_server_log):
    return small_server_log


class TestFig1:
    def test_rows_cover_levels(self, small_server_log):
        trace, _ = small_server_log
        rows = experiments.fig1_interarrival(trace, levels=(0, 1, 2))
        assert [r.level for r in rows] == [0, 1, 2]
        assert all(0.0 <= r.seen_before_fraction <= 1.0 for r in rows)

    def test_shallower_prefixes_more_often_seen(self, small_server_log):
        trace, _ = small_server_log
        rows = experiments.fig1_interarrival(trace, levels=(0, 1, 2))
        fractions = [r.seen_before_fraction for r in rows]
        assert fractions == sorted(fractions, reverse=True)


class TestFig2Fig3:
    @pytest.fixture(scope="class")
    def points(self, small_server_log):
        trace, _ = small_server_log
        return experiments.fig2_fig3_directory(
            trace, levels=(1, 2), access_filters=(1, 20, 100)
        )

    def test_grid_complete(self, points):
        assert len(points) == 6

    def test_piggyback_size_decreases_with_filter(self, points):
        for level in (1, 2):
            sizes = [p.mean_piggyback_size for p in points if p.level == level]
            assert sizes == sorted(sizes, reverse=True)

    def test_deeper_volumes_are_smaller(self, points):
        for access_filter in (1, 20, 100):
            by_level = {p.level: p for p in points if p.access_filter == access_filter}
            assert by_level[2].mean_piggyback_size <= by_level[1].mean_piggyback_size

    def test_prediction_decreases_with_filter(self, points):
        for level in (1, 2):
            predictions = [p.fraction_predicted for p in points if p.level == level]
            assert predictions == sorted(predictions, reverse=True)

    def test_directory_precision_is_low(self, points):
        # Paper: directory volumes yield 70-90% false predictions.
        unfiltered = [p for p in points if p.access_filter == 1]
        assert all(p.true_prediction_fraction < 0.5 for p in unfiltered)


class TestFig4:
    @pytest.fixture(scope="class")
    def points(self, small_server_log):
        trace, _ = small_server_log
        return experiments.fig4_rpv(
            trace, levels=(1,), access_filters=(1,), min_gaps=(0.0, 30.0, 300.0)
        )

    def test_rpv_reduces_piggyback_traffic(self, points):
        rates = {p.min_gap: p.piggyback_message_rate for p in points}
        assert rates[30.0] < rates[0.0]
        assert rates[300.0] <= rates[30.0]

    def test_prediction_loss_is_modest(self, points):
        predictions = {p.min_gap: p.fraction_predicted for p in points}
        # The paper's headline: pacing costs little recall.
        assert predictions[30.0] >= 0.6 * predictions[0.0]


class TestFig5Through8:
    @pytest.fixture(scope="class")
    def points(self, small_server_log):
        trace, _ = small_server_log
        return experiments.fig6_fig7_fig8_probability(
            trace, thresholds=(0.1, 0.3, 0.6),
            variants=("base", "effective-0.2", "combined"),
        )

    def test_grid_complete(self, points):
        assert len(points) == 9

    def test_fraction_predicted_decreases_with_threshold(self, points):
        for variant in ("base", "combined"):
            series = sorted(
                (p for p in points if p.variant == variant),
                key=lambda p: p.probability_threshold,
            )
            predictions = [p.fraction_predicted for p in series]
            assert predictions == sorted(predictions, reverse=True)

    def test_thinning_reduces_size(self, points):
        for threshold in (0.1, 0.3):
            base = next(p for p in points
                        if p.variant == "base" and p.probability_threshold == threshold)
            thinned = next(p for p in points
                           if p.variant == "effective-0.2"
                           and p.probability_threshold == threshold)
            assert thinned.mean_piggyback_size <= base.mean_piggyback_size
            assert thinned.implication_count <= base.implication_count

    def test_thinning_improves_precision(self, points):
        base = next(p for p in points
                    if p.variant == "base" and p.probability_threshold == 0.1)
        thinned = next(p for p in points
                       if p.variant == "effective-0.2"
                       and p.probability_threshold == 0.1)
        assert thinned.true_prediction_fraction >= base.true_prediction_fraction

    def test_combined_subset_of_base(self, points):
        for threshold in (0.1, 0.3, 0.6):
            base = next(p for p in points
                        if p.variant == "base" and p.probability_threshold == threshold)
            combined = next(p for p in points
                            if p.variant == "combined"
                            and p.probability_threshold == threshold)
            assert combined.implication_count <= base.implication_count

    def test_fig5b_cdf(self, small_server_log):
        trace, _ = small_server_log
        probabilities = experiments.fig5b_implication_cdf(trace)
        assert probabilities == sorted(probabilities)
        assert probabilities and probabilities[-1] <= 1.0


class TestTable1:
    def test_row_consistency(self, small_server_log):
        trace, _ = small_server_log
        row = experiments.table1_update_fraction(trace, "fixture")
        assert row.log == "fixture"
        assert 0.0 <= row.prev_occurrence_5min <= row.prev_occurrence_2hr <= 1.0
        assert row.update_fraction == pytest.approx(
            row.prev_occurrence_5min + row.updated_by_piggyback
        )
        assert row.mean_piggyback_size >= 0.0

    def test_fraction_of_cache_hits(self, small_server_log):
        trace, _ = small_server_log
        row = experiments.table1_update_fraction(trace, "fixture")
        if row.prev_occurrence_2hr > 0:
            assert row.fraction_of_cache_hits(row.prev_occurrence_5min) <= 1.0


class TestTables2And3:
    def test_table3_matches_stats_module(self, small_server_log):
        trace, _ = small_server_log
        stats = experiments.table3_server_stats(trace)
        assert stats.requests == len(trace)


class TestSec23Overhead:
    def test_byte_budget_shape(self, small_server_log):
        trace, _ = small_server_log
        summary = experiments.sec23_overhead(trace)
        # Element cost is URL bytes + 16; our synthetic URLs are short.
        assert 16.0 < summary.mean_element_bytes < 120.0
        assert summary.mean_message_bytes >= summary.mean_element_bytes
        assert 0.0 <= summary.fraction_no_extra_packet <= 1.0
        assert summary.mean_response_bytes > 0


class TestSec4Prefetch:
    def test_tradeoff_curve_shape(self, small_server_log):
        trace, _ = small_server_log
        points = experiments.sec4_prefetch_tradeoffs(trace, thresholds=(0.1, 0.5))
        assert len(points) == 2
        low, high = points
        # Higher thresholds keep the more reliable implications, so the
        # futile-fetch fraction (and wasted bandwidth) must not grow.
        # Recall after effectiveness thinning is NOT monotone in p_t (low
        # thresholds dilute per-pair effectiveness), so it is not asserted.
        assert high.futile_fraction <= low.futile_fraction
        assert high.bandwidth_increase <= low.bandwidth_increase
        assert all(0.0 < p.fraction_prefetchable <= 1.0 for p in points)
        assert all(0.0 <= p.futile_fraction <= 1.0 for p in points)
