"""Unit tests for HTTP/1.1 message serialization and stream parsing."""

import io

import pytest

from repro.httpmodel.messages import (
    HttpParseError,
    HttpRequest,
    HttpResponse,
    read_request,
    read_response,
)


def stream(data: bytes):
    return io.BufferedReader(io.BytesIO(data))


class TestRequestRoundTrip:
    def test_simple_get(self):
        request = HttpRequest(method="GET", target="/mafia.html")
        request.headers.set("Host", "sig.com")
        request.headers.set("TE", "chunked")
        parsed = read_request(stream(request.serialize()))
        assert parsed.method == "GET"
        assert parsed.target == "/mafia.html"
        assert parsed.headers.get("Host") == "sig.com"
        assert parsed.body == b""

    def test_post_with_body(self):
        request = HttpRequest(method="POST", target="/submit", body=b"k=v&x=1")
        parsed = read_request(stream(request.serialize()))
        assert parsed.body == b"k=v&x=1"
        assert parsed.headers.get("Content-Length") == "7"

    def test_paper_example_request_headers(self):
        # The Section 2.3 example GET with TE and Piggy-filter headers.
        request = HttpRequest(method="GET", target="/mafia.html")
        request.headers.set("host", "sig.com")
        request.headers.set("TE", "chunked")
        request.headers.set("Piggy-filter", 'maxpiggy=10; rpv="3,4"')
        parsed = read_request(stream(request.serialize()))
        assert parsed.headers.get("Piggy-filter") == 'maxpiggy=10; rpv="3,4"'

    def test_eof_on_idle_connection(self):
        with pytest.raises(EOFError):
            read_request(stream(b""))

    def test_malformed_request_line(self):
        with pytest.raises(HttpParseError):
            read_request(stream(b"GARBAGE\r\n\r\n"))

    def test_truncated_body(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(HttpParseError):
            read_request(stream(raw))


class TestResponseRoundTrip:
    def test_content_length_response(self):
        response = HttpResponse(status=200, body=b"hello world")
        parsed = read_response(stream(response.serialize()))
        assert parsed.status == 200
        assert parsed.reason == "OK"
        assert parsed.body == b"hello world"
        assert len(parsed.trailers) == 0

    def test_chunked_response_with_trailers(self):
        response = HttpResponse(status=200, body=b"data" * 100)
        response.trailers.set("P-volume", "id=3; e=/a|1|2")
        raw = response.serialize(chunk_size=64)
        parsed = read_response(stream(raw))
        assert parsed.body == b"data" * 100
        assert parsed.trailers.get("P-volume") == "id=3; e=/a|1|2"

    def test_trailer_header_announces_fields(self):
        response = HttpResponse(status=200, body=b"x")
        response.trailers.set("P-volume", "id=1")
        parsed = read_response(stream(response.serialize()))
        assert parsed.headers.get("Trailer") == "P-volume"
        assert "chunked" in parsed.headers.get("Transfer-Encoding")

    def test_304_has_no_body(self):
        response = HttpResponse(status=304)
        parsed = read_response(stream(response.serialize()))
        assert parsed.status == 304
        assert parsed.reason == "Not Modified"
        assert parsed.body == b""

    def test_chunked_304_with_piggyback_trailer(self):
        # A validation response can still carry the P-volume trailer.
        response = HttpResponse(status=304)
        response.trailers.set("P-volume", "id=2")
        parsed = read_response(stream(response.serialize()))
        assert parsed.status == 304
        assert parsed.trailers.get("P-volume") == "id=2"

    def test_unknown_status_reason(self):
        response = HttpResponse(status=418)
        assert response.reason == "Unknown"

    def test_malformed_status_line(self):
        with pytest.raises(HttpParseError):
            read_response(stream(b"HTTP/1.1\r\n\r\n"))

    def test_bad_status_code(self):
        with pytest.raises(HttpParseError):
            read_response(stream(b"HTTP/1.1 abc OK\r\n\r\n"))


class TestPipelining:
    def test_two_responses_back_to_back(self):
        first = HttpResponse(status=200, body=b"one").serialize()
        second = HttpResponse(status=200, body=b"two").serialize()
        reader = stream(first + second)
        assert read_response(reader).body == b"one"
        assert read_response(reader).body == b"two"

    def test_chunked_then_plain(self):
        chunked = HttpResponse(status=200, body=b"chunky")
        chunked.trailers.set("X", "1")
        plain = HttpResponse(status=200, body=b"plain")
        reader = stream(chunked.serialize() + plain.serialize())
        assert read_response(reader).body == b"chunky"
        assert read_response(reader).body == b"plain"

    def test_two_requests_back_to_back(self):
        raw = (HttpRequest("GET", "/a").serialize()
               + HttpRequest("GET", "/b").serialize())
        reader = stream(raw)
        assert read_request(reader).target == "/a"
        assert read_request(reader).target == "/b"
