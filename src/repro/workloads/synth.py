"""Synthetic log generation with presets mirroring the paper's logs.

:func:`generate_server_log` produces a server access log for one synthetic
site; :func:`generate_client_log` produces a client/proxy log spanning many
sites.  The named presets are scaled-down versions of the logs in Tables 2
and 3 — same structural shape (resource counts, requests per source,
popularity skew, session burstiness), smaller absolute request counts so
that the full benchmark suite runs in minutes on a laptop.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..traces.records import LogRecord, Trace
from .modifications import ModificationConfig, ModificationProcess
from .sessions import SessionConfig, SessionGenerator
from .sitegen import SiteConfig, SyntheticSite, generate_site
from .zipf import ZipfSampler

__all__ = [
    "ServerLogConfig",
    "ClientLogConfig",
    "generate_server_log",
    "generate_client_log",
    "server_log_preset",
    "client_log_preset",
    "SERVER_PRESETS",
    "CLIENT_PRESETS",
]


@dataclass(frozen=True, slots=True)
class ServerLogConfig:
    """Everything needed to synthesize one server access log."""

    site: SiteConfig = SiteConfig()
    sessions: SessionConfig = SessionConfig()
    source_count: int = 300
    session_count: int = 2_000
    duration_days: float = 7.0
    source_zipf_alpha: float = 0.8
    method: str = "GET"
    modifications: ModificationConfig = ModificationConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.source_count < 1 or self.session_count < 1:
            raise ValueError("source_count and session_count must be >= 1")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")


@dataclass(frozen=True, slots=True)
class ClientLogConfig:
    """Everything needed to synthesize a client log across many sites."""

    site_count: int = 40
    site_template: SiteConfig = SiteConfig(page_count=60, directory_count=8)
    sessions: SessionConfig = SessionConfig()
    source_count: int = 50
    session_count: int = 1_500
    duration_days: float = 7.0
    site_zipf_alpha: float = 1.0
    not_modified_fraction: float = 0.17
    seed: int = 0

    def __post_init__(self) -> None:
        if self.site_count < 1:
            raise ValueError("site_count must be >= 1")
        if not 0.0 <= self.not_modified_fraction <= 1.0:
            raise ValueError("not_modified_fraction must be in [0, 1]")


def _heavy_tailed_sources(rng: random.Random, count: int, alpha: float) -> ZipfSampler:
    """Sampler assigning sessions to sources with Zipf-skewed activity."""
    sources = [f"10.{i // 65536 % 256}.{i // 256 % 256}.{i % 256}" for i in range(count)]
    rng.shuffle(sources)
    return ZipfSampler(sources, alpha=alpha)


def generate_server_log(config: ServerLogConfig) -> tuple[Trace, SyntheticSite]:
    """Generate a server access log plus the site it was served from.

    Each session is assigned a Zipf-weighted source (10% of sources end up
    issuing over half the requests, as in Appendix A) and a uniform start
    time within the horizon.  Last-Modified fields come from the site's
    modification process, so coherency experiments can run on the result.
    """
    rng = random.Random(config.seed)
    site = generate_site(replace(config.site, seed=config.site.seed ^ config.seed))
    generator = SessionGenerator(site, config.sessions)
    source_sampler = _heavy_tailed_sources(rng, config.source_count, config.source_zipf_alpha)

    duration = config.duration_days * 86400.0
    changes = ModificationProcess(0.0, duration, config.modifications)

    records: list[LogRecord] = []
    for _ in range(config.session_count):
        source = source_sampler.sample(rng)
        start = rng.random() * duration
        for event in generator.generate_session(rng, start):
            if event.timestamp > duration:
                continue
            resource = site.resources[event.url]
            records.append(
                LogRecord(
                    timestamp=event.timestamp,
                    source=source,
                    url=event.url,
                    method=config.method,
                    status=200,
                    size=resource.size,
                    last_modified=changes.last_modified(event.url, event.timestamp),
                )
            )
    return Trace(records), site


def generate_client_log(config: ClientLogConfig) -> tuple[Trace, dict[str, SyntheticSite]]:
    """Generate a client log spanning ``site_count`` synthetic sites.

    Sources pick a site Zipf-style per session, then browse it; a fraction
    of repeat requests are marked 304 Not Modified to match the validation
    traffic the paper reports for the Digital and AT&T logs.
    """
    rng = random.Random(config.seed)
    sites: dict[str, SyntheticSite] = {}
    generators: list[SessionGenerator] = []
    for index in range(config.site_count):
        site_config = replace(
            config.site_template,
            host=f"www.site{index}.example",
            seed=config.site_template.seed ^ (config.seed + index * 7919),
        )
        site = generate_site(site_config)
        sites[site.host] = site
        generators.append(SessionGenerator(site, config.sessions))

    site_sampler = ZipfSampler(generators, alpha=config.site_zipf_alpha)
    source_sampler = _heavy_tailed_sources(rng, config.source_count, 0.8)
    duration = config.duration_days * 86400.0

    records: list[LogRecord] = []
    repeat_indexes: list[int] = []
    seen_urls: set[str] = set()
    for _ in range(config.session_count):
        generator = site_sampler.sample(rng)
        source = source_sampler.sample(rng)
        start = rng.random() * duration
        for event in generator.generate_session(rng, start):
            if event.timestamp > duration:
                continue
            resource = generator.site.resources[event.url]
            # A request for a URL the (shared) proxy has seen before is a
            # candidate validation: the proxy holds a copy and asks the
            # server whether it changed.
            if event.url in seen_urls:
                repeat_indexes.append(len(records))
            seen_urls.add(event.url)
            records.append(
                LogRecord(
                    timestamp=event.timestamp,
                    source=source,
                    url=event.url,
                    method="GET",
                    status=200,
                    size=resource.size,
                )
            )

    # Mark validations so 304s form the configured fraction of *all*
    # requests (Table 2's definition), drawn from the repeat candidates.
    target = int(config.not_modified_fraction * len(records))
    rng.shuffle(repeat_indexes)
    for index in repeat_indexes[:target]:
        original = records[index]
        records[index] = LogRecord(
            timestamp=original.timestamp,
            source=original.source,
            url=original.url,
            method="GET",
            status=304,
            size=0,
        )
    return Trace(records), sites


# Scaled-down presets named after the paper's logs (Tables 2 and 3).  The
# request volumes are roughly 1-2% of the originals; resource counts and
# requests-per-source ratios track the originals' relative ordering
# (Marimba tiny, AIUSA/Apache small, Sun much larger and busier).
SERVER_PRESETS: dict[str, ServerLogConfig] = {
    "aiusa": ServerLogConfig(
        site=SiteConfig(host="www.aiusa.example", page_count=260,
                        directory_count=24, mean_images_per_page=2.5, seed=11),
        source_count=400,
        session_count=2_500,
        duration_days=28.0,
        seed=101,
    ),
    "apache": ServerLogConfig(
        site=SiteConfig(host="www.apache.example", page_count=190,
                        directory_count=16, mean_images_per_page=2.0, seed=13),
        source_count=2_000,
        session_count=9_000,
        duration_days=49.0,
        seed=103,
    ),
    "marimba": ServerLogConfig(
        site=SiteConfig(host="www.marimba.example", page_count=30,
                        directory_count=4, mean_images_per_page=0.6, seed=17),
        sessions=SessionConfig(mean_pages_per_session=1.5,
                               follow_link_probability=0.2,
                               image_fetch_probability=0.3),
        source_count=1_500,
        session_count=5_000,
        duration_days=21.0,
        method="POST",
        seed=107,
    ),
    "sun": ServerLogConfig(
        site=SiteConfig(host="www.sun.example", page_count=800,
                        directory_count=60, mean_images_per_page=3.5, seed=19),
        source_count=1_200,
        session_count=14_000,
        duration_days=9.0,
        source_zipf_alpha=1.0,
        seed=109,
    ),
}

CLIENT_PRESETS: dict[str, ClientLogConfig] = {
    # Client logs span many servers with a long tail of rarely visited
    # sites and deep directory trees: that tail is what makes Figure 1's
    # seen-before fraction decay with prefix depth.
    # Calibrated against Figure 1(a): prefix seen-before decays
    # 98.5% -> ~52-62% from level 0 to level 4, with medians growing with
    # depth, once the level-k rows cover URLs of depth >= k.
    "att_client": ClientLogConfig(
        site_count=400,
        site_template=SiteConfig(page_count=220, directory_count=120, max_depth=5,
                                 shared_image_dir_fraction=0.85, image_sharing=0.5,
                                 link_locality=0.2),
        sessions=SessionConfig(entry_zipf_alpha=0.8, follow_link_probability=0.5,
                               image_fetch_probability=0.7),
        site_zipf_alpha=0.5,
        source_count=80,
        session_count=4_000,
        duration_days=18.0,
        not_modified_fraction=0.187,
        seed=211,
    ),
    "digital_client": ClientLogConfig(
        site_count=550,
        site_template=SiteConfig(page_count=180, directory_count=100, max_depth=5,
                                 shared_image_dir_fraction=0.85, image_sharing=0.5,
                                 link_locality=0.2),
        sessions=SessionConfig(entry_zipf_alpha=0.8, follow_link_probability=0.5,
                               image_fetch_probability=0.7),
        site_zipf_alpha=0.5,
        source_count=160,
        session_count=7_000,
        duration_days=7.0,
        not_modified_fraction=0.158,
        seed=223,
    ),
}


def server_log_preset(name: str, scale: float = 1.0, seed: int | None = None) -> tuple[Trace, SyntheticSite]:
    """Generate a named server-log preset, optionally rescaled.

    ``scale`` multiplies the session count (0.1 gives a quick smoke-test
    log); ``seed`` overrides the preset seed for independent replicas.
    """
    config = SERVER_PRESETS.get(name)
    if config is None:
        raise KeyError(f"unknown server preset {name!r}; have {sorted(SERVER_PRESETS)}")
    if scale != 1.0:
        config = replace(config, session_count=max(1, int(config.session_count * scale)))
    if seed is not None:
        config = replace(config, seed=seed)
    return generate_server_log(config)


def client_log_preset(name: str, scale: float = 1.0, seed: int | None = None) -> tuple[Trace, dict[str, SyntheticSite]]:
    """Generate a named client-log preset, optionally rescaled."""
    config = CLIENT_PRESETS.get(name)
    if config is None:
        raise KeyError(f"unknown client preset {name!r}; have {sorted(CLIENT_PRESETS)}")
    if scale != 1.0:
        config = replace(config, session_count=max(1, int(config.session_count * scale)))
    if seed is not None:
        config = replace(config, seed=seed)
    return generate_client_log(config)
