"""Multi-tenant internet-scale workload generation.

The single-site generators in :mod:`repro.workloads.synth` materialize a
whole log as a list, which caps them at laptop-memory scales.  This module
generates the *aggregate request stream a shared piggyback proxy would
see* — hundreds of origin servers, each with its own synthetic site, and a
client population in the millions — as a lazily-evaluated, strictly
time-ordered iterator of :class:`~repro.traces.records.LogRecord`.  It
never holds more than the in-flight sessions, so a 10M-record trace costs
the same resident memory as a 10k-record one; pair it with
:class:`~repro.traces.chunked.ChunkWriter` (see :func:`write_internet_trace`)
to compile straight to the on-disk chunk format.

Traffic structure, all seeded and reproducible:

* **session arrivals** follow a nonhomogeneous Poisson process (thinning
  against the peak rate) with a diurnal sinusoid — nights are quiet, the
  daily peak is ``1 + diurnal_amplitude`` times the base rate;
* **flash crowds**: square rate pulses pinned to one origin each, arriving
  at seeded exponential intervals — during a pulse the excess sessions all
  land on the flash origin, the paper's "popular resource suddenly
  everywhere" regime;
* **origins** are chosen Zipf-style (a few giants, a long tail); each
  origin's :class:`~repro.workloads.sitegen.SyntheticSite` is derived
  deterministically from the master seed and built lazily on first hit;
* **clients** are drawn from a Zipf population by rank via
  :func:`~repro.workloads.zipf.zipf_rank` — O(1) memory regardless of
  population size, so "millions of clients" is just an integer here;
* **bots** replace a configured fraction of sessions: a small pool of
  crawlers that sweep a site's pages in deterministic popularity order at
  a fixed gap, without fetching embedded images — the anti-locality mix
  that stresses volume construction.

Requests carry deterministic per-resource Last-Modified values (a CRC of
the URL folded into the first day) and an optional If-Modified-Since mix
(``status 304, size 0``) so client-log characterization has something to
measure.
"""

from __future__ import annotations

import math
import random
import zlib
from collections.abc import Iterator
from dataclasses import dataclass, field, replace
from heapq import heappop, heappush

from ..traces.intern import DEFAULT_CHUNK_RECORDS
from ..traces.records import LogRecord
from .sessions import SessionConfig, SessionGenerator
from .sitegen import SiteConfig, SyntheticSite, generate_site
from .zipf import ZipfSampler, zipf_rank

__all__ = ["InternetConfig", "generate_internet_stream", "write_internet_trace"]


@dataclass(frozen=True, slots=True)
class InternetConfig:
    """Shape of one internet-scale aggregate trace.

    ``record_count`` is exact: the stream yields precisely that many
    records and stops (sessions straddling the cut are truncated).  The
    wall-clock span of the trace follows from the arrival rate — at the
    defaults roughly 20 records/session * 0.25 sessions/s ≈ 5 records/s,
    so 1M records cover about two diurnal cycles.
    """

    record_count: int = 1_000_000
    origin_count: int = 200
    client_count: int = 2_000_000
    sessions_per_second: float = 0.25
    diurnal_amplitude: float = 0.6
    diurnal_period: float = 86_400.0
    flash_mean_interval: float = 43_200.0
    flash_duration: float = 1_800.0
    flash_intensity: float = 15.0
    bot_fraction: float = 0.05
    bot_pool_size: int = 64
    bot_pages_per_crawl: int = 40
    bot_request_gap: float = 0.5
    not_modified_fraction: float = 0.08
    origin_zipf_alpha: float = 1.0
    client_zipf_alpha: float = 1.2
    site_template: SiteConfig = field(
        default_factory=lambda: SiteConfig(page_count=120, directory_count=12)
    )
    sessions: SessionConfig = field(default_factory=SessionConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.record_count < 1:
            raise ValueError("record_count must be >= 1")
        if self.origin_count < 1 or self.client_count < 1:
            raise ValueError("origin_count and client_count must be >= 1")
        if self.sessions_per_second <= 0:
            raise ValueError("sessions_per_second must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.diurnal_period <= 0 or self.flash_mean_interval <= 0:
            raise ValueError("periods must be positive")
        if self.flash_duration <= 0 or self.flash_intensity < 0:
            raise ValueError("flash_duration must be positive, intensity >= 0")
        if not 0.0 <= self.bot_fraction <= 1.0:
            raise ValueError("bot_fraction must be in [0, 1]")
        if self.bot_pool_size < 1 or self.bot_pages_per_crawl < 1:
            raise ValueError("bot pool and crawl length must be >= 1")
        if self.bot_request_gap <= 0:
            raise ValueError("bot_request_gap must be positive")
        if not 0.0 <= self.not_modified_fraction <= 1.0:
            raise ValueError("not_modified_fraction must be in [0, 1]")


def _client_address(rank: int) -> str:
    """Stable dotted-quad for a 1-based client rank (up to ~4.2B clients)."""
    value = rank - 1
    return (
        f"{(value >> 24) & 255}.{(value >> 16) & 255}."
        f"{(value >> 8) & 255}.{value & 255}"
    )


def _resource_mtime(url: str) -> float:
    """Deterministic per-resource Last-Modified inside the first day.

    A full modification process (see
    :mod:`repro.workloads.modifications`) would need per-resource state
    for every resource of every origin; coherency is not what this
    generator stresses, so a URL-hashed constant keeps the field populated
    at zero memory.
    """
    return float(zlib.crc32(url.encode("utf-8")) % 86_400)


class _Origin:
    """One origin's lazily-built site, session generator, and crawl order."""

    __slots__ = ("site", "humans", "crawl_order")

    def __init__(self, site: SyntheticSite, sessions: SessionConfig):
        self.site = site
        self.humans = SessionGenerator(site, sessions)
        self.crawl_order = site.pages_by_popularity


class _InternetProcess:
    """All mutable generation state; one instance per stream."""

    def __init__(self, config: InternetConfig):
        self.config = config
        # Independent seeded streams per concern: session internals draw a
        # variable number of samples, so giving arrivals/flash/clients
        # their own RNGs keeps each process's sequence stable under
        # parameter tweaks elsewhere.
        base = config.seed
        self.rng_arrival = random.Random(f"{base}:arrival")
        self.rng_flash = random.Random(f"{base}:flash")
        self.rng_client = random.Random(f"{base}:client")
        self.rng_session = random.Random(f"{base}:session")
        self.origin_sampler = ZipfSampler(
            list(range(config.origin_count)), alpha=config.origin_zipf_alpha
        )
        self.origins: dict[int, _Origin] = {}
        self.peak_rate = config.sessions_per_second * (
            1.0 + config.diurnal_amplitude + config.flash_intensity
        )
        self.flash_until = 0.0
        self.flash_origin = 0
        self.next_flash = self.rng_flash.expovariate(1.0 / config.flash_mean_interval)

    def origin(self, index: int) -> _Origin:
        origin = self.origins.get(index)
        if origin is None:
            config = self.config
            site_config = replace(
                config.site_template,
                host=f"www.origin{index:04d}.example",
                seed=(config.seed * 1_000_003 + index) & 0x7FFFFFFF,
            )
            origin = _Origin(generate_site(site_config), config.sessions)
            self.origins[index] = origin
        return origin

    def _rate_parts(self, now: float) -> tuple[float, float]:
        """(background rate, flash excess rate) at time *now*.

        Advances the flash schedule: pulses arrive at seeded exponential
        intervals, never overlapping (the next interval is measured from
        the end of the current pulse).
        """
        config = self.config
        while now >= self.next_flash:
            self.flash_until = self.next_flash + config.flash_duration
            self.flash_origin = self.origin_sampler.sample(self.rng_flash)
            self.next_flash = self.flash_until + self.rng_flash.expovariate(
                1.0 / config.flash_mean_interval
            )
        base = config.sessions_per_second * (
            1.0
            + config.diurnal_amplitude
            * math.sin(2.0 * math.pi * now / config.diurnal_period)
        )
        flash = (
            config.sessions_per_second * config.flash_intensity
            if now < self.flash_until
            else 0.0
        )
        return base, flash

    def arrivals(self) -> Iterator[tuple[float, int]]:
        """Endless (start_time, origin_index) session arrivals, time-ordered.

        Thinning: candidate arrivals come from a homogeneous Poisson
        process at the peak rate; each is accepted with probability
        ``rate(t) / peak``.  Accepted arrivals due to flash excess land on
        the flash origin, the rest sample the Zipf origin distribution.
        """
        rng = self.rng_arrival
        peak = self.peak_rate
        now = 0.0
        while True:
            now += rng.expovariate(peak)
            base, flash = self._rate_parts(now)
            point = rng.random() * peak
            if point < base:
                yield now, self.origin_sampler.sample(rng)
            elif point < base + flash:
                yield now, self.flash_origin

    def session_events(
        self, start: float, origin_index: int
    ) -> list[tuple[float, str, str, int, int, float]]:
        """One session's (timestamp, source, url, status, size, mtime) events."""
        config = self.config
        origin = self.origin(origin_index)
        rng = self.rng_session
        events: list[tuple[float, str, str, int, int, float]] = []
        if self.rng_client.random() < config.bot_fraction:
            bot = self.rng_client.randrange(config.bot_pool_size)
            source = f"bot-{bot:03d}.crawler.example"
            pages = origin.crawl_order
            offset = rng.randrange(len(pages))
            length = min(config.bot_pages_per_crawl, len(pages))
            for step in range(length):
                url = pages[(offset + step) % len(pages)]
                resource = origin.site.resources[url]
                events.append(
                    (
                        start + step * config.bot_request_gap,
                        source,
                        url,
                        200,
                        resource.size,
                        _resource_mtime(url),
                    )
                )
            return events
        rank = zipf_rank(self.rng_client, config.client_count, config.client_zipf_alpha)
        source = _client_address(rank)
        for event in origin.humans.generate_session(rng, start):
            resource = origin.site.resources[event.url]
            if rng.random() < config.not_modified_fraction:
                status, size = 304, 0
            else:
                status, size = 200, resource.size
            events.append(
                (
                    event.timestamp,
                    source,
                    event.url,
                    status,
                    size,
                    _resource_mtime(event.url),
                )
            )
        return events


def generate_internet_stream(config: InternetConfig) -> Iterator[LogRecord]:
    """Yield exactly ``config.record_count`` records in global time order.

    Sessions overlap in time, so events are merged through a heap keyed by
    ``(timestamp, sequence)``; the heap only ever holds in-flight sessions
    (arrival rate x session span x events per session — thousands of
    entries, independent of ``record_count``).  The stream is fully
    deterministic in ``config`` and safe to restart: a fresh call replays
    the identical sequence.
    """
    process = _InternetProcess(config)
    pending: list[tuple[float, int, str, str, int, int, float]] = []
    sequence = 0
    remaining = config.record_count

    def pop_record() -> LogRecord:
        timestamp, _, source, url, status, size, mtime = heappop(pending)
        return LogRecord(
            timestamp=timestamp,
            source=source,
            url=url,
            method="GET",
            status=status,
            size=size,
            last_modified=mtime,
        )

    for start, origin_index in process.arrivals():
        # Everything timestamped before this arrival is final: no later
        # session can emit earlier than its own start time.
        while pending and pending[0][0] <= start:
            yield pop_record()
            remaining -= 1
            if remaining == 0:
                return
        for timestamp, source, url, status, size, mtime in process.session_events(
            start, origin_index
        ):
            heappush(pending, (timestamp, sequence, source, url, status, size, mtime))
            sequence += 1


def write_internet_trace(
    config: InternetConfig,
    path: str,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> tuple[int, int]:
    """Stream an internet-scale trace straight into a chunk file.

    Generation and compilation are fused: records flow from the session
    heap into the :class:`~repro.traces.chunked.ChunkWriter`'s current
    chunk and onto disk, so peak memory is the chunk size plus the symbol
    tables plus in-flight sessions.  Returns ``(record_count, chunk_count)``.
    """
    from ..traces.chunked import ChunkWriter

    with ChunkWriter(path, chunk_records=chunk_records) as writer:
        writer.extend(generate_internet_stream(config))
    return writer.context.record_count, writer.chunk_count
