"""Zipf-distributed sampling.

Web resource popularity is famously Zipf-like (Appendix A: ~85% of requests
target <10% of resources; 10% of clients issue >50% of requests).  This
module provides a small, seedable sampler used by the site and session
generators.  It deliberately avoids numpy so the core generators have no
hard dependency beyond the standard library.
"""

from __future__ import annotations

import bisect
import itertools
import math
import random
from collections.abc import Sequence
from typing import TypeVar

T = TypeVar("T")

__all__ = ["zipf_weights", "zipf_rank", "ZipfSampler"]


def zipf_weights(n: int, alpha: float = 1.0) -> list[float]:
    """Return unnormalized Zipf weights ``1/rank**alpha`` for *n* ranks."""
    if n < 1:
        raise ValueError("need at least one rank")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    return [1.0 / (rank ** alpha) for rank in range(1, n + 1)]


def zipf_rank(rng: random.Random, n: int, alpha: float = 1.0) -> int:
    """Draw a 1-based rank from Zipf(alpha) over ``{1, .., n}`` in O(1) memory.

    :class:`ZipfSampler` precomputes an O(n) cumulative table, which is
    fine for pages or origins but not for sampling from a population of
    millions of clients.  This is Hörmann & Derflinger's
    rejection-inversion method: invert the integral of the continuous
    envelope ``h(x) = x**-alpha``, round to the nearest integer, and
    accept/reject against the true mass — constant expected work and no
    table, for any *n*.  Deterministic given *rng*.
    """
    if n < 1:
        raise ValueError("need at least one rank")
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    if n == 1:
        return 1
    if alpha == 0.0:
        return 1 + min(int(rng.random() * n), n - 1)

    if alpha == 1.0:
        def h_integral(x: float) -> float:
            return math.log(x)

        def h_integral_inverse(x: float) -> float:
            return math.exp(x)
    else:
        one_minus = 1.0 - alpha

        def h_integral(x: float) -> float:
            return (x ** one_minus - 1.0) / one_minus

        def h_integral_inverse(x: float) -> float:
            return max(1.0 + one_minus * x, 0.0) ** (1.0 / one_minus)

    def h(x: float) -> float:
        return x ** -alpha

    h_x1 = h_integral(1.5) - 1.0
    h_n = h_integral(n + 0.5)
    s = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0))
    while True:
        u = h_n + rng.random() * (h_x1 - h_n)
        x = h_integral_inverse(u)
        k = int(x + 0.5)
        if k < 1:
            k = 1
        elif k > n:
            k = n
        if k - x <= s or u >= h_integral(k + 0.5) - h(k):
            return k


class ZipfSampler:
    """Sample items with Zipf(alpha) popularity over their given order.

    The first item in *items* is the most popular.  Sampling is O(log n)
    via binary search on the cumulative weight table.
    """

    def __init__(self, items: Sequence[T], alpha: float = 1.0):
        if not items:
            raise ValueError("cannot sample from an empty sequence")
        self._items: list[T] = list(items)
        weights = zipf_weights(len(self._items), alpha)
        self._cumulative: list[float] = list(itertools.accumulate(weights))
        self._total: float = self._cumulative[-1]
        self.alpha = alpha

    def __len__(self) -> int:
        return len(self._items)

    def sample(self, rng: random.Random) -> T:
        """Draw one item using *rng*."""
        point = rng.random() * self._total
        index = bisect.bisect_left(self._cumulative, point)
        if index >= len(self._items):
            index = len(self._items) - 1
        return self._items[index]

    def sample_many(self, rng: random.Random, count: int) -> list[T]:
        """Draw *count* items independently."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.sample(rng) for _ in range(count)]

    def probability_of_rank(self, rank: int) -> float:
        """Exact sampling probability of the item at 0-based *rank*."""
        if not 0 <= rank < len(self._items):
            raise IndexError("rank out of range")
        weight = 1.0 / ((rank + 1) ** self.alpha)
        return weight / self._total
