"""Resource modification processes.

Server logs carry no Last-Modified times (Appendix A), so coherency
experiments need a synthetic change process.  Each resource is assigned a
modification rate from a bimodal population — most resources change rarely,
a minority change often — calibrated so that roughly 15% of repeat accesses
observe a changed resource, matching the AT&T client-log observation.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

__all__ = ["ModificationConfig", "ModificationProcess"]


@dataclass(frozen=True, slots=True)
class ModificationConfig:
    """Population parameters for resource change behaviour."""

    fast_fraction: float = 0.10
    fast_mean_interval: float = 3_600.0
    slow_mean_interval: float = 30.0 * 86400.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.fast_fraction <= 1.0:
            raise ValueError("fast_fraction must be in [0, 1]")
        if self.fast_mean_interval <= 0 or self.slow_mean_interval <= 0:
            raise ValueError("mean intervals must be positive")


class ModificationProcess:
    """Poisson modification times for a set of resources over a horizon.

    Modification schedules are generated lazily per resource and cached, so
    a process over thousands of resources only pays for the resources a
    trace actually touches.
    """

    def __init__(
        self,
        start_time: float,
        end_time: float,
        config: ModificationConfig = ModificationConfig(),
    ):
        if end_time < start_time:
            raise ValueError("end_time must not precede start_time")
        self.start_time = start_time
        self.end_time = end_time
        self.config = config
        self._schedules: dict[str, list[float]] = {}

    def _schedule_for(self, url: str) -> list[float]:
        schedule = self._schedules.get(url)
        if schedule is not None:
            return schedule
        rng = random.Random((hash(url) & 0xFFFFFFFF) ^ self.config.seed)
        if rng.random() < self.config.fast_fraction:
            mean = self.config.fast_mean_interval
        else:
            mean = self.config.slow_mean_interval
        schedule = [self.start_time]
        now = self.start_time
        while True:
            now += rng.expovariate(1.0 / mean)
            if now > self.end_time:
                break
            schedule.append(now)
        self._schedules[url] = schedule
        return schedule

    def last_modified(self, url: str, at_time: float) -> float:
        """Last-Modified time of *url* as observed at *at_time*."""
        schedule = self._schedule_for(url)
        index = bisect.bisect_right(schedule, at_time) - 1
        if index < 0:
            return self.start_time
        return schedule[index]

    def modified_between(self, url: str, start: float, end: float) -> bool:
        """True if *url* changed in the half-open interval (start, end]."""
        return self.last_modified(url, end) > start

    def modification_count(self, url: str) -> int:
        """Number of modifications within the horizon (excluding creation)."""
        return len(self._schedule_for(url)) - 1
