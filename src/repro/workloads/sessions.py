"""Per-source browsing session model.

A session is the unit of temporal locality the paper's volumes exploit: a
client requests a page, its embedded images arrive within a few seconds,
and after a think time the client follows a link — usually within the same
directory.  The interarrival structure of Figure 1 and the implication
probabilities of Figure 5(b) both emerge from this process.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .sitegen import SyntheticSite
from .zipf import ZipfSampler

__all__ = ["SessionConfig", "SessionEvent", "SessionGenerator"]


@dataclass(frozen=True, slots=True)
class SessionConfig:
    """Behavioural knobs for one population of clients."""

    mean_pages_per_session: float = 5.0
    follow_link_probability: float = 0.75
    image_fetch_probability: float = 0.85
    mean_think_time: float = 25.0
    mean_image_gap: float = 0.4
    # Entry-page popularity: alpha ~1.6 yields the "~85% of requests to
    # <10% of resources" concentration of Appendix A once link-following
    # diffusion is accounted for.
    entry_zipf_alpha: float = 1.6

    def __post_init__(self) -> None:
        if self.mean_pages_per_session < 1:
            raise ValueError("sessions visit at least one page")
        if not 0.0 <= self.follow_link_probability <= 1.0:
            raise ValueError("follow_link_probability must be in [0, 1]")
        if not 0.0 <= self.image_fetch_probability <= 1.0:
            raise ValueError("image_fetch_probability must be in [0, 1]")
        if self.mean_think_time <= 0 or self.mean_image_gap <= 0:
            raise ValueError("think time and image gap must be positive")


@dataclass(frozen=True, slots=True)
class SessionEvent:
    """One request produced by a session, relative to the site."""

    timestamp: float
    url: str
    is_embedded: bool


class SessionGenerator:
    """Generate request streams for sessions over one synthetic site."""

    def __init__(self, site: SyntheticSite, config: SessionConfig = SessionConfig()):
        self.site = site
        self.config = config
        self._entry_sampler = ZipfSampler(
            site.pages_by_popularity, alpha=config.entry_zipf_alpha
        )

    def generate_session(self, rng: random.Random, start_time: float) -> list[SessionEvent]:
        """Produce the time-ordered events of one browsing session."""
        config = self.config
        events: list[SessionEvent] = []
        now = start_time
        page_url = self._entry_sampler.sample(rng)
        pages_left = 1 + _geometric(rng, config.mean_pages_per_session - 1)
        fetched_images: set[str] = set()  # browser cache within the session
        while pages_left > 0:
            pages_left -= 1
            events.append(SessionEvent(now, page_url, is_embedded=False))
            page = self.site.pages[page_url]
            image_time = now
            for image in page.embedded:
                if image in fetched_images:
                    continue  # the browser cached it earlier this session
                if rng.random() < config.image_fetch_probability:
                    image_time += rng.expovariate(1.0 / config.mean_image_gap)
                    events.append(SessionEvent(image_time, image, is_embedded=True))
                    fetched_images.add(image)
            if pages_left == 0:
                break
            now = max(now, image_time) + rng.expovariate(1.0 / config.mean_think_time)
            if page.links and rng.random() < config.follow_link_probability:
                page_url = rng.choice(page.links)
            else:
                page_url = self._entry_sampler.sample(rng)
        return events


def _geometric(rng: random.Random, mean: float) -> int:
    if mean <= 0:
        return 0
    success = 1.0 / (mean + 1.0)
    count = 0
    while rng.random() > success:
        count += 1
        if count > 1000:
            break
    return count
