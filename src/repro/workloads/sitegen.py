"""Synthetic Web site generation.

The original AIUSA/Apache/Marimba/Sun logs are unavailable, so experiments
run over synthetic sites whose *structure* matches what the paper's results
depend on: a directory tree of HTML pages, embedded images living beside
their page, and hyperlinks that mostly stay within a directory.  Directory
locality is what makes directory-based volumes work (Section 3.2), and
page->embedded-image implications are what probability-based volumes learn
(Section 3.3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .. import urls

__all__ = ["SiteConfig", "SyntheticResource", "SyntheticPage", "SyntheticSite", "generate_site"]


@dataclass(frozen=True, slots=True)
class SiteConfig:
    """Shape parameters for one synthetic site."""

    host: str = "www.example.org"
    page_count: int = 200
    directory_count: int = 20
    max_depth: int = 4
    mean_images_per_page: float = 3.0
    image_sharing: float = 0.3
    shared_image_dir_fraction: float = 0.0
    links_per_page: float = 3.0
    link_locality: float = 0.7
    mean_page_bytes: float = 6_000.0
    mean_image_bytes: float = 12_000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.page_count < 1:
            raise ValueError("page_count must be >= 1")
        if self.directory_count < 1:
            raise ValueError("directory_count must be >= 1")
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if not 0.0 <= self.link_locality <= 1.0:
            raise ValueError("link_locality must be in [0, 1]")
        if not 0.0 <= self.image_sharing <= 1.0:
            raise ValueError("image_sharing must be in [0, 1]")
        if not 0.0 <= self.shared_image_dir_fraction <= 1.0:
            raise ValueError("shared_image_dir_fraction must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class SyntheticResource:
    """One resource on the synthetic site."""

    url: str
    size: int
    content_type: str

    @property
    def directory(self) -> str:
        return self.url.rsplit("/", 1)[0] if "/" in self.url else self.url


@dataclass(frozen=True, slots=True)
class SyntheticPage:
    """An HTML page: its embedded images and outgoing links."""

    url: str
    embedded: tuple[str, ...] = field(default=())
    links: tuple[str, ...] = field(default=())


class SyntheticSite:
    """A generated site: resources, pages, and popularity ordering.

    ``pages_by_popularity`` lists page URLs most-popular-first; session
    generators draw entry pages Zipf-style from that order.
    """

    def __init__(
        self,
        host: str,
        resources: dict[str, SyntheticResource],
        pages: dict[str, SyntheticPage],
        pages_by_popularity: list[str],
    ):
        if not pages:
            raise ValueError("a site needs at least one page")
        self.host = host
        self.resources = resources
        self.pages = pages
        self.pages_by_popularity = pages_by_popularity

    def __repr__(self) -> str:
        return (
            f"SyntheticSite({self.host!r}, {len(self.pages)} pages, "
            f"{len(self.resources)} resources)"
        )

    @property
    def resource_count(self) -> int:
        return len(self.resources)

    def directories(self) -> set[str]:
        """Distinct level-1+ directory prefixes present on the site."""
        return {urls.directory_prefix(url, 99) for url in self.resources}

    def is_reachable(self, antecedent: str, consequent: str) -> bool:
        """True if *consequent* is directly linked from *antecedent*.

        A resource reaches its embedded images and HREF targets.  This is
        the reachability information Section 3.3.1 suggests using to limit
        pairwise counter creation (pass ``site.is_reachable`` as
        ``PairwiseConfig.pair_admitted``).
        """
        page = self.pages.get(antecedent)
        if page is None:
            return False
        return consequent in page.embedded or consequent in page.links


def _lognormal_size(rng: random.Random, mean: float) -> int:
    """Draw a resource size with a heavy-ish tail around *mean* bytes."""
    sigma = 1.0
    mu = max(mean, 1.0)
    value = rng.lognormvariate(0.0, sigma) * mu / 1.6487212707001282  # e^{sigma^2/2}
    return max(64, int(value))


def _build_directories(rng: random.Random, config: SiteConfig) -> list[str]:
    """Grow a random directory tree under the host, root included."""
    directories = [config.host]
    names = iter(range(10_000))
    while len(directories) < config.directory_count:
        parent = rng.choice(directories)
        depth = parent.count("/")
        if depth >= config.max_depth:
            continue
        directories.append(f"{parent}/d{next(names)}")
    return directories


def generate_site(config: SiteConfig) -> SyntheticSite:
    """Generate a deterministic synthetic site from *config*.

    Pages are spread over the directory tree; each page gets a geometric
    number of embedded images.  With probability ``image_sharing`` an image
    is reused from the page's directory (shared toolbars/logos produce the
    very popular images real logs show); otherwise a fresh image is created
    next to the page.  Links stay in-directory with probability
    ``link_locality`` and otherwise point at a uniformly random page.
    """
    rng = random.Random(config.seed)
    directories = _build_directories(rng, config)

    page_urls: list[str] = []
    pages_in_dir: dict[str, list[str]] = {d: [] for d in directories}
    resources: dict[str, SyntheticResource] = {}

    for index in range(config.page_count):
        directory = rng.choice(directories)
        url = f"{directory}/p{index}.html"
        page_urls.append(url)
        pages_in_dir[directory].append(url)
        resources[url] = SyntheticResource(
            url=url,
            size=_lognormal_size(rng, config.mean_page_bytes),
            content_type="text",
        )

    # Sites of the era often kept toolbars/logos in a shared /images
    # directory rather than beside each page; the split is configurable
    # because it shapes both Figure 1's depth decay (shared images map to
    # a shallow prefix) and directory-volume accuracy (local images share
    # the page's volume).
    shared_image_dir = f"{config.host}/images"
    images_in_dir: dict[str, list[str]] = {d: [] for d in directories}
    images_in_dir[shared_image_dir] = []
    embedded_of: dict[str, list[str]] = {}
    image_counter = 0
    for url in page_urls:
        page_directory = url.rsplit("/", 1)[0]
        count = _geometric(rng, config.mean_images_per_page)
        embedded: list[str] = []
        for _ in range(count):
            if rng.random() < config.shared_image_dir_fraction:
                directory = shared_image_dir
            else:
                directory = page_directory
            pool = images_in_dir[directory]
            if pool and rng.random() < config.image_sharing:
                image = rng.choice(pool)
            else:
                image = f"{directory}/img{image_counter}.gif"
                image_counter += 1
                pool.append(image)
                resources[image] = SyntheticResource(
                    url=image,
                    size=_lognormal_size(rng, config.mean_image_bytes),
                    content_type="image",
                )
            if image not in embedded:
                embedded.append(image)
        embedded_of[url] = embedded

    pages: dict[str, SyntheticPage] = {}
    for url in page_urls:
        directory = url.rsplit("/", 1)[0]
        count = _geometric(rng, config.links_per_page)
        links: list[str] = []
        for _ in range(count):
            local = pages_in_dir[directory]
            if len(local) > 1 and rng.random() < config.link_locality:
                target = rng.choice(local)
            else:
                target = rng.choice(page_urls)
            if target != url and target not in links:
                links.append(target)
        pages[url] = SyntheticPage(
            url=url, embedded=tuple(embedded_of[url]), links=tuple(links)
        )

    popularity = list(page_urls)
    rng.shuffle(popularity)
    return SyntheticSite(
        host=config.host,
        resources=resources,
        pages=pages,
        pages_by_popularity=popularity,
    )


def _geometric(rng: random.Random, mean: float) -> int:
    """Geometric draw with the given mean (0 allowed when mean is 0)."""
    if mean <= 0:
        return 0
    success = 1.0 / (mean + 1.0)
    count = 0
    while rng.random() > success:
        count += 1
        if count > 1000:  # pathological mean guard
            break
    return count
