"""Synthetic workload generation calibrated to the paper's log shapes."""

from .zipf import ZipfSampler, zipf_rank, zipf_weights
from .internet import InternetConfig, generate_internet_stream, write_internet_trace
from .sitegen import SiteConfig, SyntheticPage, SyntheticResource, SyntheticSite, generate_site
from .sessions import SessionConfig, SessionEvent, SessionGenerator
from .modifications import ModificationConfig, ModificationProcess
from .synth import (
    CLIENT_PRESETS,
    SERVER_PRESETS,
    ClientLogConfig,
    ServerLogConfig,
    client_log_preset,
    generate_client_log,
    generate_server_log,
    server_log_preset,
)

__all__ = [
    "ZipfSampler",
    "zipf_rank",
    "zipf_weights",
    "InternetConfig",
    "generate_internet_stream",
    "write_internet_trace",
    "SiteConfig",
    "SyntheticPage",
    "SyntheticResource",
    "SyntheticSite",
    "generate_site",
    "SessionConfig",
    "SessionEvent",
    "SessionGenerator",
    "ModificationConfig",
    "ModificationProcess",
    "ServerLogConfig",
    "ClientLogConfig",
    "generate_server_log",
    "generate_client_log",
    "server_log_preset",
    "client_log_preset",
    "SERVER_PRESETS",
    "CLIENT_PRESETS",
]
