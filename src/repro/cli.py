"""Command-line interface: generate logs and run the paper's experiments.

::

    repro-web generate --preset sun --out sun.log
    repro-web stats --log sun.log --kind server
    repro-web trace gen --out net.rpchunk --records 1000000
    repro-web trace stats net.rpchunk --kind client
    repro-web fig1 --preset att_client
    repro-web fig2 --preset aiusa
    repro-web fig6 --preset sun
    repro-web table1
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .analysis import experiments
from .traces.clean import CleaningConfig, clean_trace
from .traces.common_log import read_log, write_log
from .traces.records import Trace
from .traces.stats import characterize_client_log, characterize_server_log
from .workloads.synth import (
    CLIENT_PRESETS,
    SERVER_PRESETS,
    client_log_preset,
    server_log_preset,
)

__all__ = ["main", "build_parser"]


def _load_trace(args: argparse.Namespace) -> Trace:
    """Resolve a trace from --log or --preset, cleaned for analysis."""
    if getattr(args, "log", None):
        trace = read_log(args.log)
    elif args.preset in SERVER_PRESETS:
        trace, _ = server_log_preset(args.preset, scale=args.scale)
    elif args.preset in CLIENT_PRESETS:
        trace, _ = client_log_preset(args.preset, scale=args.scale)
    else:
        raise SystemExit(f"unknown preset {args.preset!r}")
    cleaned, _ = clean_trace(trace, CleaningConfig(min_accesses=args.min_accesses))
    return cleaned


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.preset in SERVER_PRESETS:
        trace, _ = server_log_preset(args.preset, scale=args.scale)
    elif args.preset in CLIENT_PRESETS:
        trace, _ = client_log_preset(args.preset, scale=args.scale)
    else:
        raise SystemExit(f"unknown preset {args.preset!r}")
    write_log(trace, args.out)
    print(f"wrote {len(trace)} records to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.snapshot is not None or args.url is not None:
        return _cmd_stats_telemetry(args)
    trace = _load_trace(args)
    if args.kind == "server":
        stats = characterize_server_log(trace)
        print(f"days                 {stats.days:.1f}")
        print(f"requests             {stats.requests}")
        print(f"clients              {stats.clients}")
        print(f"requests/source      {stats.requests_per_source:.2f}")
        print(f"unique resources     {stats.unique_resources}")
        print(f"top-10% req share    {stats.top_decile_request_share:.1%}")
        print(f"mean response bytes  {stats.mean_response_size:.0f}")
    else:
        stats = characterize_client_log(trace)
        print(f"days                 {stats.days:.1f}")
        print(f"requests             {stats.requests}")
        print(f"distinct servers     {stats.distinct_servers}")
        print(f"unique resources     {stats.unique_resources}")
        print(f"304 fraction         {stats.not_modified_fraction:.1%}")
    return 0


def _cmd_stats_telemetry(args: argparse.Namespace) -> int:
    """Render a telemetry snapshot (file or live endpoint) as tables."""
    from .telemetry.report import (
        instrument_names,
        load_snapshot_file,
        load_snapshot_url,
        missing_families,
        render_report,
    )

    try:
        if args.snapshot is not None:
            snapshot, series = load_snapshot_file(args.snapshot)
        else:
            snapshot, series = load_snapshot_url(args.url)
    except (OSError, ValueError) as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    print(render_report(snapshot, series), end="")
    if args.require:
        missing = missing_families(instrument_names(snapshot, series), args.require)
        if missing:
            print(
                "stats: missing required metric families: " + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
    return 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    """Generate an internet-scale trace straight into a chunk file."""
    from .workloads.internet import InternetConfig, write_internet_trace

    config = InternetConfig(
        record_count=args.records,
        origin_count=args.origins,
        client_count=args.clients,
        sessions_per_second=args.rate,
        bot_fraction=args.bot_fraction,
        seed=args.seed,
    )
    records, chunks = write_internet_trace(config, args.out, chunk_records=args.chunk_records)
    import os

    print(
        f"wrote {records} records in {chunks} chunks to {args.out} "
        f"({os.path.getsize(args.out)} bytes)"
    )
    return 0


def _cmd_trace_stats(args: argparse.Namespace) -> int:
    """Characterize an on-disk chunk file in one streaming pass.

    Unlike ``stats`` (which cleans its input), this reports the raw trace:
    the chunk file is the artifact under test, byte for byte.
    """
    from .traces.chunked import ChunkFileError, open_chunked_trace

    try:
        trace = open_chunked_trace(args.chunks)
    except (OSError, ChunkFileError) as exc:
        print(f"trace stats: {exc}", file=sys.stderr)
        return 2
    if args.kind == "server":
        stats = characterize_server_log(trace)
        print(f"days                 {stats.days:.1f}")
        print(f"requests             {stats.requests}")
        print(f"clients              {stats.clients}")
        print(f"requests/source      {stats.requests_per_source:.2f}")
        print(f"unique resources     {stats.unique_resources}")
        print(f"top-10% req share    {stats.top_decile_request_share:.1%}")
        print(f"mean response bytes  {stats.mean_response_size:.0f}")
        print(f"median response bytes {stats.median_response_size:.0f}")
    else:
        stats = characterize_client_log(trace)
        print(f"days                 {stats.days:.1f}")
        print(f"requests             {stats.requests}")
        print(f"distinct servers     {stats.distinct_servers}")
        print(f"unique resources     {stats.unique_resources}")
        print(f"304 fraction         {stats.not_modified_fraction:.1%}")
        print(f"mean response bytes  {stats.mean_response_size:.0f}")
    return 0


def _cmd_trace_verify(args: argparse.Namespace) -> int:
    """Walk every frame of a chunk file, checking CRCs and structure."""
    from .traces.chunked import ChunkFileError, verify_chunk_file

    try:
        info = verify_chunk_file(args.chunks)
    except (OSError, ChunkFileError) as exc:
        print(f"trace verify: {exc}", file=sys.stderr)
        return 1
    print(
        f"{args.chunks}: ok — {info['records']} records, {info['chunks']} chunks, "
        f"{info['urls']} urls, {info['sources']} sources"
    )
    return 0


def _cmd_fig1(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    rows = experiments.fig1_interarrival(trace)
    print("level  %seen-before  median-interarrival")
    for row in rows:
        print(f"{row.level:>5}  {row.seen_before_fraction:>11.1%}  {row.median_interarrival:>12.1f}s")
    if args.chart:
        from .analysis.ascii_chart import bar_chart

        print("\n% of requests whose prefix was seen before, by level:")
        for line in bar_chart(
            [(f"level {r.level}", 100.0 * r.seen_before_fraction) for r in rows],
            max_value=100.0,
        ):
            print(line)
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    print("level  filter  avg-piggyback  predicted  updated")
    for point in experiments.fig2_fig3_directory(trace):
        print(
            f"{point.level:>5}  {point.access_filter:>6}  {point.mean_piggyback_size:>13.1f}"
            f"  {point.fraction_predicted:>9.1%}  {point.update_fraction:>7.1%}"
        )
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    print("level  filter  min-gap  avg-piggyback  predicted")
    for point in experiments.fig4_rpv(trace):
        print(
            f"{point.level:>5}  {point.access_filter:>6}  {point.min_gap:>7.0f}"
            f"  {point.mean_piggyback_size:>13.1f}  {point.fraction_predicted:>9.1%}"
        )
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    trace = _load_trace(args)
    points = experiments.fig6_fig7_fig8_probability(trace)
    print("variant         p_t   avg-size  predicted  true-pred")
    for point in points:
        print(
            f"{point.variant:<14} {point.probability_threshold:>4.2f}"
            f"  {point.mean_piggyback_size:>8.2f}  {point.fraction_predicted:>9.1%}"
            f"  {point.true_prediction_fraction:>9.1%}"
        )
    if args.chart:
        from .analysis.ascii_chart import scatter_plot

        series: dict[str, list[tuple[float, float]]] = {}
        for point in points:
            series.setdefault(point.variant, []).append(
                (point.mean_piggyback_size, 100.0 * point.fraction_predicted)
            )
        print("\nFigure 6: fraction predicted (%) vs avg piggyback size:")
        for line in scatter_plot(series, x_label="avg piggyback size",
                                 y_label="% predicted"):
            print(line)
    return 0


def _cmd_roc(args: argparse.Namespace) -> int:
    from .analysis.rate_of_change import estimate_delta_savings, rate_of_change

    if getattr(args, "log", None):
        raise SystemExit("roc needs Last-Modified values; use a --preset")
    trace, _ = server_log_preset(args.preset, scale=args.scale)
    stats = rate_of_change(trace)
    savings = estimate_delta_savings(trace, max_transfers=300)
    print(f"repeat accesses        {stats.repeat_accesses}")
    print(f"changed fraction       {stats.changed_fraction:.1%}")
    for content_type in sorted(stats.by_content_type):
        print(f"  {content_type:<8}             "
              f"{stats.changed_fraction_for(content_type):.1%}")
    if savings.changed_transfers:
        print(f"delta savings          {savings.savings_fraction:.1%} "
              f"({savings.changed_transfers} changed transfers sampled)")
    return 0


def _cmd_build_volumes(args: argparse.Namespace) -> int:
    from .analysis.pairwise import VolumeBuildConfig, build_volumes_from_trace
    from .volumes.persistence import save_volumes

    trace = _load_trace(args)
    config = VolumeBuildConfig(
        probability_threshold=args.threshold,
        window=args.window,
        effectiveness_threshold=args.effectiveness,
        combine_level=args.combine_level,
    )
    volumes = build_volumes_from_trace(trace, config)
    save_volumes(
        volumes,
        args.out,
        probability_threshold=args.threshold,
        window=args.window,
        effectiveness_threshold=args.effectiveness,
        combine_level=args.combine_level,
        source_log=args.log or args.preset,
    )
    print(f"built {len(volumes)} volumes "
          f"({volumes.implication_count()} implications) -> {args.out}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .analysis.simulator import EndToEndSimulator, SimulationConfig
    from .proxy.prefetch import PrefetchPolicy
    from .proxy.proxy import ProxyConfig
    from .volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
    from .workloads.synth import SERVER_PRESETS

    if args.preset not in SERVER_PRESETS:
        raise SystemExit(f"simulate needs a server preset, got {args.preset!r}")
    trace, site = server_log_preset(args.preset, scale=args.scale)
    cleaned, _ = clean_trace(trace, CleaningConfig(min_accesses=args.min_accesses))
    config = SimulationConfig(
        proxy=ProxyConfig(
            freshness_interval=args.freshness,
            prefetch=PrefetchPolicy(enabled=args.prefetch),
        ),
    )
    simulator = EndToEndSimulator(
        site, DirectoryVolumeStore(DirectoryVolumeConfig(level=args.level)),
        config, horizon=cleaned.end_time + 1.0,
    )
    result = simulator.run(cleaned)
    print(f"client requests      {result.client_requests}")
    print(f"fresh hit rate       {result.fresh_hit_rate:.1%}")
    print(f"server contact rate  {result.server_contact_rate:.1%}")
    print(f"stale rate           {result.stale_rate:.2%}")
    print(f"piggyback messages   {result.piggyback_messages}")
    print(f"piggyback bytes      {result.piggyback_bytes}")
    if args.prefetch:
        stats = simulator.proxy.prefetcher.stats
        print(f"prefetches           {stats.issued} "
              f"(useful {stats.useful}, futile {stats.futile})")
    return 0


_FAULT_PROFILES = ("none", "delay", "throttle", "reset", "truncate", "garbage", "mixed")


def _fault_schedule(profile: str):
    """Deterministic per-connection fault plan for a named profile."""
    from .httpwire.faults import Fault

    if profile == "none":
        return None
    plans = {
        "delay": [Fault.none(), Fault.delay(0.2)],
        "throttle": [Fault.none(), Fault.throttle(64 * 1024)],
        "reset": [Fault.none(), Fault.none(), Fault.reset_after(64)],
        "truncate": [Fault.none(), Fault.none(), Fault.truncate_after(200)],
        "garbage": [Fault.none(), Fault.none(), Fault.garbage()],
        "mixed": [
            Fault.none(),
            Fault.delay(0.1),
            Fault.none(),
            Fault.reset_after(64),
            Fault.none(),
            Fault.truncate_after(200),
            Fault.none(),
            Fault.garbage(),
        ],
    }
    return plans[profile]


def _bind_error(kind: str, exc: OSError, address: str, port: int) -> int:
    """Print the actionable one-liner for a port collision; re-raise others."""
    import errno

    if exc.errno != errno.EADDRINUSE:
        raise exc
    print(
        f"{kind}: cannot listen on {address}:{port} — the port is already in "
        f"use (stop the process bound to it, pick a different --port, or use "
        f"--port 0 to let the kernel choose a free one)",
        file=sys.stderr,
    )
    return 2


def _dump_telemetry(path: str) -> None:
    from .telemetry import REGISTRY, render_json, render_prometheus

    snapshot = REGISTRY.snapshot()
    rendered = (
        render_json(snapshot)
        if path.endswith(".json")
        else render_prometheus(snapshot)
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print(f"telemetry snapshot   {path}")


def _print_cluster_report(status: dict) -> float:
    """Per-shard balance + stickiness section; returns the max/min ratio."""
    shard_routes = status["shard_routes"]
    total = max(1, sum(shard_routes))
    parts = ", ".join(
        f"s{index} {count / total:.0%} ({count})"
        for index, count in enumerate(shard_routes)
    )
    ratio = max(shard_routes) / max(1, min(shard_routes))
    sticky = status["sticky"]
    lookups = max(1, sticky["hits"] + sticky["misses"] + sticky["repins"])
    routing = status["routing"]
    print(f"shard balance        {parts}  (max/min {ratio:.2f})")
    print(f"sticky sessions      pins {sticky['pins']}, "
          f"hit rate {sticky['hits'] / lookups:.1%} "
          f"(hits {sticky['hits']}, misses {sticky['misses']}, "
          f"repins {sticky['repins']})")
    print(f"health               ejections {routing['ejections']}, "
          f"readmissions {routing['readmissions']}")
    print(f"routing snapshot     version {routing['snapshot_version']}, "
          f"age {routing['snapshot_age_seconds']:.2f}s "
          f"(ttl {routing['snapshot_ttl']:.1f}s)")
    print(f"lb retries           {status['retried']} "
          f"(unroutable {status['unroutable']})")
    return ratio


def _cmd_loadtest_cluster(args: argparse.Namespace) -> int:
    """Drive an in-process sharded cluster through its LB front tier."""
    from .httpwire.backends import load_runner
    from .httpwire.loadgen import LoadConfig
    from .httpwire.netserver import synthetic_body
    from .lb.balancer import LbPolicy
    from .lb.cluster import ClusterConfig, LocalCluster

    if args.telemetry_out or args.telemetry_series:
        from . import telemetry

        telemetry.enable()

    config = ClusterConfig(
        shards=args.shards,
        replicas=args.replicas,
        pages=args.pages,
        seed=args.seed,
        backend=args.backend,
        max_workers=args.max_workers,
        idle_timeout=args.idle_timeout,
        policy=LbPolicy(snapshot_ttl=args.snapshot_ttl),
    )
    run = load_runner(args.backend)
    with LocalCluster(config) as cluster:
        sizes = cluster.sizes

        def validate(url: str, response) -> bool:
            if response.status == 200:
                return response.body == synthetic_body(url, sizes[url])
            return response.status in (304, 404, 502)

        try:
            load = LoadConfig(
                clients=args.clients,
                requests_per_client=args.requests,
                mode=args.mode,
                rate=args.rate,
                warmup_requests=args.warmup,
                seed=args.seed,
                ims_fraction=args.ims_fraction,
                piggy_filter="maxpiggy=10",
                keepalive=args.keepalive,
                max_inflight=args.max_inflight,
            )
        except ValueError as exc:
            print(f"loadtest: {exc}", file=sys.stderr)
            return 2
        report = run(
            cluster.lb.address, cluster.lb.port, cluster.urls, load,
            validate=validate,
            flush_path=args.telemetry_series,
            flush_interval=args.flush_interval,
        )
        if args.telemetry_out:
            _dump_telemetry(args.telemetry_out)
        print(f"target               cluster "
              f"({args.shards} shards x {args.replicas} replicas)")
        print(f"backend              {args.backend}")
        print(f"keep-alive           {'on' if args.keepalive else 'off'}")
        print(report.format())
        ratio = _print_cluster_report(cluster.status())
    if report.corrupted:
        return 1
    if args.balance_within is not None and ratio > args.balance_within:
        print(
            f"loadtest: shard balance {ratio:.2f} exceeds "
            f"--balance-within {args.balance_within:.2f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    from contextlib import ExitStack

    from .httpwire.backends import load_runner, origin_server_class, proxy_server_class
    from .httpwire.faults import FaultInjectingInterposer
    from .httpwire.loadgen import LoadConfig
    from .httpwire.netproxy import UpstreamPolicy
    from .httpwire.netserver import synthetic_body
    from .proxy.proxy import ProxyConfig
    from .server.resources import ResourceStore
    from .server.server import PiggybackServer
    from .volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
    from .workloads.sitegen import SiteConfig, generate_site

    if args.target == "cluster":
        return _cmd_loadtest_cluster(args)

    telemetry_requested = args.telemetry_out or args.telemetry_series
    if telemetry_requested:
        from . import telemetry

        telemetry.enable()

    host = "www.load.example"
    site = generate_site(SiteConfig(host=host, page_count=args.pages,
                                    directory_count=6, seed=args.seed))
    resources = ResourceStore.from_site(site)
    sizes = {url: record.size for url in resources.urls()
             if (record := resources.get(url)) is not None}
    urls = sorted(sizes)
    durable = None
    if args.state_dir:
        from .server.durability import DurableState

        durable = DurableState(
            args.state_dir,
            lambda: DirectoryVolumeStore(DirectoryVolumeConfig(level=1)),
            resources=resources,
        )
        store = durable.store
    else:
        store = DirectoryVolumeStore(DirectoryVolumeConfig(level=1))
    engine = PiggybackServer(resources, store)

    origin_cls = origin_server_class(args.backend)
    proxy_cls = proxy_server_class(args.backend)
    run = load_runner(args.backend)
    # The worker cap is a threaded-stack knob; the async stack multiplexes
    # on one loop and takes a (much higher) connection cap instead.
    scale_kwargs = (
        {} if args.backend == "async" else {"max_workers": args.max_workers}
    )

    with ExitStack() as stack:
        if durable is not None:
            stack.callback(durable.close, snapshot=True)
        origin = stack.enter_context(
            origin_cls(engine, site_host=host, durable_state=durable,
                       idle_timeout=args.idle_timeout, **scale_kwargs)
        )
        origin_address = (origin.address, origin.port)
        if args.fault != "none":
            interposer = stack.enter_context(
                FaultInjectingInterposer(origin_address,
                                         schedule=_fault_schedule(args.fault))
            )
            origin_address = (interposer.address, interposer.port)

        if args.target == "origin":
            address, port = origin_address
            absolute_targets = False
            piggy_filter = "maxpiggy=10"
        else:
            proxy = stack.enter_context(
                proxy_cls(
                    origins={host: origin_address},
                    config=ProxyConfig(name="loadtest-proxy"),
                    upstream_policy=UpstreamPolicy(timeout=2.0, max_attempts=3,
                                                   backoff=0.02),
                    idle_timeout=args.idle_timeout,
                    **scale_kwargs,
                )
            )
            address, port = proxy.address, proxy.port
            absolute_targets = True
            piggy_filter = None

        def validate(url: str, response) -> bool:
            if response.status == 200:
                stale = (response.headers.get("X-Cache") or "") == "stale"
                return stale or response.body == synthetic_body(url, sizes[url])
            return response.status in (304, 404, 502)

        try:
            config = LoadConfig(
                clients=args.clients,
                requests_per_client=args.requests,
                mode=args.mode,
                rate=args.rate,
                warmup_requests=args.warmup,
                seed=args.seed,
                ims_fraction=args.ims_fraction,
                piggy_filter=piggy_filter,
                absolute_targets=absolute_targets,
                keepalive=args.keepalive,
                max_inflight=args.max_inflight,
            )
        except ValueError as exc:
            print(f"loadtest: {exc}", file=sys.stderr)
            return 2
        report = run(
            address, port, urls, config, validate=validate,
            flush_path=args.telemetry_series,
            flush_interval=args.flush_interval,
        )
        if args.telemetry_out:
            _dump_telemetry(args.telemetry_out)

        keepalive_label = "on" if args.keepalive else "off"
        print(f"target               {args.target} (fault profile: {args.fault})")
        print(f"backend              {args.backend}")
        print(f"keep-alive           {keepalive_label}")
        print(report.format())
        if args.target == "proxy":
            stats = proxy.engine.stats
            pool = proxy.upstream.stats
            print(f"proxy server reqs    {stats.server_requests} "
                  f"(contact rate {stats.server_contact_rate:.1%})")
            print(f"upstream retries     {pool.retries} "
                  f"(failures {pool.failures})")
            print(f"upstream pool        reuses {pool.pool_reuses}, "
                  f"connects {pool.pool_connects}, retired {pool.pool_retired} "
                  f"(reuse rate {pool.pool_reuse_rate:.1%})")
            print(f"stale responses      {proxy.stale_responses}")
            print(f"proxy workers live   {proxy.active_workers()}")
        if engine.piggyback_cache is not None:
            cache_stats = engine.piggyback_cache.stats
            print(f"piggyback cache      hits {cache_stats.hits}, "
                  f"misses {cache_stats.misses}, "
                  f"evictions {cache_stats.evictions} "
                  f"(hit rate {cache_stats.hit_rate:.1%})")
        print(f"origin requests      {engine.stats.requests}")
        print(f"origin workers live  {origin.active_workers()}")
        if durable is not None:
            journal = durable.store.journal
            print(f"durable state        generation {durable.generation}, "
                  f"journal seq {journal.last_seq} "
                  f"({journal.bytes_written} bytes)")
    return 0 if report.corrupted == 0 else 1


def _wait_serving(server, max_seconds: float | None) -> None:
    """Foreground wait loop shared by serve/cluster: until drained,
    interrupted, or the optional deadline."""
    import time as time_mod

    deadline = (None if max_seconds is None
                else time_mod.monotonic() + max_seconds)
    try:
        while deadline is None or time_mod.monotonic() < deadline:
            time_mod.sleep(0.05)
            if server.draining and server.active_workers() == 0:
                break
    except KeyboardInterrupt:
        pass


def _parse_backend_specs(specs: list[str]):
    """``SHARD:HOST:PORT`` triples → BackendSlots with per-shard replicas."""
    from .lb.routing import BackendSlot

    slots: list[BackendSlot] = []
    replicas: dict[int, int] = {}
    for spec in specs:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ValueError(f"bad --backends entry {spec!r} "
                             f"(expected SHARD:HOST:PORT)")
        try:
            shard, port = int(parts[0]), int(parts[2])
        except ValueError as exc:
            raise ValueError(f"bad --backends entry {spec!r}: {exc}") from exc
        replica = replicas.get(shard, 0)
        replicas[shard] = replica + 1
        slots.append(BackendSlot(shard, replica, parts[1], port))
    if not slots:
        raise ValueError("--lb needs at least one --backends entry")
    shard_count = max(slot.shard for slot in slots) + 1
    missing = sorted(set(range(shard_count)) - set(replicas))
    if missing:
        raise ValueError(f"shards with no backend: {missing}")
    return shard_count, slots


def _cmd_serve_lb(args: argparse.Namespace) -> int:
    """Run only the LB front tier against already-running origins."""
    from .httpwire.backends import lb_server_class
    from .lb.balancer import LbPolicy
    from .lb.cluster import _transition_hook
    from .lb.health import HealthChecker, HealthPolicy
    from .lb.routing import RoutingTable

    try:
        shard_count, slots = _parse_backend_specs(args.backends or [])
    except ValueError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    table = RoutingTable(shard_count, slots, snapshot_ttl=args.snapshot_ttl)
    lb_cls = lb_server_class(args.backend)
    scale_kwargs = (
        {} if args.backend == "async" else {"max_workers": args.max_workers}
    )
    try:
        lb = lb_cls(
            table,
            address=args.address,
            port=args.port,
            policy=LbPolicy(snapshot_ttl=args.snapshot_ttl),
            site_host=args.host,
            idle_timeout=args.idle_timeout,
            **scale_kwargs,
        )
    except OSError as exc:
        return _bind_error("serve", exc, args.address, args.port)
    checker = HealthChecker(
        table, HealthPolicy(interval=args.probe_interval),
        on_transition=_transition_hook(lb),
    )
    try:
        with lb:
            checker.start()
            print(f"load balancer on {lb.address}:{lb.port} "
                  f"({args.backend} backend, {shard_count} shards, "
                  f"{len(slots)} backends)")
            sys.stdout.flush()
            _wait_serving(lb, args.max_seconds)
    finally:
        checker.stop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .httpwire.backends import origin_server_class
    from .server.durability import BufferedAccessLogger, DurableState
    from .server.resources import ResourceStore
    from .server.server import PiggybackServer
    from .volumes.directory import DirectoryVolumeConfig, DirectoryVolumeStore
    from .workloads.sitegen import SiteConfig, generate_site

    if args.lb:
        return _cmd_serve_lb(args)
    if not args.state_dir:
        print("serve: --state-dir is required (except with --lb)",
              file=sys.stderr)
        return 2

    site = generate_site(SiteConfig(host=args.host, page_count=args.pages,
                                    directory_count=args.directories,
                                    max_depth=args.max_depth, seed=args.seed))
    resources = ResourceStore.from_site(site)
    state = DurableState(
        args.state_dir,
        lambda: DirectoryVolumeStore(DirectoryVolumeConfig(level=args.level)),
        resources=resources,
        sync=args.sync,
    )
    engine = PiggybackServer(resources, state.store)
    logger = None
    if args.access_log:
        logger = BufferedAccessLogger(args.access_log,
                                      interval=args.flush_interval)
    origin_cls = origin_server_class(args.backend)
    scale_kwargs = (
        {} if args.backend == "async" else {"max_workers": args.max_workers}
    )
    try:
        try:
            origin = origin_cls(
                engine,
                site_host=args.host,
                address=args.address,
                port=args.port,
                access_logger=logger,
                durable_state=state,
                idle_timeout=args.idle_timeout,
                **scale_kwargs,
            )
        except OSError as exc:
            return _bind_error("serve", exc, args.address, args.port)
        with origin:
            recovery = state.recovery
            print(f"serving {args.host} on {origin.address}:{origin.port} "
                  f"({args.backend} backend)")
            print(f"state dir            {state.state_dir}")
            print(f"generation           {state.generation}")
            print(f"recovered            seq {recovery.last_seq} "
                  f"(snapshot {'yes' if recovery.snapshot_loaded else 'no'}, "
                  f"replayed {recovery.replayed_records}, "
                  f"torn tail bytes {recovery.torn_tail_bytes})")
            sys.stdout.flush()
            _wait_serving(origin, args.max_seconds)
    finally:
        if logger is not None:
            logger.close()
        state.close(snapshot=args.snapshot_on_exit)
    journal = state.store.journal
    print(f"journal              seq {journal.last_seq} "
          f"({journal.bytes_written} bytes)")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Spawn a sharded origin fleet and serve through the LB front tier."""
    import time as time_mod

    from .lb.balancer import LbPolicy
    from .lb.cluster import ClusterConfig, ClusterError, ProcessCluster
    from .lb.health import HealthPolicy

    config = ClusterConfig(
        shards=args.shards,
        replicas=args.replicas,
        host=args.host,
        pages=args.pages,
        seed=args.seed,
        level=args.level,
        backend=args.backend,
        address=args.address,
        lb_port=args.port,
        max_workers=args.max_workers,
        idle_timeout=args.idle_timeout,
        policy=LbPolicy(snapshot_ttl=args.snapshot_ttl),
        health=HealthPolicy(interval=args.probe_interval),
        state_dir=args.state_dir,
        sync_journal=args.sync,
    )
    cluster = ProcessCluster(config)
    try:
        try:
            address, port = cluster.start()
        except ClusterError as exc:
            print(f"cluster: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            return _bind_error("cluster", exc, args.address, args.port)
        print(f"cluster lb on {address}:{port} "
              f"({args.backend} backend, {args.shards} shards x "
              f"{args.replicas} replicas)")
        print(f"state base           {cluster.state_base}")
        for shard, replica, backend_port, state_dir in cluster.layout():
            print(f"  shard {shard} replica {replica}   "
                  f"{config.address}:{backend_port}  {state_dir}")
        sys.stdout.flush()
        deadline = (None if args.max_seconds is None
                    else time_mod.monotonic() + args.max_seconds)
        try:
            while deadline is None or time_mod.monotonic() < deadline:
                time_mod.sleep(0.2)
                for shard, replica, code in cluster.poll():
                    print(f"cluster: shard {shard} replica {replica} exited "
                          f"with code {code}", file=sys.stderr)
        except KeyboardInterrupt:
            pass
    finally:
        cluster.stop()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .analysis.sweeps import directory_sweep, threshold_sweep

    trace = _load_trace(args)
    if args.kind == "thresholds":
        results = threshold_sweep(
            trace,
            args.thresholds,
            engine=args.engine,
            processes=args.processes,
        )
    else:
        results = directory_sweep(
            trace,
            levels=args.levels,
            access_filters=args.filters,
            engine=args.engine,
            processes=args.processes,
        )
    print(f"{'point':<28} {'avg-piggyback':>13} {'predicted':>9} {'true-pred':>9}")
    rows = []
    for result in results:
        metrics = result.metrics
        rows.append(
            {
                "label": result.label,
                "params": dict(result.params),
                "mean_piggyback_size": metrics.mean_piggyback_size,
                "fraction_predicted": metrics.fraction_predicted,
                "true_prediction_fraction": metrics.true_prediction_fraction,
                "piggyback_messages": metrics.piggyback_messages,
                "piggyback_bytes": metrics.piggyback_bytes,
            }
        )
        print(
            f"{result.label:<28} {metrics.mean_piggyback_size:>13.2f}"
            f" {metrics.fraction_predicted:>9.1%}"
            f" {metrics.true_prediction_fraction:>9.1%}"
        )
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump({"kind": args.kind, "engine": args.engine, "points": rows},
                      handle, indent=2)
        print(f"wrote {len(rows)} sweep points to {args.out}")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .devtools.lint import Baseline, run_lint

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"lint: root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] or None

    baseline = None
    baseline_path = root / args.baseline
    if not args.write_baseline and not args.no_baseline and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"lint: cannot read baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2

    try:
        report = run_lint(
            root, paths, baseline=baseline, interprocedural=args.interprocedural
        )
    except OSError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        Baseline.from_findings(report.findings).save(baseline_path)
        print(f"wrote {len(report.findings)} fingerprint(s) to {baseline_path}")
        return 0

    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return 0 if report.clean else 1


def _cmd_flow(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .devtools.flow import build_callgraph
    from .devtools.lint.engine import LintReport, _parse_modules, collect_files

    root = Path(args.root).resolve()
    if not root.is_dir():
        print(f"flow: root {args.root!r} is not a directory", file=sys.stderr)
        return 2
    paths = [Path(p) for p in args.paths] or None
    scratch = LintReport()
    files = collect_files(root, paths)
    modules = _parse_modules(root, files, scratch)
    graph = build_callgraph(modules)

    if args.dot:
        output = graph.to_dot(include_external=args.external)
    else:
        edges = sum(
            len(site.targets) for sites in graph.calls.values() for site in sites
        )
        output = "\n".join(
            (
                f"modules:   {len(modules)}",
                f"functions: {len(graph.functions)}",
                f"classes:   {len(graph.classes)}",
                f"edges:     {edges}",
            )
        )
    if args.out:
        Path(args.out).write_text(output + "\n", encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(output)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    presets = args.presets or ["aiusa", "apache", "sun"]
    print("log     <2hr    <5min   updated  avg-piggyback")
    for name in presets:
        trace, _ = server_log_preset(name, scale=args.scale)
        cleaned, _ = clean_trace(trace, CleaningConfig(min_accesses=args.min_accesses))
        row = experiments.table1_update_fraction(cleaned, name)
        print(
            f"{row.log:<7} {row.prev_occurrence_2hr:>5.1%}  {row.prev_occurrence_5min:>6.1%}"
            f"  {row.updated_by_piggyback:>7.1%}  {row.mean_piggyback_size:>13.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-web",
        description="Server volumes and proxy filters (SIGCOMM 1998) toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--preset", default="aiusa",
                       help="named synthetic log (server or client preset)")
        p.add_argument("--log", default=None, help="read a Common Log Format file instead")
        p.add_argument("--scale", type=float, default=1.0, help="session-count multiplier")
        p.add_argument("--min-accesses", type=int, default=10,
                       help="popularity floor during cleaning (Appendix A)")
        p.add_argument("--chart", action="store_true",
                       help="render an ASCII chart of the series")

    generate = sub.add_parser("generate", help="write a synthetic log in CLF")
    generate.add_argument("--preset", default="aiusa")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(handler=_cmd_generate)

    stats = sub.add_parser(
        "stats",
        help="characterize a log (Tables 2/3) or render a telemetry snapshot")
    add_common(stats)
    stats.add_argument("--kind", choices=("server", "client"), default="server")
    stats.add_argument("--snapshot", default=None,
                       help="render a telemetry dump (Prometheus text, JSON, or JSONL)")
    stats.add_argument("--url", default=None,
                       help="fetch and render a live /.repro/metrics endpoint")
    stats.add_argument("--require", nargs="*", default=None,
                       help="metric-family prefixes that must be present (exit 1 if not)")
    stats.set_defaults(handler=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="chunked trace files: generate at scale, characterize, verify")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    trace_gen = trace_sub.add_parser(
        "gen",
        help="stream a multi-tenant internet-scale trace into a chunk file")
    trace_gen.add_argument("--out", required=True, help="chunk file to write")
    trace_gen.add_argument("--records", type=int, default=1_000_000,
                           help="exact number of records to emit")
    trace_gen.add_argument("--origins", type=int, default=200,
                           help="origin server count (each gets its own site)")
    trace_gen.add_argument("--clients", type=int, default=2_000_000,
                           help="client population size (Zipf-sampled by rank)")
    trace_gen.add_argument("--rate", type=float, default=0.25,
                           help="base session arrivals per second")
    trace_gen.add_argument("--bot-fraction", type=float, default=0.05,
                           help="fraction of sessions that are crawler sweeps")
    trace_gen.add_argument("--chunk-records", type=int, default=65536,
                           help="records per chunk frame")
    trace_gen.add_argument("--seed", type=int, default=0)
    trace_gen.set_defaults(handler=_cmd_trace_gen)

    trace_stats = trace_sub.add_parser(
        "stats",
        help="characterize an on-disk chunk file in one streaming pass")
    trace_stats.add_argument("chunks", help="chunk file to read")
    trace_stats.add_argument("--kind", choices=("server", "client"), default="server")
    trace_stats.set_defaults(handler=_cmd_trace_stats)

    trace_verify = trace_sub.add_parser(
        "verify", help="check every frame CRC and the trailer of a chunk file")
    trace_verify.add_argument("chunks", help="chunk file to read")
    trace_verify.set_defaults(handler=_cmd_trace_verify)

    for name, handler, help_text in (
        ("fig1", _cmd_fig1, "directory-prefix locality (Figure 1)"),
        ("fig2", _cmd_fig2, "directory volumes: size and accuracy (Figures 2-3)"),
        ("fig4", _cmd_fig4, "RPV pacing (Figure 4)"),
        ("fig6", _cmd_fig6, "probability volumes (Figures 5-8)"),
    ):
        command = sub.add_parser(name, help=help_text)
        add_common(command)
        command.set_defaults(handler=handler)

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative config sweep on the interned replay engine")
    add_common(sweep)
    sweep.add_argument("--kind", choices=("thresholds", "directory"),
                       default="thresholds",
                       help="probability-threshold or directory-volume sweep")
    sweep.add_argument("--thresholds", type=float, nargs="*",
                       default=[0.1, 0.2, 0.25, 0.3, 0.5],
                       help="probability thresholds (kind=thresholds)")
    sweep.add_argument("--levels", type=int, nargs="*", default=[0, 1, 2],
                       help="directory levels (kind=directory)")
    sweep.add_argument("--filters", type=int, nargs="*", default=[1, 10, 100],
                       help="access filters (kind=directory)")
    sweep.add_argument("--engine", choices=("fast", "reference"), default="fast")
    sweep.add_argument("--processes", type=int, default=None,
                       help="worker processes (default: one per CPU)")
    sweep.add_argument("--out", default=None, help="write sweep points as JSON")
    sweep.set_defaults(handler=_cmd_sweep)

    lint = sub.add_parser(
        "lint",
        help="static invariant checks (determinism, locks, resources, API)")
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: src/ and benchmarks/)")
    lint.add_argument("--root", default=".",
                      help="repository root paths are resolved against")
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="baseline file (relative to --root)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore the committed baseline")
    lint.add_argument("--write-baseline", action="store_true",
                      help="rewrite the baseline from current findings")
    lint.add_argument("--interprocedural", action="store_true",
                      help="additionally run the whole-program flow passes "
                           "(call-graph construction; slower)")
    lint.set_defaults(handler=_cmd_lint)

    flow = sub.add_parser(
        "flow",
        help="whole-program call graph: export DOT or summary statistics")
    flow.add_argument("paths", nargs="*",
                      help="files or directories (default: src/ and benchmarks/)")
    flow.add_argument("--root", default=".",
                      help="repository root paths are resolved against")
    flow.add_argument("--dot", action="store_true",
                      help="emit the resolved call graph as Graphviz DOT")
    flow.add_argument("--external", action="store_true",
                      help="include dashed edges to external callees in DOT")
    flow.add_argument("--out", default=None, help="write output to a file")
    flow.set_defaults(handler=_cmd_flow)

    table1 = sub.add_parser("table1", help="update fractions (Table 1)")
    table1.add_argument("--presets", nargs="*", default=None)
    table1.add_argument("--scale", type=float, default=1.0)
    table1.add_argument("--min-accesses", type=int, default=10)
    table1.set_defaults(handler=_cmd_table1)

    build = sub.add_parser("build-volumes",
                           help="build and persist probability volumes")
    add_common(build)
    build.add_argument("--out", required=True)
    build.add_argument("--threshold", type=float, default=0.25)
    build.add_argument("--window", type=float, default=300.0)
    build.add_argument("--effectiveness", type=float, default=0.2)
    build.add_argument("--combine-level", type=int, default=None)
    build.set_defaults(handler=_cmd_build_volumes)

    simulate = sub.add_parser("simulate",
                              help="end-to-end proxy/server simulation")
    add_common(simulate)
    simulate.add_argument("--level", type=int, default=1)
    simulate.add_argument("--freshness", type=float, default=600.0)
    simulate.add_argument("--prefetch", action="store_true")
    simulate.set_defaults(handler=_cmd_simulate)

    roc = sub.add_parser("roc", help="rate of change and delta savings")
    roc.add_argument("--preset", default="aiusa")
    roc.add_argument("--scale", type=float, default=0.3)
    roc.set_defaults(handler=_cmd_roc)

    loadtest = sub.add_parser(
        "loadtest",
        help="concurrent load against the live wire stack (latency/throughput)")
    loadtest.add_argument("--target", choices=("origin", "proxy", "cluster"),
                          default="proxy",
                          help="hit the origin directly, go through the proxy, "
                               "or drive a sharded cluster through its LB")
    loadtest.add_argument("--shards", type=int, default=3,
                          help="cluster shard count (target=cluster)")
    loadtest.add_argument("--replicas", type=int, default=1,
                          help="replicas per shard (target=cluster)")
    loadtest.add_argument("--snapshot-ttl", type=float, default=1.0,
                          help="LB routing-snapshot TTL in seconds "
                               "(target=cluster)")
    loadtest.add_argument("--balance-within", type=float, default=None,
                          help="fail if per-shard route counts differ by more "
                               "than this max/min factor (target=cluster)")
    loadtest.add_argument("--backend", choices=("threaded", "async"),
                          default="threaded",
                          help="wire stack: thread-per-connection or event loop")
    loadtest.add_argument("--clients", type=int, default=8)
    loadtest.add_argument("--requests", type=int, default=25,
                          help="requests per client")
    loadtest.add_argument("--mode", choices=("closed", "open"), default="closed")
    loadtest.add_argument("--rate", type=float, default=200.0,
                          help="open-loop aggregate arrivals/second")
    loadtest.add_argument("--warmup", type=int, default=2,
                          help="per-client warmup requests excluded from latency")
    loadtest.add_argument("--ims-fraction", type=float, default=0.3,
                          help="fraction of revisits sent If-Modified-Since")
    loadtest.add_argument("--pages", type=int, default=48,
                          help="synthetic site size")
    loadtest.add_argument("--max-workers", type=int, default=64)
    loadtest.add_argument("--idle-timeout", type=float, default=None,
                          help="server-side keep-alive idle reap timeout in "
                               "seconds (default: no reaping)")
    loadtest.add_argument("--max-inflight", type=int, default=0,
                          help="async open-loop cap on in-flight exchanges "
                               "(0 = unbounded; threaded runner ignores it)")
    loadtest.add_argument("--fault", choices=_FAULT_PROFILES, default="none",
                          help="fault-injection profile between proxy and origin")
    loadtest.add_argument("--keepalive", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="reuse persistent client connections "
                               "(--no-keepalive forces one connection per request)")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--telemetry-out", default=None,
                          help="enable telemetry and dump a final snapshot "
                               "(Prometheus text, or JSON for *.json paths)")
    loadtest.add_argument("--telemetry-series", default=None,
                          help="enable telemetry and flush a JSONL time series here")
    loadtest.add_argument("--flush-interval", type=float, default=0.5,
                          help="seconds between time-series flushes")
    loadtest.add_argument("--state-dir", default=None,
                          help="serve from a durable state directory "
                               "(journal + snapshot, recovered on start)")
    loadtest.set_defaults(handler=_cmd_loadtest)

    serve = sub.add_parser(
        "serve",
        help="run a durable piggyback origin (or, with --lb, a cluster "
             "front tier) until interrupted")
    serve.add_argument("--state-dir", default=None,
                       help="state directory (journal, snapshot, meta); "
                            "created and recovered on start "
                            "(required except with --lb)")
    serve.add_argument("--lb", action="store_true",
                       help="serve the load-balancer front tier instead of "
                            "an origin, routing to --backends")
    serve.add_argument("--backends", nargs="*", default=None,
                       metavar="SHARD:HOST:PORT",
                       help="origin backends for --lb; repeat a shard id to "
                            "add replicas (e.g. 0:127.0.0.1:8081 "
                            "0:127.0.0.1:8082 1:127.0.0.1:8083)")
    serve.add_argument("--snapshot-ttl", type=float, default=1.0,
                       help="LB routing-snapshot TTL in seconds (--lb)")
    serve.add_argument("--probe-interval", type=float, default=0.5,
                       help="LB health-probe interval in seconds (--lb)")
    serve.add_argument("--host", default="www.serve.example",
                       help="synthetic site host name")
    serve.add_argument("--address", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port (0 picks a free one)")
    serve.add_argument("--pages", type=int, default=48,
                       help="synthetic site size")
    serve.add_argument("--directories", type=int, default=6,
                       help="synthetic site directory count")
    serve.add_argument("--max-depth", type=int, default=4,
                       help="synthetic site directory nesting depth")
    serve.add_argument("--level", type=int, default=1,
                       help="directory-volume level")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--backend", choices=("threaded", "async"),
                       default="threaded",
                       help="wire stack: thread-per-connection or event loop")
    serve.add_argument("--max-workers", type=int, default=64)
    serve.add_argument("--idle-timeout", type=float, default=None,
                       help="server-side keep-alive idle reap timeout in "
                            "seconds (default: no reaping)")
    serve.add_argument("--access-log", default=None,
                       help="buffered CLF access log path")
    serve.add_argument("--flush-interval", type=float, default=1.0,
                       help="access-log flush period in seconds")
    serve.add_argument("--max-seconds", type=float, default=None,
                       help="exit after this many seconds (smoke tests)")
    serve.add_argument("--sync", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="fsync each journal append "
                            "(--no-sync trades durability for speed)")
    serve.add_argument("--snapshot-on-exit", action=argparse.BooleanOptionalAction,
                       default=False,
                       help="fold the journal into a snapshot on clean exit")
    serve.set_defaults(handler=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="spawn a sharded origin fleet behind the LB front tier")
    cluster.add_argument("--shards", type=int, default=3)
    cluster.add_argument("--replicas", type=int, default=1,
                         help="origin replicas per shard")
    cluster.add_argument("--state-dir", default=None,
                         help="base directory for per-shard durable state "
                              "(default: a fresh temporary directory)")
    cluster.add_argument("--host", default="www.cluster.example",
                         help="synthetic site host name")
    cluster.add_argument("--address", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=0,
                         help="LB listen port (0 picks a free one)")
    cluster.add_argument("--pages", type=int, default=48,
                         help="synthetic site size")
    cluster.add_argument("--level", type=int, default=1,
                         help="directory-volume level")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument("--backend", choices=("threaded", "async"),
                         default="threaded",
                         help="wire stack for the LB and every origin")
    cluster.add_argument("--max-workers", type=int, default=32,
                         help="worker cap per origin and for the LB")
    cluster.add_argument("--idle-timeout", type=float, default=None,
                         help="server-side keep-alive idle reap timeout")
    cluster.add_argument("--snapshot-ttl", type=float, default=1.0,
                         help="LB routing-snapshot TTL in seconds")
    cluster.add_argument("--probe-interval", type=float, default=0.5,
                         help="health-probe interval in seconds")
    cluster.add_argument("--max-seconds", type=float, default=None,
                         help="exit after this many seconds (smoke tests)")
    cluster.add_argument("--sync", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="fsync each origin journal append")
    cluster.set_defaults(handler=_cmd_cluster)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
