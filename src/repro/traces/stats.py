"""Trace characterization (Tables 2 and 3 of the paper).

Given any trace, compute the summary rows the paper reports for its client
and server logs: request counts, distinct servers/clients, unique resources,
requests per source, response-size statistics, and the concentration
statistics quoted in Appendix A (top-1% of servers' share of resources,
share of requests going to the most popular resources).

Both characterizers run as a **single streaming pass** carrying only
per-key counters — no list of records or sizes is ever materialized — and
accept either an in-memory :class:`~repro.traces.records.Trace` or a
:class:`~repro.traces.intern.ChunkedCompiledTrace` (including one bound to
an on-disk chunk file, where the pass decodes one chunk at a time).  The
size median comes from a size histogram expanded to order statistics and
the mean from an exact integer sum, so results are identical across
representations.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from .. import urls
from .intern import ChunkedCompiledTrace
from .records import Trace

__all__ = [
    "ServerLogStats",
    "ClientLogStats",
    "characterize_server_log",
    "characterize_client_log",
    "top_fraction_share",
]


class _SizeStats:
    """Streaming mean/median of positive response sizes via a histogram.

    Response sizes repeat heavily (every hit on a resource contributes the
    same value), so a ``Counter`` stays tiny while representing the full
    multiset; the median is the middle order statistic read off the sorted
    histogram, exactly what sorting the value list would produce.
    """

    __slots__ = ("count", "total", "histogram")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.histogram: Counter[int] = Counter()

    def add(self, size: int) -> None:
        if size > 0:
            self.count += 1
            self.total += size
            self.histogram[size] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def median(self) -> float:
        if not self.count:
            return 0.0
        # 0-based ranks of the one or two middle order statistics.
        upper = self.count // 2
        lower = upper if self.count % 2 else upper - 1
        seen = 0
        lower_value: float | None = None
        for size in sorted(self.histogram):
            seen += self.histogram[size]
            if lower_value is None and seen > lower:
                lower_value = float(size)
            if seen > upper:
                if self.count % 2:
                    return float(size)
                assert lower_value is not None
                return (lower_value + size) / 2.0
        raise AssertionError("histogram exhausted before median rank")


def _top_share(counts, fraction: float) -> float:
    """Share of the total captured by the top *fraction* of count values."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(counts, reverse=True)
    if not ordered:
        return 0.0
    top = max(1, math.ceil(len(ordered) * fraction))
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:top]) / total


def top_fraction_share(counts: dict[str, int], fraction: float) -> float:
    """Share of total count captured by the top *fraction* of keys.

    ``top_fraction_share(url_counts, 0.10)`` answers "what fraction of
    requests go to the most popular 10% of resources" — the paper observes
    roughly 85% for its server logs.
    """
    return _top_share(counts.values(), fraction) if counts else 0.0


@dataclass(frozen=True, slots=True)
class ServerLogStats:
    """One row of Table 3 plus the Appendix-A concentration figures."""

    days: float
    requests: int
    clients: int
    requests_per_source: float
    unique_resources: int
    top_decile_request_share: float
    top_decile_client_share: float
    mean_response_size: float
    median_response_size: float


@dataclass(frozen=True, slots=True)
class ClientLogStats:
    """One row of Table 2 plus the Appendix-A concentration figures."""

    days: float
    requests: int
    distinct_servers: int
    unique_resources: int
    not_modified_fraction: float
    mean_response_size: float
    top_percent_server_resource_share: float


class _ServerAccumulator:
    """One-pass state for :func:`characterize_server_log`.

    Keys are whatever the caller feeds — URL/source strings from a
    ``Trace``, integer ids from a chunked trace; only counter *values*
    reach the final statistics, so the key space does not matter.
    """

    __slots__ = ("requests", "first", "last", "url_counts", "source_counts", "sizes")

    def __init__(self) -> None:
        self.requests = 0
        self.first = 0.0
        self.last = 0.0
        self.url_counts: dict = {}
        self.source_counts: dict = {}
        self.sizes = _SizeStats()

    def observe(self, timestamp: float, source, url, size: int) -> None:
        if not self.requests:
            self.first = timestamp
        self.last = timestamp
        self.requests += 1
        self.url_counts[url] = self.url_counts.get(url, 0) + 1
        self.source_counts[source] = self.source_counts.get(source, 0) + 1
        self.sizes.add(size)

    def finish(self) -> ServerLogStats:
        if not self.requests:
            raise ValueError("cannot characterize an empty trace")
        clients = len(self.source_counts)
        return ServerLogStats(
            days=(self.last - self.first) / 86400.0,
            requests=self.requests,
            clients=clients,
            requests_per_source=self.requests / clients,
            unique_resources=len(self.url_counts),
            top_decile_request_share=_top_share(self.url_counts.values(), 0.10),
            top_decile_client_share=_top_share(self.source_counts.values(), 0.10),
            mean_response_size=self.sizes.mean(),
            median_response_size=self.sizes.median(),
        )


class _ClientAccumulator:
    """One-pass state for :func:`characterize_client_log`.

    ``host_of`` maps a URL key to its server key; chunked traces resolve
    it per *distinct* url id (one parse per resource, not per request).
    """

    __slots__ = ("requests", "first", "last", "server_resources", "seen_urls",
                 "not_modified", "sizes")

    def __init__(self) -> None:
        self.requests = 0
        self.first = 0.0
        self.last = 0.0
        self.server_resources: dict = {}
        self.seen_urls: set = set()
        self.not_modified = 0
        self.sizes = _SizeStats()

    def observe(self, timestamp: float, url, host, size: int, is_not_modified: bool) -> None:
        if not self.requests:
            self.first = timestamp
        self.last = timestamp
        self.requests += 1
        resources = self.server_resources.get(host)
        if resources is None:
            resources = set()
            self.server_resources[host] = resources
        resources.add(url)
        self.seen_urls.add(url)
        if is_not_modified:
            self.not_modified += 1
        self.sizes.add(size)

    def finish(self) -> ClientLogStats:
        if not self.requests:
            raise ValueError("cannot characterize an empty trace")
        return ClientLogStats(
            days=(self.last - self.first) / 86400.0,
            requests=self.requests,
            distinct_servers=len(self.server_resources),
            unique_resources=len(self.seen_urls),
            not_modified_fraction=self.not_modified / self.requests,
            mean_response_size=self.sizes.mean(),
            top_percent_server_resource_share=_top_share(
                (len(resources) for resources in self.server_resources.values()), 0.01
            ),
        )


def characterize_server_log(trace: Trace | ChunkedCompiledTrace) -> ServerLogStats:
    """Compute Table-3-style statistics for a server access log.

    Chunked traces (in-memory or file-backed) are characterized in one
    streaming pass over their chunks; results are identical to the
    ``Trace`` path on the same records.
    """
    accumulator = _ServerAccumulator()
    if isinstance(trace, ChunkedCompiledTrace):
        observe = accumulator.observe
        for chunk in trace.chunks():
            timestamps = chunk.timestamps
            source_ids = chunk.source_ids
            url_ids = chunk.url_ids
            sizes = chunk.sizes
            for index in range(len(timestamps)):
                observe(timestamps[index], source_ids[index], url_ids[index],
                        sizes[index])
    else:
        for record in trace:
            accumulator.observe(record.timestamp, record.source, record.url,
                                record.size)
    return accumulator.finish()


def characterize_client_log(trace: Trace | ChunkedCompiledTrace) -> ClientLogStats:
    """Compute Table-2-style statistics for a client/proxy log.

    Chunked traces are characterized in one streaming pass; the host of
    each resource is resolved once per distinct url id against the shared
    symbol table rather than once per request.
    """
    accumulator = _ClientAccumulator()
    if isinstance(trace, ChunkedCompiledTrace):
        observe = accumulator.observe
        url_strings = trace.urls.strings
        # Host id per distinct url id, resolved lazily: a chunk stream can
        # intern further urls mid-pass, so look up rather than precompute.
        host_ids: dict[int, str] = {}
        for chunk in trace.chunks():
            timestamps = chunk.timestamps
            url_ids = chunk.url_ids
            sizes = chunk.sizes
            statuses = chunk.statuses
            for index in range(len(timestamps)):
                url = url_ids[index]
                host = host_ids.get(url)
                if host is None:
                    host, _ = urls.split_host_path(url_strings[url])
                    host_ids[url] = host
                observe(timestamps[index], url, host, sizes[index],
                        statuses[index] == 304)
    else:
        for record in trace:
            host, _ = urls.split_host_path(record.url)
            accumulator.observe(record.timestamp, record.url, host, record.size,
                                record.is_not_modified)
    return accumulator.finish()
