"""Trace characterization (Tables 2 and 3 of the paper).

Given any trace, compute the summary rows the paper reports for its client
and server logs: request counts, distinct servers/clients, unique resources,
requests per source, response-size statistics, and the concentration
statistics quoted in Appendix A (top-1% of servers' share of resources,
share of requests going to the most popular resources).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .. import urls
from .records import Trace

__all__ = [
    "ServerLogStats",
    "ClientLogStats",
    "characterize_server_log",
    "characterize_client_log",
    "top_fraction_share",
]


def _median(values: list[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def top_fraction_share(counts: dict[str, int], fraction: float) -> float:
    """Share of total count captured by the top *fraction* of keys.

    ``top_fraction_share(url_counts, 0.10)`` answers "what fraction of
    requests go to the most popular 10% of resources" — the paper observes
    roughly 85% for its server logs.
    """
    if not counts:
        return 0.0
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    ordered = sorted(counts.values(), reverse=True)
    top = max(1, math.ceil(len(ordered) * fraction))
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:top]) / total


@dataclass(frozen=True, slots=True)
class ServerLogStats:
    """One row of Table 3 plus the Appendix-A concentration figures."""

    days: float
    requests: int
    clients: int
    requests_per_source: float
    unique_resources: int
    top_decile_request_share: float
    top_decile_client_share: float
    mean_response_size: float
    median_response_size: float


@dataclass(frozen=True, slots=True)
class ClientLogStats:
    """One row of Table 2 plus the Appendix-A concentration figures."""

    days: float
    requests: int
    distinct_servers: int
    unique_resources: int
    not_modified_fraction: float
    mean_response_size: float
    top_percent_server_resource_share: float


def characterize_server_log(trace: Trace) -> ServerLogStats:
    """Compute Table-3-style statistics for a server access log."""
    if len(trace) == 0:
        raise ValueError("cannot characterize an empty trace")
    url_counts = trace.url_counts()
    source_counts: dict[str, int] = {}
    sizes: list[float] = []
    for record in trace:
        source_counts[record.source] = source_counts.get(record.source, 0) + 1
        if record.size > 0:
            sizes.append(float(record.size))
    clients = len(source_counts)
    return ServerLogStats(
        days=trace.duration / 86400.0,
        requests=len(trace),
        clients=clients,
        requests_per_source=len(trace) / clients,
        unique_resources=len(url_counts),
        top_decile_request_share=top_fraction_share(url_counts, 0.10),
        top_decile_client_share=top_fraction_share(source_counts, 0.10),
        mean_response_size=sum(sizes) / len(sizes) if sizes else 0.0,
        median_response_size=_median(sizes),
    )


def characterize_client_log(trace: Trace) -> ClientLogStats:
    """Compute Table-2-style statistics for a client/proxy log."""
    if len(trace) == 0:
        raise ValueError("cannot characterize an empty trace")
    url_counts = trace.url_counts()
    servers: dict[str, set[str]] = {}
    not_modified = 0
    sizes: list[float] = []
    for record in trace:
        host, _ = urls.split_host_path(record.url)
        servers.setdefault(host, set()).add(record.url)
        if record.is_not_modified:
            not_modified += 1
        if record.size > 0:
            sizes.append(float(record.size))
    resources_per_server = {h: len(rs) for h, rs in servers.items()}
    return ClientLogStats(
        days=trace.duration / 86400.0,
        requests=len(trace),
        distinct_servers=len(servers),
        unique_resources=len(url_counts),
        not_modified_fraction=not_modified / len(trace),
        mean_response_size=sum(sizes) / len(sizes) if sizes else 0.0,
        top_percent_server_resource_share=top_fraction_share(resources_per_server, 0.01),
    )
