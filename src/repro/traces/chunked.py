"""Compact on-disk chunk format for :class:`ChunkedCompiledTrace`.

Layout (all integers little-endian)::

    file    := HEADER frame* trailer FOOTER
    HEADER  := b"RPCHUNK1"
    frame   := b"CHNK" u32(payload_len) u32(crc32) payload
    trailer := b"TRLR" u32(payload_len) u32(crc32) payload
    FOOTER  := u64(trailer_byte_offset) b"RPCHKEND"

A chunk frame's payload carries the *new* URL/source/method strings this
chunk introduced (delta-encoded against the shared symbol tables, so ids
are assigned in stream order exactly as in-memory compilation assigns
them) followed by the columnar arrays: timestamps ``d``, source/url ids
and sizes ``q``, mtimes ``d`` (NaN for absent), statuses ``H``, method
ids ``B``.  The trailer carries the complete final URL table with
whole-trace access counts, so readers can install the full URL id space
*before* streaming the first chunk — that is what keeps one-pass
streaming consumers (which may need whole-trace access counts, e.g.
``precount_accesses`` replay configurations) bit-identical to the
in-memory engines without a second pass.

Every frame is CRC32-protected and the reader fails loudly with the
damaged byte offset on corruption or truncation (:class:`ChunkFileError`).
The reader is sequential: :meth:`ChunkedCompiledTrace.chunks` opens a
fresh file handle per pass and exactly one chunk is resident at a time.
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from collections.abc import Iterable, Iterator
from typing import BinaryIO

from .intern import DEFAULT_CHUNK_RECORDS, ChunkedCompiledTrace, TraceChunk
from .records import LogRecord

__all__ = [
    "ChunkFileError",
    "ChunkWriter",
    "write_chunked_trace",
    "open_chunked_trace",
    "verify_chunk_file",
]

MAGIC = b"RPCHUNK1"
END_MAGIC = b"RPCHKEND"
CHUNK_MARKER = b"CHNK"
TRAILER_MARKER = b"TRLR"

_FRAME_HEADER = struct.Struct("<4sII")  # marker, payload length, crc32
_FOOTER = struct.Struct("<Q8s")  # trailer offset, end magic
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_LITTLE_ENDIAN = sys.byteorder == "little"


class ChunkFileError(ValueError):
    """A chunk file is corrupt or truncated.

    ``offset`` is the byte offset of the damage (frame start for CRC
    mismatches, end of the readable bytes for truncation).
    """

    def __init__(self, message: str, offset: int) -> None:
        super().__init__(f"{message} (byte offset {offset})")
        self.offset = offset


def _array_bytes(column: array) -> bytes:
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        swapped = array(column.typecode, column)
        swapped.byteswap()
        return swapped.tobytes()
    return column.tobytes()


def _array_from(typecode: str, data: bytes) -> array:
    column = array(typecode)
    column.frombytes(data)
    if not _LITTLE_ENDIAN:  # pragma: no cover - big-endian hosts only
        column.byteswap()
    return column


def _pack_strings(strings: list[str]) -> bytes:
    parts = [_U32.pack(len(strings))]
    for string in strings:
        encoded = string.encode("utf-8")
        parts.append(_U32.pack(len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


class _PayloadReader:
    """Cursor over one frame's payload with truncation-checked reads."""

    __slots__ = ("_view", "_pos", "_base_offset")

    def __init__(self, payload: bytes, base_offset: int) -> None:
        self._view = memoryview(payload)
        self._pos = 0
        self._base_offset = base_offset

    def take(self, count: int, what: str) -> memoryview:
        end = self._pos + count
        if end > len(self._view):
            raise ChunkFileError(
                f"frame payload too short reading {what}",
                self._base_offset + len(self._view),
            )
        piece = self._view[self._pos:end]
        self._pos = end
        return piece

    def u32(self, what: str) -> int:
        value: int = _U32.unpack(self.take(4, what))[0]
        return value

    def u64(self, what: str) -> int:
        value: int = _U64.unpack(self.take(8, what))[0]
        return value

    def strings(self, what: str) -> list[str]:
        count = self.u32(f"{what} count")
        out: list[str] = []
        for _ in range(count):
            length = self.u32(f"{what} length")
            out.append(bytes(self.take(length, what)).decode("utf-8"))
        return out


class ChunkWriter:
    """Stream records into the on-disk chunk format.

    Owns a :class:`ChunkedCompiledTrace` as its interning context; chunks
    are flushed every ``chunk_records`` records, and :meth:`close` writes
    the URL-table trailer and footer.  Usable as a context manager.
    """

    def __init__(
        self, path: str, chunk_records: int = DEFAULT_CHUNK_RECORDS
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        self.path = path
        self.chunk_records = chunk_records
        self.context = ChunkedCompiledTrace()
        self.chunk_count = 0
        self._batch: list[LogRecord] = []
        self._flushed_urls = 0
        self._flushed_sources = 0
        self._flushed_methods = 0
        self._file: BinaryIO | None = open(path, "wb")
        self._file.write(MAGIC)

    @property
    def record_count(self) -> int:
        return self.context.record_count + len(self._batch)

    def append(self, record: LogRecord) -> None:
        self._batch.append(record)
        if len(self._batch) >= self.chunk_records:
            self._flush_batch()

    def extend(self, records: Iterable[LogRecord]) -> None:
        for record in records:
            self.append(record)

    def _write_frame(self, marker: bytes, payload: bytes) -> None:
        assert self._file is not None
        self._file.write(_FRAME_HEADER.pack(marker, len(payload), zlib.crc32(payload)))
        self._file.write(payload)

    def _flush_batch(self) -> None:
        if not self._batch:
            return
        context = self.context
        chunk = context.compile_chunk(self._batch)
        self._batch.clear()
        new_urls = context.urls.strings[self._flushed_urls:]
        new_sources = context.sources.strings[self._flushed_sources:]
        new_methods = context.methods.strings[self._flushed_methods:]
        self._flushed_urls = len(context.urls)
        self._flushed_sources = len(context.sources)
        self._flushed_methods = len(context.methods)
        payload = b"".join(
            (
                _U64.pack(chunk.start),
                _U32.pack(len(chunk)),
                _pack_strings(new_urls),
                _pack_strings(new_sources),
                _pack_strings(new_methods),
                _array_bytes(chunk.timestamps),
                _array_bytes(chunk.source_ids),
                _array_bytes(chunk.url_ids),
                _array_bytes(chunk.sizes),
                _array_bytes(chunk.mtimes),
                _array_bytes(chunk.statuses),
                _array_bytes(chunk.method_ids),
            )
        )
        self._write_frame(CHUNK_MARKER, payload)
        self.chunk_count += 1

    def close(self) -> None:
        """Flush pending records, write the trailer and footer, close the file."""
        if self._file is None:
            return
        self._flush_batch()
        context = self.context
        counts = array("Q", context.url_counts())
        trailer = b"".join(
            (
                _U64.pack(context.record_count),
                _U32.pack(self.chunk_count),
                _pack_strings(context.urls.strings),
                _array_bytes(counts),
            )
        )
        trailer_offset = self._file.tell()
        self._write_frame(TRAILER_MARKER, trailer)
        self._file.write(_FOOTER.pack(trailer_offset, END_MAGIC))
        self._file.close()
        self._file = None

    def __enter__(self) -> "ChunkWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def write_chunked_trace(
    records: Iterable[LogRecord],
    path: str,
    chunk_records: int = DEFAULT_CHUNK_RECORDS,
) -> tuple[int, int]:
    """Write *records* to *path*; returns (record_count, chunk_count)."""
    with ChunkWriter(path, chunk_records) as writer:
        writer.extend(records)
    return writer.context.record_count, writer.chunk_count


def _read_exact(handle: BinaryIO, count: int, offset: int, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise ChunkFileError(f"truncated chunk file reading {what}", offset + len(data))
    return data


def _read_frame(
    handle: BinaryIO, offset: int, expect: bytes | None = None
) -> tuple[bytes, bytes, int]:
    """Read one frame at *offset*; returns (marker, payload, next_offset)."""
    header = _read_exact(handle, _FRAME_HEADER.size, offset, "frame header")
    marker, length, crc = _FRAME_HEADER.unpack(header)
    if marker not in (CHUNK_MARKER, TRAILER_MARKER):
        raise ChunkFileError(f"unknown frame marker {marker!r}", offset)
    if expect is not None and marker != expect:
        raise ChunkFileError(
            f"expected {expect!r} frame, found {marker!r}", offset
        )
    payload = _read_exact(
        handle, length, offset + _FRAME_HEADER.size, "frame payload"
    )
    if zlib.crc32(payload) != crc:
        raise ChunkFileError(f"CRC mismatch in {marker!r} frame", offset)
    return marker, payload, offset + _FRAME_HEADER.size + length


def _decode_chunk(
    payload: bytes, payload_offset: int, context: ChunkedCompiledTrace
) -> TraceChunk:
    reader = _PayloadReader(payload, payload_offset)
    start = reader.u64("chunk start")
    count = reader.u32("record count")
    # Delta strings intern in stream order; on re-iteration (or after the
    # trailer preloaded the URL table) intern() is an idempotent lookup.
    for url in reader.strings("url delta"):
        context.urls.intern(url)
    for source in reader.strings("source delta"):
        context.sources.intern(source)
    for method in reader.strings("method delta"):
        context.methods.intern(method)
    chunk = TraceChunk(start=start)
    chunk.timestamps = _array_from("d", bytes(reader.take(8 * count, "timestamps")))
    chunk.source_ids = _array_from("q", bytes(reader.take(8 * count, "source ids")))
    chunk.url_ids = _array_from("q", bytes(reader.take(8 * count, "url ids")))
    chunk.sizes = _array_from("q", bytes(reader.take(8 * count, "sizes")))
    chunk.mtimes = _array_from("d", bytes(reader.take(8 * count, "mtimes")))
    chunk.statuses = _array_from("H", bytes(reader.take(2 * count, "statuses")))
    chunk.method_ids = _array_from("B", bytes(reader.take(count, "method ids")))
    return chunk


def _read_header(handle: BinaryIO) -> None:
    header = _read_exact(handle, len(MAGIC), 0, "file header")
    if header != MAGIC:
        raise ChunkFileError(f"not a chunk file (bad magic {header!r})", 0)


def _read_layout(handle: BinaryIO) -> tuple[int, int]:
    """Validate header/footer; returns (trailer_offset, file_size)."""
    _read_header(handle)
    handle.seek(0, 2)
    size = handle.tell()
    if size < len(MAGIC) + _FOOTER.size:
        raise ChunkFileError("chunk file too short for a footer", size)
    handle.seek(size - _FOOTER.size)
    trailer_offset, end_magic = _FOOTER.unpack(
        _read_exact(handle, _FOOTER.size, size - _FOOTER.size, "footer")
    )
    if end_magic != END_MAGIC:
        raise ChunkFileError(
            f"missing end magic (found {end_magic!r}); file was not finalized",
            size - _FOOTER.size,
        )
    if not len(MAGIC) <= trailer_offset <= size - _FOOTER.size:
        raise ChunkFileError(
            f"footer points outside the file (trailer offset {trailer_offset})",
            size - _FOOTER.size,
        )
    return trailer_offset, size


def open_chunked_trace(path: str) -> ChunkedCompiledTrace:
    """Bind a :class:`ChunkedCompiledTrace` to an on-disk chunk file.

    Reads the trailer eagerly (complete URL table + whole-trace access
    counts + record count) and returns a trace whose :meth:`chunks`
    re-opens the file and streams frames sequentially, one chunk resident
    at a time.  Raises :class:`ChunkFileError` on damage, naming the
    offset.
    """
    with open(path, "rb") as handle:
        trailer_offset, _ = _read_layout(handle)
        handle.seek(trailer_offset)
        _, trailer, _ = _read_frame(handle, trailer_offset, expect=TRAILER_MARKER)
    reader = _PayloadReader(trailer, trailer_offset + _FRAME_HEADER.size)
    record_count = reader.u64("record count")
    chunk_count = reader.u32("chunk count")
    url_strings = reader.strings("url table")
    counts = _array_from(
        "Q", bytes(reader.take(8 * len(url_strings), "url counts"))
    )

    def _stream() -> Iterator[TraceChunk]:
        with open(path, "rb") as chunks_handle:
            _read_header(chunks_handle)
            offset = len(MAGIC)
            for _ in range(chunk_count):
                _, payload, next_offset = _read_frame(
                    chunks_handle, offset, expect=CHUNK_MARKER
                )
                yield _decode_chunk(
                    payload, offset + _FRAME_HEADER.size, chunked
                )
                offset = next_offset

    chunked = ChunkedCompiledTrace(chunk_source=_stream)
    chunked.record_count = record_count
    chunked.preload_urls(url_strings, counts)
    return chunked


def verify_chunk_file(path: str) -> dict[str, int]:
    """Walk every frame, verifying CRCs; returns summary counts.

    Raises :class:`ChunkFileError` (with the damaged offset) on the first
    corrupt or truncated frame.
    """
    chunked = open_chunked_trace(path)
    records = 0
    chunk_frames = 0
    for chunk in chunked.chunks():
        records += len(chunk)
        chunk_frames += 1
    if records != chunked.record_count:
        raise ChunkFileError(
            f"trailer claims {chunked.record_count} records, frames hold {records}",
            0,
        )
    return {
        "records": records,
        "chunks": chunk_frames,
        "urls": len(chunked.urls),
        "sources": len(chunked.sources),
    }
