"""Pseudo-proxy trace extraction (Appendix A).

Server logs do not record which proxy sat in front of a group of clients,
so the paper post-processes server logs into *pseudo-proxy traces*: every
distinct source IP address is treated as one proxy site, and the server's
piggyback decisions are evaluated per source.  The extraction is inherently
conservative — requests satisfied inside a real proxy cache never reach the
server log — which the paper acknowledges and we preserve.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from .records import LogRecord, Trace

__all__ = ["PseudoProxy", "extract_pseudo_proxies", "aggregate_sources"]


@dataclass(frozen=True, slots=True)
class PseudoProxy:
    """One source IP reinterpreted as a proxy site."""

    source: str
    requests: tuple[LogRecord, ...]

    @property
    def request_count(self) -> int:
        return len(self.requests)

    def urls(self) -> set[str]:
        return {r.url for r in self.requests}


def extract_pseudo_proxies(trace: Trace, min_requests: int = 1) -> Iterator[PseudoProxy]:
    """Yield one :class:`PseudoProxy` per source with enough requests.

    Sources are yielded in decreasing order of request count so that callers
    sampling "busy proxies" can simply take a prefix.
    """
    if min_requests < 1:
        raise ValueError("min_requests must be >= 1")
    groups = trace.by_source()
    ordered = sorted(groups.items(), key=lambda item: (-len(item[1]), item[0]))
    for source, records in ordered:
        if len(records) >= min_requests:
            yield PseudoProxy(source=source, requests=tuple(records))


def aggregate_sources(trace: Trace, prefix_octets: int = 3) -> Trace:
    """Collapse sources sharing an address prefix into one pseudo-proxy.

    Requests from clients behind the same organization often arrive from a
    shared address block; grouping by the first *prefix_octets* octets of a
    dotted-quad address approximates a per-organization proxy.  Sources that
    do not look like dotted quads are left untouched.
    """
    if not 1 <= prefix_octets <= 4:
        raise ValueError("prefix_octets must be between 1 and 4")

    def collapse(source: str) -> str:
        octets = source.split(".")
        if len(octets) == 4 and all(o.isdigit() for o in octets):
            return ".".join(octets[:prefix_octets])
        return source

    return Trace(
        LogRecord(
            timestamp=r.timestamp,
            source=collapse(r.source),
            url=r.url,
            method=r.method,
            status=r.status,
            size=r.size,
            last_modified=r.last_modified,
        )
        for r in trace
    )
