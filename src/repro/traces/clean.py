"""Appendix-A log cleaning.

The paper prepares its logs before analysis:

* delete apparently uncachable responses (URLs containing ``cgi`` or a
  query ``?``),
* ensure time entries fall within the log's date range,
* combine identical resources (``http://www.foo.com/`` vs
  ``http://www.foo.com``), and
* focus on resources accessed at least ten times (these cover 98-99% of
  requests and keep probability-based volume construction tractable).

:func:`clean_trace` applies the full pipeline; the individual steps are
exposed for selective use.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import urls
from .records import Trace

__all__ = ["CleaningConfig", "CleaningReport", "clean_trace"]


@dataclass(frozen=True, slots=True)
class CleaningConfig:
    """Knobs for the Appendix-A cleaning pipeline."""

    drop_uncachable: bool = True
    canonicalize_urls: bool = True
    min_accesses: int = 10
    start_time: float | None = None
    end_time: float | None = None
    keep_methods: tuple[str, ...] = ("GET",)

    def __post_init__(self) -> None:
        if self.min_accesses < 0:
            raise ValueError("min_accesses must be non-negative")
        if (
            self.start_time is not None
            and self.end_time is not None
            and self.end_time < self.start_time
        ):
            raise ValueError("end_time must not precede start_time")


@dataclass(frozen=True, slots=True)
class CleaningReport:
    """What the cleaning pipeline removed, stage by stage."""

    input_records: int
    dropped_method: int
    dropped_time_range: int
    dropped_uncachable: int
    dropped_unpopular: int
    output_records: int

    @property
    def kept_fraction(self) -> float:
        if self.input_records == 0:
            return 1.0
        return self.output_records / self.input_records


def clean_trace(trace: Trace, config: CleaningConfig = CleaningConfig()) -> tuple[Trace, CleaningReport]:
    """Run the Appendix-A cleaning pipeline over *trace*.

    Returns the cleaned trace plus a :class:`CleaningReport` accounting for
    every dropped record.  Stages run in the paper's order: method filter,
    time-range check, uncachable removal, URL canonicalization, popularity
    floor.
    """
    input_records = len(trace)
    kept = list(trace)

    if config.keep_methods:
        allowed = {m.upper() for m in config.keep_methods}
        before = len(kept)
        kept = [r for r in kept if r.method.upper() in allowed]
        dropped_method = before - len(kept)
    else:
        dropped_method = 0

    before = len(kept)
    if config.start_time is not None:
        kept = [r for r in kept if r.timestamp >= config.start_time]
    if config.end_time is not None:
        kept = [r for r in kept if r.timestamp <= config.end_time]
    dropped_time_range = before - len(kept)

    if config.drop_uncachable:
        before = len(kept)
        kept = [r for r in kept if not urls.looks_uncachable(r.url)]
        dropped_uncachable = before - len(kept)
    else:
        dropped_uncachable = 0

    if config.canonicalize_urls:
        kept = [r.with_url(urls.canonicalize(r.url)) for r in kept]

    if config.min_accesses > 1:
        counts: dict[str, int] = {}
        for record in kept:
            counts[record.url] = counts.get(record.url, 0) + 1
        before = len(kept)
        kept = [r for r in kept if counts[r.url] >= config.min_accesses]
        dropped_unpopular = before - len(kept)
    else:
        dropped_unpopular = 0

    cleaned = Trace(kept)
    report = CleaningReport(
        input_records=input_records,
        dropped_method=dropped_method,
        dropped_time_range=dropped_time_range,
        dropped_uncachable=dropped_uncachable,
        dropped_unpopular=dropped_unpopular,
        output_records=len(cleaned),
    )
    return cleaned, report
