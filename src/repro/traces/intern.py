"""Interned, columnar trace representation for the high-throughput replay core.

The replay and estimation hot loops spend most of their time hashing URL
and source strings, re-parsing directory prefixes, and re-deriving content
types.  A :class:`CompiledTrace` does all of that exactly once: URLs and
sources are mapped to dense integer ids through :class:`SymbolTable`, the
records become parallel arrays of primitives, and per-URL derived columns
(wire bytes, content-type ids, directory-prefix ids per level, total
access counts) are computed on demand and then reused by every sweep point
that replays the same trace.

For traces too large to hold as whole-trace arrays there is
:class:`ChunkedCompiledTrace`: the same symbol tables and per-URL derived
columns, but the record columns live in fixed-size :class:`TraceChunk`
slabs that stream through the consumer one at a time.  Chunks can come
from an in-memory list (small traces, tests) or from the compact on-disk
format in :mod:`repro.traces.chunked`, so compile -> store -> iterate
never materializes the whole trace.  Because URLs are interned in stream
order in both representations, the id spaces agree and the streaming
engines stay bit-identical to the in-memory ones.

Compiling is cheap (one pass) and memoized per
:class:`~repro.traces.records.Trace` instance through a bounded
:class:`CompileCache` (LRU over weakly-referenced traces), so callers can
freely call :func:`compile_trace` wherever a fast path needs one without
leaking compilations in long-lived processes.
"""

from __future__ import annotations

import math
import weakref
from array import array
from collections import OrderedDict
from collections.abc import Callable, Iterable, Iterator
from typing import Union

from .. import urls as url_utils
from ..core.piggyback import ELEMENT_FIXED_BYTES
from ..telemetry import REGISTRY
from .records import LogRecord, Trace

__all__ = [
    "SymbolTable",
    "CompiledTrace",
    "TraceChunk",
    "ChunkedCompiledTrace",
    "CompileCache",
    "COMPILE_CACHE",
    "compile_trace",
    "DEFAULT_CHUNK_RECORDS",
]

_NAN = float("nan")

#: Default records per chunk: large enough that per-chunk overhead
#: (boundary syncs, frame headers) vanishes, small enough that one chunk's
#: columns are a few megabytes.
DEFAULT_CHUNK_RECORDS = 65536

_TEL_COMPILE_CACHE_HITS = REGISTRY.counter(
    "trace_compile_cache_hits_total",
    "compile_trace calls served from the bounded LRU cache",
)
_TEL_COMPILE_CACHE_MISSES = REGISTRY.counter(
    "trace_compile_cache_misses_total",
    "compile_trace calls that compiled a trace fresh",
)


class SymbolTable:
    """Bidirectional mapping between strings and dense integer ids.

    Ids are allocated in first-seen order starting at 0, so tables built
    from the same stream are identical and id arrays can index plain lists.
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []
        for string in strings:
            self.intern(string)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, string: str) -> bool:
        return string in self._ids

    def intern(self, string: str) -> int:
        """Return the id for *string*, allocating the next one if new."""
        existing = self._ids.get(string)
        if existing is not None:
            return existing
        next_id = len(self._strings)
        self._ids[string] = next_id
        self._strings.append(string)
        return next_id

    def id_of(self, string: str) -> int | None:
        """The id for *string*, or None if it was never interned."""
        return self._ids.get(string)

    def string(self, symbol_id: int) -> str:
        """The string for *symbol_id* (IndexError if unallocated)."""
        return self._strings[symbol_id]

    @property
    def strings(self) -> list[str]:
        """All interned strings, indexed by id.  Do not mutate."""
        return self._strings


class _InternedColumns:
    """Symbol tables plus lazily-built per-URL derived columns.

    Shared by the whole-trace :class:`CompiledTrace` and the streaming
    :class:`ChunkedCompiledTrace`; both keep the invariant that by the
    time a derived column is read, :attr:`urls` holds every URL the trace
    references, so columns are built once over the full table and only
    extended by :meth:`ensure_url`.
    """

    __slots__ = (
        "urls", "sources", "content_types",
        "_wire_bytes", "_content_type_ids", "_url_counts", "_prefix_columns",
    )

    def __init__(self) -> None:
        self.urls = SymbolTable()
        self.sources = SymbolTable()
        self.content_types = SymbolTable()
        self._wire_bytes: list[int] | None = None
        self._content_type_ids: list[int] | None = None
        self._url_counts: list[int] | None = None
        # level -> (SymbolTable of prefixes, list of prefix ids per url id)
        self._prefix_columns: dict[int, tuple[SymbolTable, list[int]]] = {}

    # -- per-URL derived columns -------------------------------------------

    def wire_bytes(self) -> list[int]:
        """Piggyback-element wire bytes per url id (paper's byte model)."""
        if self._wire_bytes is None:
            self._wire_bytes = [
                _element_wire_bytes(url) for url in self.urls.strings
            ]
        return self._wire_bytes

    def content_type_ids(self) -> list[int]:
        """Coarse content-type id per url id (see :func:`repro.urls.content_type_of`)."""
        if self._content_type_ids is None:
            intern = self.content_types.intern
            self._content_type_ids = [
                intern(url_utils.content_type_of(url)) for url in self.urls.strings
            ]
        return self._content_type_ids

    def content_type_id_set(self, names: Iterable[str]) -> frozenset[int]:
        """Intern a set of content-type names to ids (for excluded-type sets)."""
        self.content_type_ids()  # ensure the table is populated first
        return frozenset(self.content_types.intern(name) for name in names)

    def directory_prefix_ids(self, level: int) -> list[int]:
        """Level-*level* directory-prefix id per url id.

        Prefixes get their own dense id space per level (one
        :class:`SymbolTable` each), so two URLs share a volume exactly when
        their prefix ids are equal — no string comparison in the hot loop.
        """
        column = self._prefix_columns.get(level)
        if column is None:
            table = SymbolTable()
            intern = table.intern
            ids = [
                intern(url_utils.directory_prefix(url, level))
                for url in self.urls.strings
            ]
            column = (table, ids)
            self._prefix_columns[level] = column
        return column[1]

    def directory_prefix_table(self, level: int) -> SymbolTable:
        """The prefix symbol table backing :meth:`directory_prefix_ids`."""
        self.directory_prefix_ids(level)
        return self._prefix_columns[level][0]

    def ensure_url(self, url: str) -> int:
        """Intern a URL that may not appear in the trace, extending columns.

        Volume artifacts occasionally reference resources outside the
        replayed window (thinned or combined volumes); derived columns
        grow in step so id-indexed lookups stay valid.
        """
        known = len(self.urls)
        url_id = self.urls.intern(url)
        if url_id >= known:  # a genuinely new URL: extend built columns
            if self._wire_bytes is not None:
                self._wire_bytes.append(_element_wire_bytes(url))
            if self._content_type_ids is not None:
                self._content_type_ids.append(
                    self.content_types.intern(url_utils.content_type_of(url))
                )
            if self._url_counts is not None:
                self._url_counts.append(0)
            for level, (table, ids) in self._prefix_columns.items():
                ids.append(table.intern(url_utils.directory_prefix(url, level)))
        return url_id


class CompiledTrace(_InternedColumns):
    """A trace compiled to parallel primitive arrays plus symbol tables.

    Record columns (all indexed by record position):

    * ``timestamps`` — float seconds
    * ``source_ids`` / ``url_ids`` — dense ids into :attr:`sources` / :attr:`urls`
    * ``sizes`` — response bytes
    * ``mtimes`` — Last-Modified seconds, NaN when the record had none

    Per-URL derived columns (indexed by url id) are built lazily and
    cached: :meth:`wire_bytes`, :meth:`content_type_ids`,
    :meth:`directory_prefix_ids`, :meth:`url_counts`.
    """

    __slots__ = (
        "timestamps", "source_ids", "url_ids", "sizes", "mtimes",
        "__weakref__",
    )

    def __init__(self, trace: Iterable[LogRecord]) -> None:
        super().__init__()
        self.timestamps = array("d")
        self.source_ids = array("l")
        self.url_ids = array("l")
        self.sizes = array("q")
        self.mtimes = array("d")
        intern_url = self.urls.intern
        intern_source = self.sources.intern
        for record in trace:
            self.timestamps.append(record.timestamp)
            self.source_ids.append(intern_source(record.source))
            self.url_ids.append(intern_url(record.url))
            self.sizes.append(record.size)
            mtime = record.last_modified
            self.mtimes.append(_NAN if mtime is None else mtime)

    def __len__(self) -> int:
        return len(self.url_ids)

    def __repr__(self) -> str:
        return (
            f"CompiledTrace({len(self)} records, {len(self.urls)} urls, "
            f"{len(self.sources)} sources)"
        )

    def url_counts(self) -> list[int]:
        """Total access count per url id over the whole trace."""
        if self._url_counts is None:
            counts = [0] * len(self.urls)
            for url_id in self.url_ids:
                counts[url_id] += 1
            self._url_counts = counts
        return self._url_counts

    def has_mtime(self, index: int) -> bool:
        """True when record *index* carried a Last-Modified value."""
        return not math.isnan(self.mtimes[index])


class TraceChunk:
    """One fixed-size columnar slab of a :class:`ChunkedCompiledTrace`.

    Holds the same record columns as :class:`CompiledTrace` plus HTTP
    status and method-id columns so a chunk stream is a lossless container
    for :class:`~repro.traces.records.LogRecord` sequences (client-log
    statistics need statuses; round-tripping needs methods).  ``start`` is
    the chunk's global record offset in the trace.
    """

    __slots__ = (
        "start", "timestamps", "source_ids", "url_ids", "sizes", "mtimes",
        "statuses", "method_ids",
    )

    def __init__(self, start: int = 0) -> None:
        self.start = start
        self.timestamps = array("d")
        self.source_ids = array("q")
        self.url_ids = array("q")
        self.sizes = array("q")
        self.mtimes = array("d")
        self.statuses = array("H")
        self.method_ids = array("B")

    def __len__(self) -> int:
        return len(self.url_ids)

    def __repr__(self) -> str:
        return f"TraceChunk(start={self.start}, {len(self)} records)"

    def records(
        self, urls: SymbolTable, sources: SymbolTable, methods: SymbolTable
    ) -> Iterator[LogRecord]:
        """Reconstruct the chunk's records (needs the owning tables)."""
        url_strings = urls.strings
        source_strings = sources.strings
        method_strings = methods.strings
        for index in range(len(self.url_ids)):
            mtime = self.mtimes[index]
            yield LogRecord(
                timestamp=self.timestamps[index],
                source=source_strings[self.source_ids[index]],
                url=url_strings[self.url_ids[index]],
                method=method_strings[self.method_ids[index]],
                status=self.statuses[index],
                size=self.sizes[index],
                last_modified=None if math.isnan(mtime) else mtime,
            )


class ChunkedCompiledTrace(_InternedColumns):
    """A compiled trace whose record columns stream through fixed chunks.

    The symbol tables and per-URL derived columns are whole-trace (they
    are O(urls), which every consumer needs anyway); only the O(records)
    columns are chunked.  Two ways to get one:

    * :meth:`from_records` compiles an iterable into an in-memory chunk
      list (small traces, tests);
    * :func:`repro.traces.chunked.open_chunked_trace` binds one to an
      on-disk chunk file, where every :meth:`chunks` call re-reads the
      file sequentially and only one chunk is resident at a time.

    In both cases the URL table is complete before any consumer runs (the
    builder interned every URL; the file trailer carries the full table),
    so url ids, derived columns, and whole-trace access counts are
    identical to compiling the same records into a :class:`CompiledTrace`
    — the property the bit-identical streaming engines rely on.
    """

    __slots__ = (
        "methods", "record_count", "_chunks", "_chunk_source", "__weakref__",
    )

    def __init__(
        self,
        chunk_source: Callable[[], Iterator[TraceChunk]] | None = None,
    ) -> None:
        super().__init__()
        self.methods = SymbolTable()
        self.record_count = 0
        self._url_counts = []  # maintained eagerly while chunks are built
        self._chunks: list[TraceChunk] = []
        self._chunk_source = chunk_source

    @classmethod
    def from_records(
        cls,
        records: Iterable[LogRecord],
        chunk_records: int = DEFAULT_CHUNK_RECORDS,
    ) -> "ChunkedCompiledTrace":
        """Compile *records* into an in-memory chunk list."""
        if chunk_records < 1:
            raise ValueError("chunk_records must be >= 1")
        chunked = cls()
        batch: list[LogRecord] = []
        for record in records:
            batch.append(record)
            if len(batch) >= chunk_records:
                chunked._chunks.append(chunked.compile_chunk(batch))
                batch.clear()
        if batch:
            chunked._chunks.append(chunked.compile_chunk(batch))
        return chunked

    def __len__(self) -> int:
        return self.record_count

    def __repr__(self) -> str:
        backing = "file-backed" if self._chunk_source is not None else "in-memory"
        return (
            f"ChunkedCompiledTrace({self.record_count} records, "
            f"{len(self.urls)} urls, {backing})"
        )

    def compile_chunk(self, records: Iterable[LogRecord]) -> TraceChunk:
        """Intern and columnarize one batch of records into a new chunk.

        Updates the symbol tables, whole-trace access counts, and record
        count; the caller decides where the chunk lives (in-memory list,
        on-disk frame).
        """
        chunk = TraceChunk(start=self.record_count)
        intern_url = self.urls.intern
        intern_source = self.sources.intern
        intern_method = self.methods.intern
        counts = self._url_counts
        assert counts is not None  # eager for chunked traces
        timestamps = chunk.timestamps
        source_ids = chunk.source_ids
        url_ids = chunk.url_ids
        sizes = chunk.sizes
        mtimes = chunk.mtimes
        statuses = chunk.statuses
        method_ids = chunk.method_ids
        for record in records:
            timestamps.append(record.timestamp)
            source_ids.append(intern_source(record.source))
            url_id = intern_url(record.url)
            url_ids.append(url_id)
            sizes.append(record.size)
            mtime = record.last_modified
            mtimes.append(_NAN if mtime is None else mtime)
            statuses.append(record.status)
            method_ids.append(intern_method(record.method))
            if url_id == len(counts):
                counts.append(1)
            else:
                counts[url_id] += 1
        self.record_count += len(chunk)
        return chunk

    def preload_urls(self, url_strings: Iterable[str], counts: Iterable[int]) -> None:
        """Install the complete URL table and access counts up front.

        Used by the chunk-file reader: the trailer carries the final URL
        table, so consumers see the full id space before the first chunk
        streams (matching in-memory compilation, where the table is
        complete before any derived column is read).
        """
        for url in url_strings:
            self.urls.intern(url)
        assert self._url_counts is not None
        self._url_counts[:] = list(counts)
        if len(self._url_counts) != len(self.urls):
            raise ValueError(
                "url count column does not match the url table "
                f"({len(self._url_counts)} counts, {len(self.urls)} urls)"
            )

    def chunks(self) -> Iterator[TraceChunk]:
        """Iterate the trace's chunks in order (restartable).

        File-backed traces open a fresh sequential reader per call, so
        multi-pass consumers (estimator pass then replay pass; forked
        sweep workers) each stream the file independently.
        """
        if self._chunk_source is not None:
            return self._chunk_source()
        return iter(self._chunks)

    def records(self) -> Iterator[LogRecord]:
        """Reconstruct the full record stream (one chunk resident at a time)."""
        for chunk in self.chunks():
            yield from chunk.records(self.urls, self.sources, self.methods)

    def url_counts(self) -> list[int]:
        """Total access count per url id over the whole trace."""
        assert self._url_counts is not None
        return self._url_counts


#: Anything the fast engines accept as an already-compiled trace.
CompiledLike = Union[CompiledTrace, ChunkedCompiledTrace]


def _element_wire_bytes(url: str) -> int:
    """Wire bytes of one piggyback element for *url* (host part omitted)."""
    host, slash, path = url.partition("/")
    length = len(path) if slash else len(host)
    return length + ELEMENT_FIXED_BYTES


class CompileCache:
    """Bounded LRU of ``Trace -> CompiledTrace`` keyed by weak identity.

    Entries hold the trace only weakly (a dead trace's entry is removed by
    its weakref callback), and the cache is capped so long-lived processes
    compiling many streamed segments cannot accumulate compilations
    without bound.  :meth:`evict` drops a specific trace's entry — or
    everything — explicitly.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[weakref.ref[Trace], CompiledTrace] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, trace: Trace) -> CompiledTrace | None:
        """The cached compilation of *trace*, refreshing its LRU position.

        Raises TypeError for non-weakrefable inputs (the caller compiles
        fresh without caching).
        """
        key = weakref.ref(trace)
        compiled = self._entries.get(key)
        if compiled is not None:
            self._entries.move_to_end(key)
        return compiled

    def put(self, trace: Trace, compiled: CompiledTrace) -> None:
        """Insert (or refresh) an entry, evicting LRU entries over capacity."""
        key = weakref.ref(trace, self._entries_discard)
        self._entries[key] = compiled
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def _entries_discard(self, key: weakref.ref) -> None:
        self._entries.pop(key, None)

    def evict(self, trace: Trace | None = None) -> int:
        """Drop *trace*'s entry (or all entries when None); returns count dropped."""
        if trace is None:
            dropped = len(self._entries)
            self._entries.clear()
            return dropped
        try:
            key = weakref.ref(trace)
        except TypeError:
            return 0
        return 1 if self._entries.pop(key, None) is not None else 0


#: Process-global compile cache used by :func:`compile_trace`.
COMPILE_CACHE = CompileCache()


def compile_trace(trace: Trace | CompiledLike) -> CompiledLike:
    """Compile *trace* once; repeated calls return the cached compilation.

    Already-compiled inputs (whole-trace or chunked) pass through.  The
    cache is the bounded :data:`COMPILE_CACHE` LRU; hits and misses are
    counted in the ``trace_compile_cache_*`` telemetry pair.
    """
    if isinstance(trace, (CompiledTrace, ChunkedCompiledTrace)):
        return trace
    try:
        compiled = COMPILE_CACHE.get(trace)
    except TypeError:  # unhashable/unweakrefable inputs: compile fresh
        _TEL_COMPILE_CACHE_MISSES.inc()
        return CompiledTrace(trace)
    if compiled is not None:
        _TEL_COMPILE_CACHE_HITS.inc()
        return compiled
    _TEL_COMPILE_CACHE_MISSES.inc()
    compiled = CompiledTrace(trace)
    COMPILE_CACHE.put(trace, compiled)
    return compiled
