"""Interned, columnar trace representation for the high-throughput replay core.

The replay and estimation hot loops spend most of their time hashing URL
and source strings, re-parsing directory prefixes, and re-deriving content
types.  A :class:`CompiledTrace` does all of that exactly once: URLs and
sources are mapped to dense integer ids through :class:`SymbolTable`, the
records become parallel arrays of primitives, and per-URL derived columns
(wire bytes, content-type ids, directory-prefix ids per level, total
access counts) are computed on demand and then reused by every sweep point
that replays the same trace.

Compiling is cheap (one pass) and memoized per :class:`~repro.traces.records.Trace`
instance, so callers can freely call :func:`compile_trace` wherever a fast
path needs one.
"""

from __future__ import annotations

import math
from array import array
from collections.abc import Iterable
from weakref import WeakKeyDictionary

from .. import urls as url_utils
from ..core.piggyback import ELEMENT_FIXED_BYTES
from .records import Trace

__all__ = ["SymbolTable", "CompiledTrace", "compile_trace"]

_NAN = float("nan")


class SymbolTable:
    """Bidirectional mapping between strings and dense integer ids.

    Ids are allocated in first-seen order starting at 0, so tables built
    from the same stream are identical and id arrays can index plain lists.
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._ids: dict[str, int] = {}
        self._strings: list[str] = []
        for string in strings:
            self.intern(string)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, string: str) -> bool:
        return string in self._ids

    def intern(self, string: str) -> int:
        """Return the id for *string*, allocating the next one if new."""
        existing = self._ids.get(string)
        if existing is not None:
            return existing
        next_id = len(self._strings)
        self._ids[string] = next_id
        self._strings.append(string)
        return next_id

    def id_of(self, string: str) -> int | None:
        """The id for *string*, or None if it was never interned."""
        return self._ids.get(string)

    def string(self, symbol_id: int) -> str:
        """The string for *symbol_id* (IndexError if unallocated)."""
        return self._strings[symbol_id]

    @property
    def strings(self) -> list[str]:
        """All interned strings, indexed by id.  Do not mutate."""
        return self._strings


class CompiledTrace:
    """A trace compiled to parallel primitive arrays plus symbol tables.

    Record columns (all indexed by record position):

    * ``timestamps`` — float seconds
    * ``source_ids`` / ``url_ids`` — dense ids into :attr:`sources` / :attr:`urls`
    * ``sizes`` — response bytes
    * ``mtimes`` — Last-Modified seconds, NaN when the record had none

    Per-URL derived columns (indexed by url id) are built lazily and
    cached: :meth:`wire_bytes`, :meth:`content_type_ids`,
    :meth:`directory_prefix_ids`, :meth:`url_counts`.
    """

    __slots__ = (
        "urls", "sources", "timestamps", "source_ids", "url_ids",
        "sizes", "mtimes", "content_types",
        "_wire_bytes", "_content_type_ids", "_url_counts", "_prefix_columns",
        "__weakref__",
    )

    def __init__(self, trace: Iterable) -> None:
        self.urls = SymbolTable()
        self.sources = SymbolTable()
        self.content_types = SymbolTable()
        self.timestamps = array("d")
        self.source_ids = array("l")
        self.url_ids = array("l")
        self.sizes = array("q")
        self.mtimes = array("d")
        intern_url = self.urls.intern
        intern_source = self.sources.intern
        for record in trace:
            self.timestamps.append(record.timestamp)
            self.source_ids.append(intern_source(record.source))
            self.url_ids.append(intern_url(record.url))
            self.sizes.append(record.size)
            mtime = record.last_modified
            self.mtimes.append(_NAN if mtime is None else mtime)
        self._wire_bytes: list[int] | None = None
        self._content_type_ids: list[int] | None = None
        self._url_counts: list[int] | None = None
        # level -> (SymbolTable of prefixes, list of prefix ids per url id)
        self._prefix_columns: dict[int, tuple[SymbolTable, list[int]]] = {}

    def __len__(self) -> int:
        return len(self.url_ids)

    def __repr__(self) -> str:
        return (
            f"CompiledTrace({len(self)} records, {len(self.urls)} urls, "
            f"{len(self.sources)} sources)"
        )

    # -- per-URL derived columns -------------------------------------------

    def wire_bytes(self) -> list[int]:
        """Piggyback-element wire bytes per url id (paper's byte model)."""
        if self._wire_bytes is None:
            self._wire_bytes = [
                _element_wire_bytes(url) for url in self.urls.strings
            ]
        return self._wire_bytes

    def content_type_ids(self) -> list[int]:
        """Coarse content-type id per url id (see :func:`repro.urls.content_type_of`)."""
        if self._content_type_ids is None:
            intern = self.content_types.intern
            self._content_type_ids = [
                intern(url_utils.content_type_of(url)) for url in self.urls.strings
            ]
        return self._content_type_ids

    def content_type_id_set(self, names: Iterable[str]) -> frozenset[int]:
        """Intern a set of content-type names to ids (for excluded-type sets)."""
        self.content_type_ids()  # ensure the table is populated first
        return frozenset(self.content_types.intern(name) for name in names)

    def directory_prefix_ids(self, level: int) -> list[int]:
        """Level-*level* directory-prefix id per url id.

        Prefixes get their own dense id space per level (one
        :class:`SymbolTable` each), so two URLs share a volume exactly when
        their prefix ids are equal — no string comparison in the hot loop.
        """
        column = self._prefix_columns.get(level)
        if column is None:
            table = SymbolTable()
            intern = table.intern
            ids = [
                intern(url_utils.directory_prefix(url, level))
                for url in self.urls.strings
            ]
            column = (table, ids)
            self._prefix_columns[level] = column
        return column[1]

    def directory_prefix_table(self, level: int) -> SymbolTable:
        """The prefix symbol table backing :meth:`directory_prefix_ids`."""
        self.directory_prefix_ids(level)
        return self._prefix_columns[level][0]

    def url_counts(self) -> list[int]:
        """Total access count per url id over the whole trace."""
        if self._url_counts is None:
            counts = [0] * len(self.urls)
            for url_id in self.url_ids:
                counts[url_id] += 1
            self._url_counts = counts
        return self._url_counts

    def ensure_url(self, url: str) -> int:
        """Intern a URL that may not appear in the trace, extending columns.

        Volume artifacts occasionally reference resources outside the
        replayed window (thinned or combined volumes); derived columns
        grow in step so id-indexed lookups stay valid.
        """
        known = len(self.urls)
        url_id = self.urls.intern(url)
        if url_id >= known:  # a genuinely new URL: extend built columns
            if self._wire_bytes is not None:
                self._wire_bytes.append(_element_wire_bytes(url))
            if self._content_type_ids is not None:
                self._content_type_ids.append(
                    self.content_types.intern(url_utils.content_type_of(url))
                )
            if self._url_counts is not None:
                self._url_counts.append(0)
            for level, (table, ids) in self._prefix_columns.items():
                ids.append(table.intern(url_utils.directory_prefix(url, level)))
        return url_id

    def has_mtime(self, index: int) -> bool:
        """True when record *index* carried a Last-Modified value."""
        return not math.isnan(self.mtimes[index])


def _element_wire_bytes(url: str) -> int:
    """Wire bytes of one piggyback element for *url* (host part omitted)."""
    host, slash, path = url.partition("/")
    length = len(path) if slash else len(host)
    return length + ELEMENT_FIXED_BYTES


_COMPILE_CACHE: "WeakKeyDictionary[Trace, CompiledTrace]" = WeakKeyDictionary()


def compile_trace(trace: Trace) -> CompiledTrace:
    """Compile *trace* once; repeated calls return the cached compilation."""
    if isinstance(trace, CompiledTrace):
        return trace
    try:
        compiled = _COMPILE_CACHE.get(trace)
    except TypeError:  # unhashable/unweakrefable inputs: compile fresh
        return CompiledTrace(trace)
    if compiled is None:
        compiled = CompiledTrace(trace)
        try:
            _COMPILE_CACHE[trace] = compiled
        except TypeError:
            pass
    return compiled
