"""Log record model and trace containers.

Every component of the library consumes traces as sequences of
:class:`LogRecord` objects sorted by timestamp.  A record captures one HTTP
request as seen by a server or a proxy: when it happened, who issued it,
what was requested, and what came back.
"""

from __future__ import annotations

import bisect
from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace

__all__ = ["LogRecord", "Trace"]


@dataclass(frozen=True, slots=True, order=True)
class LogRecord:
    """One logged HTTP request.

    Ordering is by ``(timestamp, source, url)`` so a list of records can be
    sorted into trace order deterministically.
    """

    timestamp: float
    source: str
    url: str
    method: str = field(default="GET", compare=False)
    status: int = field(default=200, compare=False)
    size: int = field(default=0, compare=False)
    last_modified: float | None = field(default=None, compare=False)

    def with_url(self, url: str) -> "LogRecord":
        """Return a copy of this record with a different URL."""
        return replace(self, url=url)

    @property
    def is_get(self) -> bool:
        return self.method.upper() == "GET"

    @property
    def is_not_modified(self) -> bool:
        return self.status == 304


def _is_sorted(records: list[LogRecord]) -> bool:
    """True if *records* is already in ``(timestamp, source, url)`` order."""
    previous = None
    for record in records:
        if previous is not None and record < previous:
            return False
        previous = record
    return True


class Trace(Sequence[LogRecord]):
    """An immutable, time-sorted sequence of :class:`LogRecord` objects.

    The constructor sorts its input once — skipping the sort entirely when
    the input already arrives in time order, which is the common case for
    slices of existing traces and generated logs replayed in sweep loops.
    All accessors then rely on the sorted order (e.g. :meth:`between` uses
    binary search on timestamps).
    """

    def __init__(self, records: Iterable[LogRecord]) -> None:
        materialized = list(records)
        if not _is_sorted(materialized):
            materialized.sort()
        self._records: list[LogRecord] = materialized
        self._times: list[float] = [r.timestamp for r in materialized]

    @classmethod
    def _presorted(cls, records: list[LogRecord], times: list[float]) -> "Trace":
        """Internal: wrap an already-sorted record list without re-checking."""
        trace = cls.__new__(cls)
        trace._records = records
        trace._times = times
        return trace

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int | slice) -> "LogRecord | Trace":  # type: ignore[override]
        if isinstance(index, slice):
            return Trace._presorted(self._records[index], self._times[index])
        return self._records[index]

    def __iter__(self) -> Iterator[LogRecord]:
        return iter(self._records)

    def __repr__(self) -> str:
        if not self._records:
            return "Trace(empty)"
        return (
            f"Trace({len(self._records)} records, "
            f"t=[{self._times[0]:.0f}, {self._times[-1]:.0f}])"
        )

    @property
    def start_time(self) -> float:
        if not self._records:
            raise ValueError("empty trace has no start time")
        return self._times[0]

    @property
    def end_time(self) -> float:
        if not self._records:
            raise ValueError("empty trace has no end time")
        return self._times[-1]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time if self._records else 0.0

    def sources(self) -> set[str]:
        """Distinct request sources (client or proxy identifiers)."""
        return {r.source for r in self._records}

    def urls(self) -> set[str]:
        """Distinct requested URLs."""
        return {r.url for r in self._records}

    def between(self, start: float, end: float) -> "Trace":
        """Records with ``start <= timestamp < end`` (binary-searched)."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return Trace._presorted(self._records[lo:hi], self._times[lo:hi])

    def filter(self, predicate: Callable[[LogRecord], bool]) -> "Trace":
        """A new trace containing records for which *predicate* is true."""
        kept = [r for r in self._records if predicate(r)]
        return Trace._presorted(kept, [r.timestamp for r in kept])

    def map_urls(self, mapper: Callable[[str], str]) -> "Trace":
        """A new trace with every record's URL passed through *mapper*."""
        return Trace(r.with_url(mapper(r.url)) for r in self._records)

    def by_source(self) -> dict[str, list[LogRecord]]:
        """Records grouped by source, each group in time order."""
        groups: dict[str, list[LogRecord]] = {}
        for record in self._records:
            groups.setdefault(record.source, []).append(record)
        return groups

    def url_counts(self) -> dict[str, int]:
        """Access count per distinct URL."""
        return Counter(r.url for r in self._records)
