"""Trace substrate: log records, parsers, cleaning, and characterization."""

from .records import LogRecord, Trace
from .intern import (
    COMPILE_CACHE,
    ChunkedCompiledTrace,
    CompileCache,
    CompiledTrace,
    SymbolTable,
    TraceChunk,
    compile_trace,
)
from .chunked import (
    ChunkFileError,
    ChunkWriter,
    open_chunked_trace,
    verify_chunk_file,
    write_chunked_trace,
)
from .common_log import (
    LogParseError,
    format_record,
    parse_line,
    parse_lines,
    read_log,
    write_log,
)
from .clean import CleaningConfig, CleaningReport, clean_trace
from .pseudo_proxy import PseudoProxy, aggregate_sources, extract_pseudo_proxies
from .stats import (
    ClientLogStats,
    ServerLogStats,
    characterize_client_log,
    characterize_server_log,
    top_fraction_share,
)

__all__ = [
    "LogRecord",
    "Trace",
    "SymbolTable",
    "CompiledTrace",
    "TraceChunk",
    "ChunkedCompiledTrace",
    "CompileCache",
    "COMPILE_CACHE",
    "compile_trace",
    "ChunkFileError",
    "ChunkWriter",
    "open_chunked_trace",
    "verify_chunk_file",
    "write_chunked_trace",
    "LogParseError",
    "parse_line",
    "parse_lines",
    "read_log",
    "write_log",
    "format_record",
    "CleaningConfig",
    "CleaningReport",
    "clean_trace",
    "PseudoProxy",
    "extract_pseudo_proxies",
    "aggregate_sources",
    "ClientLogStats",
    "ServerLogStats",
    "characterize_client_log",
    "characterize_server_log",
    "top_fraction_share",
]
