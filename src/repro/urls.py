"""URL and pathname utilities shared across the library.

The paper groups resources by *directory prefix* (Section 3.2): a level-``k``
prefix of ``www.foo.com/a/b/c.html`` keeps the server name plus the first
``k`` directory components of the path.  Level 0 is the server itself, so a
0-level volume spans the whole site.

All functions operate on the canonical form produced by
:func:`canonicalize`: ``host/path`` with no scheme, no default port, no
trailing slash (except the bare root), and no query string.
"""

from __future__ import annotations

__all__ = [
    "canonicalize",
    "split_host_path",
    "directory_prefix",
    "directory_levels",
    "path_components",
    "is_query_url",
    "looks_uncachable",
    "content_type_of",
]

_SCHEME_PREFIXES = ("http://", "https://")

# Extension -> coarse content type, mirroring the typed resources the paper
# mentions (text, inline images, applets, ...).
_EXTENSION_TYPES = {
    "html": "text",
    "htm": "text",
    "txt": "text",
    "ps": "text",
    "pdf": "text",
    "xml": "text",
    "css": "text",
    "gif": "image",
    "jpg": "image",
    "jpeg": "image",
    "png": "image",
    "bmp": "image",
    "xbm": "image",
    "ico": "image",
    "class": "applet",
    "jar": "applet",
    "js": "applet",
    "mpg": "video",
    "mpeg": "video",
    "avi": "video",
    "mov": "video",
    "au": "audio",
    "wav": "audio",
    "mp3": "audio",
    "zip": "binary",
    "gz": "binary",
    "tar": "binary",
    "exe": "binary",
    "z": "binary",
}


def canonicalize(url: str) -> str:
    """Return the canonical ``host/path`` form of *url*.

    Strips the scheme, lowercases the host, removes a default port, drops
    fragments, and folds ``http://www.foo.com/`` and ``http://www.foo.com``
    into the same resource as Appendix A prescribes.  Query strings are kept
    (use :func:`is_query_url` to filter them out during cleaning).
    """
    url = url.strip()
    for prefix in _SCHEME_PREFIXES:
        if url.lower().startswith(prefix):
            url = url[len(prefix):]
            break
    fragment = url.find("#")
    if fragment >= 0:
        url = url[:fragment]
    host, _, path = url.partition("/")
    host = host.lower()
    if host.endswith(":80"):
        host = host[:-3]
    elif host.endswith(":443"):
        host = host[:-4]
    path = path.rstrip("/")
    if not path:
        return host
    return f"{host}/{path}"


def split_host_path(url: str) -> tuple[str, str]:
    """Split a canonical URL into ``(host, path)``; path has no leading /."""
    host, _, path = url.partition("/")
    return host, path


def path_components(url: str) -> list[str]:
    """Return the path components of a canonical URL (excluding the host)."""
    _, path = split_host_path(url)
    if not path:
        return []
    return path.split("/")


def directory_prefix(url: str, level: int) -> str:
    """Return the level-*level* directory prefix of a canonical URL.

    Level 0 is the host alone; level ``k`` keeps the host plus the first
    ``k`` directory components of the path.  The final component (the
    resource name itself) never counts toward the prefix, so
    ``directory_prefix("foo.com/a/b.html", 1)`` is ``"foo.com/a"`` and
    ``directory_prefix("foo.com/b.html", 1)`` is ``"foo.com"``.
    """
    if level < 0:
        raise ValueError(f"directory level must be >= 0, got {level}")
    host, path = split_host_path(url)
    if level == 0 or not path:
        return host
    directories = path.split("/")[:-1]
    kept = directories[:level]
    if not kept:
        return host
    return host + "/" + "/".join(kept)


def directory_levels(url: str) -> int:
    """Return the number of directory levels available in a canonical URL."""
    return max(len(path_components(url)) - 1, 0)


def is_query_url(url: str) -> bool:
    """True if the URL carries a query string (``?`` in the path)."""
    return "?" in url


def looks_uncachable(url: str) -> bool:
    """Apply the paper's Appendix-A uncachability heuristic.

    Resources whose URL contains the string ``cgi`` or a query ``?`` are
    treated as uncachable responses and removed during log cleaning.
    """
    return "cgi" in url.lower() or is_query_url(url)


def content_type_of(url: str) -> str:
    """Infer a coarse content type (text/image/applet/...) from the URL.

    Unknown or missing extensions map to ``"text"``: directory indexes and
    extension-less resources are overwhelmingly HTML in Web server logs.
    """
    _, path = split_host_path(url)
    name = path.rsplit("/", 1)[-1]
    if "." not in name:
        return "text"
    extension = name.rsplit(".", 1)[-1].lower()
    return _EXTENSION_TYPES.get(extension, "text")
