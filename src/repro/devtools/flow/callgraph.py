"""Project-wide call graph with class-hierarchy dispatch approximation.

This is the substrate for the interprocedural ``flow-*`` passes: a
module-resolved graph of every function and method in scope, with call
edges that survive the three things a per-function AST rule cannot see
through:

* **aliases** — ``import time as t``, ``from time import sleep``,
  relative imports, package re-exports, and module-level name bindings
  (``_sleep = time.sleep``) all resolve to canonical dotted names;
* **method dispatch** — ``self.volume_store.observe(...)`` resolves to
  *every* ``observe`` implementation reachable through the receiver's
  declared or inferred class, using class-hierarchy analysis (CHA):
  the static type's own definition, inherited definitions, and every
  subclass override;
* **call-site context** — each edge records its ``file:line`` plus
  whether the call is awaited and which lock-like ``with`` region (if
  any) lexically encloses it, so passes can report full evidence chains
  and reason about lock regions.

The graph is deliberately an over-approximation: an edge means "this
call *may* dispatch here".  Calls that cross threads by construction —
``Thread(target=fn)``, ``loop.run_in_executor(pool, fn)`` — produce no
edge because the callee is passed as data, never called, which is
exactly the semantics the event-loop passes need.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field

from ..lint.astutil import dotted_name, name_bindings, resolve_dotted
from ..lint.engine import SourceModule

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "CallSite",
    "AwaitSite",
    "CallGraph",
    "build_callgraph",
    "looks_like_lock",
]

_LOCK_MARKERS = ("lock", "mutex", "guard", "sem", "condition")

# Methods whose function argument runs on another thread (or executor):
# passing a callable to them must NOT create a call edge.
_DISPATCHING_ATTRS = frozenset({"run_in_executor", "submit", "map", "call_soon_threadsafe"})


def looks_like_lock(receiver: str | None) -> bool:
    """Heuristic: does this dotted receiver name a synchronization primitive?"""
    if not receiver:
        return False
    leaf = receiver.rsplit(".", 1)[-1].lower()
    return any(marker in leaf for marker in _LOCK_MARKERS)


@dataclass(frozen=True, slots=True)
class FunctionInfo:
    """One function or method in the project."""

    qualname: str
    module: str
    relpath: str
    name: str
    cls: str | None
    lineno: int
    is_async: bool

    @property
    def frame(self) -> str:
        return f"{self.relpath}:{self.lineno}"


@dataclass(slots=True)
class ClassInfo:
    """One class: resolved bases, own methods, inferred attribute types."""

    qualname: str
    module: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)
    attr_types: dict[str, set[str]] = field(default_factory=dict)


@dataclass(frozen=True, slots=True)
class CallSite:
    """One call expression inside one function."""

    caller: str
    relpath: str
    lineno: int
    col: int
    targets: tuple[str, ...]  # resolved project function qualnames (CHA set)
    external: str | None  # canonical dotted name outside the project
    attr: str | None  # unresolved method name (receiver type unknown)
    receiver: str | None  # textual receiver, for heuristics
    awaited: bool
    blocking_arg: bool  # acquire()-style call with blocking semantics
    lock_context: str | None  # innermost enclosing with-lock receiver

    @property
    def frame(self) -> str:
        return f"{self.relpath}:{self.lineno}"


@dataclass(frozen=True, slots=True)
class AwaitSite:
    """One ``await`` expression and its enclosing lock region, if any."""

    caller: str
    relpath: str
    lineno: int
    lock_context: str | None

    @property
    def frame(self) -> str:
        return f"{self.relpath}:{self.lineno}"


class CallGraph:
    """Functions, classes, and may-call edges over one set of modules."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.calls: dict[str, list[CallSite]] = {}
        self.awaits: dict[str, list[AwaitSite]] = {}
        self.module_functions: dict[str, dict[str, str]] = {}
        self.aliases: dict[str, str] = {}  # re-export name -> canonical name
        self.subclasses: dict[str, set[str]] = {}
        # AST node per function, for passes that need expression-level
        # analysis (determinism taint) on top of the resolved call sites.
        self.nodes: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}

    # -- canonical names ---------------------------------------------------

    def canonical(self, name: str) -> str:
        """Follow re-export aliases to the defining module's name."""
        seen = set()
        while name in self.aliases and name not in seen:
            seen.add(name)
            name = self.aliases[name]
        return name

    # -- hierarchy queries -------------------------------------------------

    def _ancestors(self, cls_qual: str) -> Iterator[str]:
        """*cls_qual* plus every project base class, DFS, cycle-safe."""
        stack = [cls_qual]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            info = self.classes.get(current)
            if info is not None:
                stack.extend(base for base in info.bases if base in self.classes)

    def _descendants(self, cls_qual: str) -> Iterator[str]:
        stack = [cls_qual]
        seen: set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            yield current
            stack.extend(self.subclasses.get(current, ()))

    def resolve_method(self, cls_qual: str, method: str) -> tuple[str, ...]:
        """CHA dispatch set for ``<cls>().<method>()``.

        The inherited definition (first hit walking up the bases) plus
        every override in the subclass tree — any of them may run.
        """
        targets: set[str] = set()
        for ancestor in self._ancestors(cls_qual):
            info = self.classes.get(ancestor)
            if info is not None and method in info.methods:
                targets.add(info.methods[method])
                break
        for descendant in self._descendants(cls_qual):
            info = self.classes.get(descendant)
            if info is not None and method in info.methods:
                targets.add(info.methods[method])
        return tuple(sorted(targets))

    def inherits_from(self, cls_qual: str, base_suffix: str) -> bool:
        """Does *cls_qual* (transitively) extend a base whose dotted name
        ends with *base_suffix* (e.g. ``asyncio.BufferedProtocol``)?"""
        for ancestor in self._ancestors(cls_qual):
            info = self.classes.get(ancestor)
            if info is None:
                continue
            for base in info.bases:
                if base == base_suffix or base.endswith("." + base_suffix) or (
                    "." in base_suffix and base.endswith(base_suffix)
                ):
                    return True
        return False

    def sites(self, qualname: str) -> Sequence[CallSite]:
        return self.calls.get(qualname, ())

    # -- export ------------------------------------------------------------

    def to_dot(self, *, include_external: bool = False) -> str:
        """Graphviz DOT rendering of the resolved call edges."""
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box, fontsize=9];"]
        emitted: set[tuple[str, str]] = set()
        for qualname in sorted(self.functions):
            lines.append(f'  "{qualname}";')
        for caller in sorted(self.calls):
            for site in self.calls[caller]:
                for target in site.targets:
                    if (caller, target) not in emitted:
                        emitted.add((caller, target))
                        lines.append(f'  "{caller}" -> "{target}";')
                if include_external and site.external is not None:
                    edge = (caller, site.external)
                    if edge not in emitted:
                        emitted.add(edge)
                        lines.append(
                            f'  "{site.external}" [shape=ellipse, style=dashed];\n'
                            f'  "{caller}" -> "{site.external}" [style=dashed];'
                        )
        lines.append("}")
        return "\n".join(lines)


# -- construction ----------------------------------------------------------


class _ModuleDecls:
    """Per-module context shared between the two build passes."""

    def __init__(self, sm: SourceModule) -> None:
        self.sm = sm
        self.modname = sm.module_name
        self.bindings = name_bindings(sm.tree, package=sm.package)
        # function qualname -> (node, class qualname or None)
        self.function_nodes: dict[str, tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]] = {}


def _direct_defs(
    body: Sequence[ast.stmt],
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Function defs at any statement depth, not inside nested defs."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
            continue
        if isinstance(node, (ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def build_callgraph(modules: Sequence[SourceModule]) -> CallGraph:
    """Build the whole-program graph for one set of parsed modules."""
    graph = CallGraph()
    decls = [_ModuleDecls(sm) for sm in modules if sm.module_name]

    # Pass A: declarations (classes, functions, re-export aliases).
    for decl in decls:
        _collect_declarations(graph, decl)
    _finalize_hierarchy(graph, decls)
    for decl in decls:
        _infer_attr_types(graph, decl)

    # Pass B: call edges.
    for decl in decls:
        for qualname, (node, cls_qual) in decl.function_nodes.items():
            graph.nodes[qualname] = node
            _collect_calls(graph, decl, qualname, node, cls_qual)
    return graph


def _collect_declarations(graph: CallGraph, decl: _ModuleDecls) -> None:
    modname = decl.modname
    graph.module_functions.setdefault(modname, {})

    # Re-export aliases: a binding `repro.volumes.DirectoryVolumeStore`
    # -> `repro.volumes.directory.DirectoryVolumeStore` lets later name
    # resolution reach the defining module.
    for local, target in decl.bindings.items():
        exported = f"{modname}.{local}"
        if exported != target:
            graph.aliases[exported] = target

    def declare_function(
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        prefix: str,
        cls_info: ClassInfo | None,
    ) -> None:
        qualname = f"{prefix}.{node.name}"
        if qualname in graph.functions:  # redefinition: keep the first
            return
        graph.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=modname,
            relpath=decl.sm.relpath,
            name=node.name,
            cls=cls_info.qualname if cls_info is not None else None,
            lineno=node.lineno,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        decl.function_nodes[qualname] = (node, cls_info.qualname if cls_info else None)
        if cls_info is not None:
            cls_info.methods.setdefault(node.name, qualname)
        elif prefix == modname:
            graph.module_functions[modname][node.name] = qualname
        for inner in _direct_defs(node.body):
            declare_function(inner, f"{qualname}.<locals>", None)

    def declare_class(node: ast.ClassDef, prefix: str) -> None:
        qualname = f"{prefix}.{node.name}"
        bases: list[str] = []
        for base in node.bases:
            base_dotted = dotted_name(base)
            if base_dotted is not None:
                bases.append(resolve_dotted(base_dotted, decl.bindings))
        info = ClassInfo(qualname=qualname, module=modname, bases=tuple(bases))
        graph.classes.setdefault(qualname, info)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                declare_function(stmt, qualname, info)
            elif isinstance(stmt, ast.ClassDef):
                declare_class(stmt, qualname)

    for stmt in decl.sm.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            declare_function(stmt, modname, None)
        elif isinstance(stmt, ast.ClassDef):
            declare_class(stmt, modname)


def _finalize_hierarchy(graph: CallGraph, decls: Sequence[_ModuleDecls]) -> None:
    """Canonicalize base names and build the subclass map."""
    for info in graph.classes.values():
        canonical_bases: list[str] = []
        for base in info.bases:
            resolved = graph.canonical(base)
            if "." not in resolved:
                # Bare name: try the declaring module's own namespace.
                local = f"{info.module}.{resolved}"
                if local in graph.classes:
                    resolved = local
            canonical_bases.append(resolved)
        info.bases = tuple(canonical_bases)
        for base in info.bases:
            if base in graph.classes:
                graph.subclasses.setdefault(base, set()).add(info.qualname)


def _resolve_class_name(graph: CallGraph, decl: _ModuleDecls, dotted: str) -> str | None:
    """Resolve a type-ish dotted name to a project class qualname."""
    resolved = graph.canonical(resolve_dotted(dotted, decl.bindings))
    if resolved in graph.classes:
        return resolved
    local = f"{decl.modname}.{resolved}"
    if "." not in resolved and local in graph.classes:
        return local
    return None


def _annotation_class(graph: CallGraph, decl: _ModuleDecls, annotation: ast.expr | None) -> str | None:
    """Project class named by a (possibly Optional/quoted) annotation."""
    if annotation is None:
        return None
    node: ast.expr = annotation
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        # T | None: prefer the class side.
        for side in (node.left, node.right):
            found = _annotation_class(graph, decl, side)
            if found is not None:
                return found
        return None
    if isinstance(node, ast.Subscript):  # Optional[T] / list[T]: look inside
        return _annotation_class(graph, decl, node.slice)
    dotted = dotted_name(node)
    if dotted is None:
        return None
    return _resolve_class_name(graph, decl, dotted)


def _infer_attr_types(graph: CallGraph, decl: _ModuleDecls) -> None:
    """Approximate ``self.<attr>`` types from assignments and annotations."""
    for qualname, (node, cls_qual) in decl.function_nodes.items():
        if cls_qual is None:
            continue
        info = graph.classes.get(cls_qual)
        if info is None:
            continue
        param_types = _parameter_types(graph, decl, node)
        for stmt in ast.walk(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            annotation: ast.expr | None = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign):
                target, value, annotation = stmt.target, stmt.value, stmt.annotation
            if (
                not isinstance(target, ast.Attribute)
                or not isinstance(target.value, ast.Name)
                or target.value.id != "self"
            ):
                continue
            attr = target.attr
            inferred = _annotation_class(graph, decl, annotation)
            if inferred is None and value is not None:
                inferred = _value_class(graph, decl, value, param_types)
            if inferred is not None:
                info.attr_types.setdefault(attr, set()).add(inferred)

    # Class-body annotations (`store: VolumeStore`) count too.
    for info in graph.classes.values():
        if info.module != decl.modname:
            continue
        cls_node = _class_node(decl, info.qualname)
        if cls_node is None:
            continue
        for stmt in cls_node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                inferred = _annotation_class(graph, decl, stmt.annotation)
                if inferred is not None:
                    info.attr_types.setdefault(stmt.target.id, set()).add(inferred)


def _class_node(decl: _ModuleDecls, qualname: str) -> ast.ClassDef | None:
    """Find the ClassDef node for a class declared in this module."""
    suffix = qualname[len(decl.modname) + 1 :] if qualname.startswith(decl.modname + ".") else None
    if not suffix:
        return None
    parts = suffix.split(".")
    body: Sequence[ast.stmt] = decl.sm.tree.body
    node: ast.ClassDef | None = None
    for part in parts:
        node = None
        for stmt in body:
            if isinstance(stmt, ast.ClassDef) and stmt.name == part:
                node = stmt
                body = stmt.body
                break
        if node is None:
            return None
    return node


def _value_class(
    graph: CallGraph,
    decl: _ModuleDecls,
    value: ast.expr,
    param_types: dict[str, str],
) -> str | None:
    """Class qualname a value expression constructs or forwards."""
    if isinstance(value, ast.Call):
        call_dotted = dotted_name(value.func)
        if call_dotted is not None:
            return _resolve_class_name(graph, decl, call_dotted)
        return None
    if isinstance(value, ast.Name):
        return param_types.get(value.id)
    return None


def _parameter_types(
    graph: CallGraph, decl: _ModuleDecls, node: ast.FunctionDef | ast.AsyncFunctionDef
) -> dict[str, str]:
    types: dict[str, str] = {}
    args = list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs)
    for arg in args:
        found = _annotation_class(graph, decl, arg.annotation)
        if found is not None:
            types[arg.arg] = found
    return types


def _local_types(
    graph: CallGraph,
    decl: _ModuleDecls,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[str, str]:
    """Local variable name -> project class, from ctor calls/annotations."""
    types = _parameter_types(graph, decl, node)
    for stmt in _statements_no_nested(node.body):
        target: ast.expr | None = None
        value: ast.expr | None = None
        annotation: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            target, value, annotation = stmt.target, stmt.value, stmt.annotation
        if not isinstance(target, ast.Name):
            continue
        inferred = _annotation_class(graph, decl, annotation)
        if inferred is None and value is not None:
            inferred = _value_class(graph, decl, value, types)
        if inferred is not None:
            types[target.id] = inferred
    return types


def _statements_no_nested(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _with_lock_name(item: ast.withitem) -> str | None:
    context = item.context_expr
    if isinstance(context, ast.Call):
        context = context.func  # `with self._lock.acquire_timeout():` style
    dotted = dotted_name(context)
    if dotted is not None and looks_like_lock(dotted):
        return dotted
    return None


def _collect_calls(
    graph: CallGraph,
    decl: _ModuleDecls,
    qualname: str,
    node: ast.FunctionDef | ast.AsyncFunctionDef,
    cls_qual: str | None,
) -> None:
    local_types = _local_types(graph, decl, node)
    sites: list[CallSite] = []
    await_sites: list[AwaitSite] = []

    def visit(current: ast.AST, lock: str | None, awaited: bool) -> None:
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            return
        if isinstance(current, (ast.With, ast.AsyncWith)):
            # `async with` guards with asyncio primitives, which park the
            # coroutine, not the loop thread — only sync `with` regions
            # count as held-lock context.
            inner_lock = lock
            for item in current.items:
                visit(item.context_expr, lock, False)
                if item.optional_vars is not None:
                    visit(item.optional_vars, lock, False)
                if isinstance(current, ast.With):
                    lock_name = _with_lock_name(item)
                    if lock_name is not None:
                        inner_lock = lock_name
            for stmt in current.body:
                visit(stmt, inner_lock, False)
            return
        if isinstance(current, ast.Await):
            await_sites.append(
                AwaitSite(
                    caller=qualname,
                    relpath=decl.sm.relpath,
                    lineno=current.lineno,
                    lock_context=lock,
                )
            )
            visit(current.value, lock, True)
            return
        if isinstance(current, ast.Call):
            sites.append(_resolve_call(graph, decl, qualname, cls_qual, current, lock, awaited, local_types))
            for child in ast.iter_child_nodes(current):
                if child is not current.func or not isinstance(child, (ast.Name, ast.Attribute)):
                    visit(child, lock, False)
            return
        for child in ast.iter_child_nodes(current):
            visit(child, lock, False)

    for stmt in node.body:
        visit(stmt, None, False)
    graph.calls[qualname] = sites
    graph.awaits[qualname] = await_sites


def _call_blocking_arg(call: ast.Call) -> bool:
    """Does an ``acquire()``-style call block (no ``blocking=False``)?"""
    for arg in call.args[:1]:
        if isinstance(arg, ast.Constant) and arg.value in (False, 0):
            return False
    for keyword in call.keywords:
        if keyword.arg == "blocking" and isinstance(keyword.value, ast.Constant):
            if keyword.value.value in (False, 0):
                return False
    return True


def _make_site(
    decl: _ModuleDecls,
    qualname: str,
    call: ast.Call,
    lock: str | None,
    awaited: bool,
    *,
    targets: Iterable[str] = (),
    external: str | None = None,
    attr: str | None = None,
    receiver: str | None = None,
) -> CallSite:
    return CallSite(
        caller=qualname,
        relpath=decl.sm.relpath,
        lineno=call.lineno,
        col=call.col_offset,
        targets=tuple(sorted(set(targets))),
        external=external,
        attr=attr,
        receiver=receiver,
        awaited=awaited,
        blocking_arg=_call_blocking_arg(call),
        lock_context=lock,
    )


def _resolve_call(
    graph: CallGraph,
    decl: _ModuleDecls,
    qualname: str,
    cls_qual: str | None,
    call: ast.Call,
    lock: str | None,
    awaited: bool,
    local_types: dict[str, str],
) -> CallSite:
    func = call.func

    # `super().method()` -> dispatch up the hierarchy only.
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Call)
        and isinstance(func.value.func, ast.Name)
        and func.value.func.id == "super"
        and cls_qual is not None
    ):
        info = graph.classes.get(cls_qual)
        targets: list[str] = []
        if info is not None:
            for base in info.bases:
                targets.extend(graph.resolve_method(base, func.attr))
        return _make_site(
            decl, qualname, call, lock, awaited, targets=targets, attr=func.attr, receiver="super()"
        )

    if isinstance(func, ast.Name):
        name = func.id
        nested = f"{qualname}.<locals>.{name}"
        if nested in graph.functions:
            return _make_site(decl, qualname, call, lock, awaited, targets=(nested,))
        module_fn = graph.module_functions.get(decl.modname, {}).get(name)
        if module_fn is not None:
            return _make_site(decl, qualname, call, lock, awaited, targets=(module_fn,))
        resolved = graph.canonical(resolve_dotted(name, decl.bindings))
        if resolved in graph.functions:
            return _make_site(decl, qualname, call, lock, awaited, targets=(resolved,))
        if resolved in graph.classes:
            ctor = graph.resolve_method(resolved, "__init__")
            return _make_site(
                decl, qualname, call, lock, awaited, targets=ctor, external=resolved
            )
        return _make_site(decl, qualname, call, lock, awaited, external=resolved)

    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = func.value
        receiver_dotted = dotted_name(receiver)

        # self.method() / self.attr.method()
        if receiver_dotted is not None and cls_qual is not None:
            if receiver_dotted == "self":
                targets = list(graph.resolve_method(cls_qual, attr))
                if targets:
                    return _make_site(
                        decl, qualname, call, lock, awaited, targets=targets,
                        attr=attr, receiver=receiver_dotted,
                    )
                return _make_site(
                    decl, qualname, call, lock, awaited, attr=attr, receiver=receiver_dotted
                )
            head, _, rest = receiver_dotted.partition(".")
            if head == "self" and rest and "." not in rest:
                attr_classes: set[str] = set()
                for ancestor in graph._ancestors(cls_qual):
                    ancestor_info = graph.classes.get(ancestor)
                    if ancestor_info is not None:
                        attr_classes.update(ancestor_info.attr_types.get(rest, ()))
                targets = []
                for attr_cls in attr_classes:
                    targets.extend(graph.resolve_method(attr_cls, attr))
                if targets:
                    return _make_site(
                        decl, qualname, call, lock, awaited, targets=targets,
                        attr=attr, receiver=receiver_dotted,
                    )

        # local/parameter with an inferred project type
        if isinstance(receiver, ast.Name) and receiver.id in local_types:
            targets = list(graph.resolve_method(local_types[receiver.id], attr))
            if targets:
                return _make_site(
                    decl, qualname, call, lock, awaited, targets=targets,
                    attr=attr, receiver=receiver.id,
                )

        if receiver_dotted is not None:
            resolved = graph.canonical(resolve_dotted(receiver_dotted, decl.bindings))
            # ClassName.method (unbound/static reference)
            if resolved in graph.classes:
                targets = list(graph.resolve_method(resolved, attr))
                if targets:
                    return _make_site(
                        decl, qualname, call, lock, awaited, targets=targets,
                        attr=attr, receiver=receiver_dotted,
                    )
            # module.function through an import alias
            full = graph.canonical(f"{resolved}.{attr}")
            if full in graph.functions:
                return _make_site(decl, qualname, call, lock, awaited, targets=(full,))
            if full in graph.classes:
                ctor = graph.resolve_method(full, "__init__")
                return _make_site(
                    decl, qualname, call, lock, awaited, targets=ctor, external=full
                )
            # external dotted call (time.sleep, os.fsync, sock.recv, ...)
            return _make_site(
                decl, qualname, call, lock, awaited,
                external=full if "." in resolved or resolved in decl.bindings.values() else None,
                attr=attr, receiver=receiver_dotted,
            )

        # receiver is an arbitrary expression: unresolved attribute call
        return _make_site(decl, qualname, call, lock, awaited, attr=attr)

    return _make_site(decl, qualname, call, lock, awaited)
