"""Whole-program (interprocedural) analysis over the repro source tree.

``repro.devtools.flow`` layers a project call graph on top of the AST
lint engine (:mod:`repro.devtools.lint`) and runs three chain-aware
passes over it:

* :class:`~repro.devtools.flow.rules.FlowBlockingReachableRule`
  (``flow-blocking-reachable``) — transitive blocking reachability from
  the event-loop surface;
* :class:`~repro.devtools.flow.rules.FlowLockAcrossBlockingRule`
  (``flow-lock-across-blocking``) — lock regions that reach blocking
  operations at any depth, and awaits under sync locks;
* :class:`~repro.devtools.flow.rules.FlowDeterminismTaintRule`
  (``flow-determinism-taint``) — nondeterministic data flowing into
  piggyback trailers, journal records, or replay metrics.

Run them with ``repro lint --interprocedural``; export the graph with
``repro flow --dot``.
"""

from .callgraph import (
    AwaitSite,
    CallGraph,
    CallSite,
    ClassInfo,
    FunctionInfo,
    build_callgraph,
    looks_like_lock,
)
from .rules import (
    FlowBlockingReachableRule,
    FlowDeterminismTaintRule,
    FlowLockAcrossBlockingRule,
    blocking_witnesses,
)

__all__ = [
    "AwaitSite",
    "CallGraph",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "build_callgraph",
    "blocking_witnesses",
    "looks_like_lock",
    "FlowBlockingReachableRule",
    "FlowDeterminismTaintRule",
    "FlowLockAcrossBlockingRule",
]
