"""Interprocedural ``flow-*`` passes over the project call graph.

Three whole-program properties that per-file rules structurally cannot
check, because the offending code is always *somewhere else*:

* ``flow-blocking-reachable`` — no call chain from the event-loop
  surface (coroutines and protocol callbacks in ``repro.httpwire.aio``
  and the async LB front tier ``repro.lb.aio``)
  may reach a synchronous sleep/fsync/socket/lock-acquire, at any depth;
* ``flow-lock-across-blocking`` — a ``with <lock>:`` region must not
  call, at any depth, something that blocks, and a coroutine must not
  ``await`` while holding a sync lock;
* ``flow-determinism-taint`` — wall-clock, RNG, ``id()``, and
  set-iteration order must not flow (through any number of returns)
  into piggyback trailer bytes, journal records, or replay metrics.

Every finding carries the full call chain as ``file:line`` evidence
frames, so ``# repro: allow[...]`` on *any* frame (e.g. the documented
fsync-before-apply site in the durability journal) waives every chain
through that frame.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..lint.engine import Finding, ProjectRule, SourceModule, register
from .callgraph import CallGraph, CallSite, build_callgraph, looks_like_lock

__all__ = [
    "FlowBlockingReachableRule",
    "FlowLockAcrossBlockingRule",
    "FlowDeterminismTaintRule",
    "blocking_witnesses",
    "cached_callgraph",
]

_MAX_DEPTH = 25

# Calls that always block the calling thread, by canonical dotted name.
BLOCKING_EXTERNAL = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "socket.create_connection",
        "select.select",
        "open",
    }
)

# Attribute calls that block on a socket when the receiver is unresolved.
SOCKET_ATTRS = frozenset(
    {
        "recv",
        "recv_into",
        "recvfrom",
        "sendall",
        "sendto",
        "accept",
        "connect",
        "connect_ex",
        "makefile",
    }
)

_AIO_PREFIXES = ("repro.httpwire.aio", "repro.lb.aio")
_PROTOCOL_BASES = ("asyncio.BufferedProtocol", "asyncio.Protocol")


# -- shared graph cache ----------------------------------------------------

_CACHE_KEY: tuple[tuple[str, str], ...] | None = None
_CACHE_GRAPH: CallGraph | None = None


def cached_callgraph(modules: Sequence[SourceModule]) -> CallGraph:
    """Build (or reuse) the call graph for one run's module set.

    The three flow rules run back-to-back over the same parsed modules;
    graph construction dominates their cost, so one run shares a graph.
    """
    global _CACHE_KEY, _CACHE_GRAPH
    key = tuple((m.relpath, m.source[:64]) for m in modules)
    if _CACHE_GRAPH is None or key != _CACHE_KEY:
        _CACHE_GRAPH = build_callgraph(modules)
        _CACHE_KEY = key
    return _CACHE_GRAPH


# -- blocking reachability substrate ---------------------------------------


@dataclass(frozen=True, slots=True)
class Witness:
    """Shortest known chain from a function down to a blocking site."""

    frames: tuple[str, ...]  # file:line of each call along the chain
    chain: tuple[str, ...]  # function qualnames, caller first
    sink: str  # human description of the blocking operation
    depth: int


def _direct_block(
    site: CallSite, *, include_acquire: bool, include_open: bool
) -> str | None:
    """Describe the blocking operation a site performs directly, if any."""
    if site.awaited:
        return None
    if site.external in BLOCKING_EXTERNAL:
        if site.external == "open" and not include_open:
            return None
        return f"{site.external}()"
    if site.targets:
        return None  # resolved project call: traverse into it instead
    if site.attr in SOCKET_ATTRS:
        receiver = site.receiver or "<socket>"
        return f"{receiver}.{site.attr}()"
    if (
        include_acquire
        and site.attr == "acquire"
        and site.blocking_arg
        and looks_like_lock(site.receiver)
    ):
        return f"{site.receiver}.acquire()"
    return None


def blocking_witnesses(
    graph: CallGraph, *, include_acquire: bool, include_open: bool
) -> dict[str, Witness]:
    """Map each function that may block (directly or transitively) to a
    shortest evidence chain, via reverse BFS from the direct sites."""
    witness: dict[str, Witness] = {}
    queue: deque[str] = deque()
    for fn in sorted(graph.calls):
        for site in graph.calls[fn]:
            desc = _direct_block(
                site, include_acquire=include_acquire, include_open=include_open
            )
            if desc is not None and fn not in witness:
                witness[fn] = Witness(
                    frames=(site.frame,), chain=(fn,), sink=desc, depth=0
                )
                queue.append(fn)

    reverse: dict[str, list[tuple[str, CallSite]]] = {}
    for fn in sorted(graph.calls):
        for site in graph.calls[fn]:
            for target in site.targets:
                reverse.setdefault(target, []).append((fn, site))

    while queue:
        callee = queue.popleft()
        found = witness[callee]
        if found.depth >= _MAX_DEPTH:
            continue
        for caller, site in reverse.get(callee, ()):
            if caller in witness:
                continue
            witness[caller] = Witness(
                frames=(site.frame,) + found.frames,
                chain=(caller,) + found.chain,
                sink=found.sink,
                depth=found.depth + 1,
            )
            queue.append(caller)
    return witness


def _chain_text(chain: Sequence[str], sink: str) -> str:
    return " -> ".join(chain) + f" -> {sink}"


def _anchored_finding(
    rule: ProjectRule,
    by_path: dict[str, SourceModule],
    site: CallSite,
    message: str,
    evidence: Sequence[str],
) -> Finding | None:
    module = by_path.get(site.relpath)
    if module is None:
        return None
    return module.finding(rule, None, message, line=site.lineno, evidence=evidence)


@register
class FlowBlockingReachableRule(ProjectRule):
    id = "flow-blocking-reachable"
    family = "flow"
    interprocedural = True
    description = (
        "No call chain from a coroutine or protocol callback in the "
        "async wire stack may reach a blocking sleep/fsync/socket/"
        "acquire at any depth."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        graph = cached_callgraph(modules)
        by_path = {m.relpath: m for m in modules}
        witness = blocking_witnesses(graph, include_acquire=True, include_open=True)

        roots: list[str] = []
        for qualname in sorted(graph.functions):
            info = graph.functions[qualname]
            if info.is_async and info.module.startswith(_AIO_PREFIXES):
                roots.append(qualname)
            elif info.cls is not None and info.module.startswith(_AIO_PREFIXES):
                # Sync protocol callbacks (buffer_updated, eof_received,
                # connection_made, ...) also run on the loop thread.
                if any(graph.inherits_from(info.cls, base) for base in _PROTOCOL_BASES):
                    roots.append(qualname)

        for root in roots:
            reported: set[tuple[str, str]] = set()
            for site in graph.sites(root):
                best: Witness | None = None
                for target in site.targets:
                    found = witness.get(target)
                    if found is not None and (best is None or found.depth < best.depth):
                        best = found
                if best is None:
                    continue
                key = (best.chain[-1], best.sink)
                if key in reported:
                    continue
                reported.add(key)
                # Depth 0 at the root itself is the intraprocedural aio
                # family's job; this pass starts at depth 1.
                chain = (root,) + best.chain
                frames = (site.frame,) + best.frames
                finding = _anchored_finding(
                    self,
                    by_path,
                    site,
                    f"event-loop entry point {root}() reaches blocking "
                    f"{best.sink} through {_chain_text(chain, best.sink)}",
                    frames,
                )
                if finding is not None:
                    yield finding


@register
class FlowLockAcrossBlockingRule(ProjectRule):
    id = "flow-lock-across-blocking"
    family = "flow"
    interprocedural = True
    description = (
        "A `with <lock>:` region must not call anything that blocks at "
        "any depth, and a coroutine must not await while holding a "
        "sync lock."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        graph = cached_callgraph(modules)
        by_path = {m.relpath: m for m in modules}
        # Lock acquisition chains are the lock-order monitor's domain,
        # and plain file writes under a lock are the journal's working
        # idiom — fsync and sleeps and sockets are what must not hide
        # under a held lock.
        witness = blocking_witnesses(graph, include_acquire=False, include_open=False)

        for fn in sorted(graph.calls):
            reported: set[tuple[str, str, str]] = set()
            for site in graph.calls[fn]:
                if site.lock_context is None:
                    continue
                best: Witness | None = None
                for target in site.targets:
                    found = witness.get(target)
                    if found is not None and (best is None or found.depth < best.depth):
                        best = found
                if best is None:
                    continue
                key = (site.lock_context, best.chain[-1], best.sink)
                if key in reported:
                    continue
                reported.add(key)
                chain = (fn,) + best.chain
                frames = (site.frame,) + best.frames
                finding = _anchored_finding(
                    self,
                    by_path,
                    site,
                    f"holding `{site.lock_context}`, {fn}() reaches blocking "
                    f"{best.sink} through {_chain_text(chain, best.sink)}",
                    frames,
                )
                if finding is not None:
                    yield finding

            info = graph.functions.get(fn)
            if info is not None and info.is_async:
                for await_site in graph.awaits.get(fn, ()):
                    if await_site.lock_context is None:
                        continue
                    module = by_path.get(await_site.relpath)
                    if module is None:
                        continue
                    yield module.finding(
                        self,
                        None,
                        f"coroutine {fn}() awaits while holding sync lock "
                        f"`{await_site.lock_context}` — the lock is held "
                        f"across a suspension point",
                        line=await_site.lineno,
                        evidence=(await_site.frame,),
                    )


# -- determinism taint -----------------------------------------------------

VALUE_SOURCES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.sample",
        "random.getrandbits",
        "random.uniform",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "id",
    }
)

_ORDER_SANITIZERS = frozenset({"sorted", "min", "max", "len", "sum", "any", "all"})

_VALUE = "value"  # nondeterministic value (wall clock, RNG, id())
_ORDER = "order"  # nondeterministic iteration order (sets)


@dataclass(frozen=True, slots=True)
class _Taint:
    kinds: frozenset[str]
    frames: tuple[str, ...]
    label: str  # the originating source, e.g. "time.time()"

    @classmethod
    def none(cls) -> "_Taint":
        return _NO_TAINT

    def merge(self, other: "_Taint") -> "_Taint":
        if not other.kinds:
            return self
        if not self.kinds:
            return other
        # Prefer a value-taint witness over an order-taint one.
        primary = self if (_VALUE in self.kinds or _VALUE not in other.kinds) else other
        return _Taint(self.kinds | other.kinds, primary.frames, primary.label)

    def without_order(self) -> "_Taint":
        if _ORDER not in self.kinds:
            return self
        return _Taint(self.kinds - {_ORDER}, self.frames, self.label)


_NO_TAINT = _Taint(frozenset(), (), "")


def _ordered_statements(body: Sequence[ast.stmt]) -> Iterable[ast.stmt]:
    """Statements in source order, without entering nested defs."""
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield stmt
        if isinstance(stmt, ast.If):
            yield from _ordered_statements(stmt.body)
            yield from _ordered_statements(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
            yield from _ordered_statements(stmt.body)
            yield from _ordered_statements(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            yield from _ordered_statements(stmt.body)
        elif isinstance(stmt, ast.Try):
            yield from _ordered_statements(stmt.body)
            for handler in stmt.handlers:
                yield from _ordered_statements(handler.body)
            yield from _ordered_statements(stmt.orelse)
            yield from _ordered_statements(stmt.finalbody)


class _TaintScan:
    """One function's intra-procedural taint evaluation."""

    def __init__(
        self,
        fn: str,
        graph: CallGraph,
        site_index: dict[tuple[str, int, int], CallSite],
        tainted_returns: dict[str, _Taint],
    ) -> None:
        self.fn = fn
        self.graph = graph
        self.site_index = site_index
        self.tainted_returns = tainted_returns
        self.env: dict[str, _Taint] = {}
        self.return_taint = _Taint.none()
        self.tainted_sites: list[tuple[CallSite, _Taint]] = []

    def run(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        # Two passes so taint assigned late in a loop body reaches uses
        # earlier in the next iteration.
        for _ in range(2):
            for stmt in _ordered_statements(node.body):
                self._statement(stmt)

    # -- statements --

    def _statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._expr(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self._expr(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self._expr(stmt.value).merge(self._expr(stmt.target))
            self._bind(stmt.target, taint)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind(stmt.target, self._expr(stmt.iter))
        elif isinstance(stmt, ast.Return) and stmt.value is not None:
            self.return_taint = self.return_taint.merge(self._expr(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._expr(stmt.value)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._expr(stmt.test)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._expr(item.context_expr)

    def _bind(self, target: ast.expr, taint: _Taint) -> None:
        if isinstance(target, ast.Name):
            existing = self.env.get(target.id, _NO_TAINT)
            self.env[target.id] = existing.merge(taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)
        elif isinstance(target, ast.Attribute):
            # `metrics.latency = time.time()` — attribute writes carry
            # taint into the receiver object.
            if isinstance(target.value, ast.Name):
                existing = self.env.get(target.value.id, _NO_TAINT)
                self.env[target.value.id] = existing.merge(taint)

    # -- expressions --

    def _expr(self, expr: ast.expr) -> _Taint:
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Name):
            return self.env.get(expr.id, _NO_TAINT)
        if isinstance(expr, ast.Lambda):
            return _NO_TAINT
        if isinstance(expr, (ast.Set, ast.SetComp)):
            taint = _Taint(
                frozenset({_ORDER}),
                (f"{self.graph.functions[self.fn].relpath}:{expr.lineno}",),
                "set iteration order",
            )
            for child in ast.iter_child_nodes(expr):
                if isinstance(child, ast.expr):
                    taint = taint.merge(self._expr(child))
            return taint
        taint = _NO_TAINT
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint = taint.merge(self._expr(child))
            elif isinstance(child, ast.comprehension):
                taint = taint.merge(self._expr(child.iter))
        return taint

    def _call(self, call: ast.Call) -> _Taint:
        taint = _NO_TAINT
        for arg in call.args:
            taint = taint.merge(self._expr(arg))
        for keyword in call.keywords:
            taint = taint.merge(self._expr(keyword.value))
        if isinstance(call.func, ast.Attribute):
            taint = taint.merge(self._expr(call.func.value))

        func_leaf: str | None = None
        if isinstance(call.func, ast.Name):
            func_leaf = call.func.id
        elif isinstance(call.func, ast.Attribute):
            func_leaf = call.func.attr
        if func_leaf in _ORDER_SANITIZERS:
            taint = taint.without_order()

        site = self.site_index.get((self.fn, call.lineno, call.col_offset))
        if site is not None:
            if site.external in VALUE_SOURCES:
                source = _Taint(
                    frozenset({_VALUE}), (site.frame,), f"{site.external}()"
                )
                taint = source.merge(taint)
                self.tainted_sites.append((site, source))
            elif site.external == "set":
                # `frozenset(...)` is deliberately NOT an order source:
                # in this codebase it is the immutable membership-set
                # idiom (RPV suppression sets, excluded-type sets) and is
                # never iterated into output, while mutable `set()` is
                # the shape that leaks iteration order.
                taint = taint.merge(
                    _Taint(frozenset({_ORDER}), (site.frame,), "set iteration order")
                )
            for target in site.targets:
                callee_taint = self.tainted_returns.get(target)
                if callee_taint is not None and callee_taint.kinds:
                    through = _Taint(
                        callee_taint.kinds,
                        (site.frame,) + callee_taint.frames,
                        callee_taint.label,
                    )
                    taint = taint.merge(through)
                    self.tainted_sites.append((site, through))
        return taint


def tainted_return_map(graph: CallGraph) -> dict[str, _Taint]:
    """Fixed point: which functions return nondeterministic data."""
    tainted: dict[str, _Taint] = {}
    for _ in range(len(graph.functions) + 1):
        changed = False
        for fn in sorted(graph.nodes):
            scan = _TaintScan(fn, graph, _site_index(graph), tainted)
            scan.run(graph.nodes[fn])
            previous = tainted.get(fn)
            if scan.return_taint.kinds and (
                previous is None or scan.return_taint.kinds - previous.kinds
            ):
                tainted[fn] = scan.return_taint
                changed = True
        if not changed:
            break
    return tainted


_SITE_INDEX_CACHE: tuple[int, dict[tuple[str, int, int], CallSite]] | None = None


def _site_index(graph: CallGraph) -> dict[tuple[str, int, int], CallSite]:
    global _SITE_INDEX_CACHE
    if _SITE_INDEX_CACHE is not None and _SITE_INDEX_CACHE[0] == id(graph):
        return _SITE_INDEX_CACHE[1]
    index = {
        (site.caller, site.lineno, site.col): site
        for sites in graph.calls.values()
        for site in sites
    }
    _SITE_INDEX_CACHE = (id(graph), index)
    return index


def _is_sink(graph: CallGraph, qualname: str) -> str | None:
    """Describe why a function is a determinism sink, or None."""
    info = graph.functions.get(qualname)
    if info is None:
        return None
    if info.module == "repro.httpmodel.piggy_codec" and info.name.startswith("format_"):
        return "piggyback trailer bytes"
    if info.module == "repro.server.durability.journal" and (
        info.name.startswith("append") or "encode" in info.name
    ):
        return "journal record bytes"
    if info.module in ("repro.analysis.prediction", "repro.analysis.fastreplay"):
        for site in graph.sites(qualname):
            if site.external is not None and site.external.endswith(".ReplayMetrics"):
                return "replay metrics"
    return None


@register
class FlowDeterminismTaintRule(ProjectRule):
    id = "flow-determinism-taint"
    family = "flow"
    interprocedural = True
    description = (
        "Wall-clock/RNG/id()/set-order data must not flow, through any "
        "call depth, into piggyback trailers, journal records, or "
        "replay metrics."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        graph = cached_callgraph(modules)
        by_path = {m.relpath: m for m in modules}
        tainted = tainted_return_map(graph)
        site_index = _site_index(graph)

        seen: set[tuple[str, int, str]] = set()
        for fn in sorted(graph.nodes):
            sink_kind = _is_sink(graph, fn)
            scan = _TaintScan(fn, graph, site_index, tainted)
            scan.run(graph.nodes[fn])

            if sink_kind is not None:
                # Wall-clock/RNG/id() reads *inside* a sink function are
                # unconditionally nondeterministic, at any depth.
                for site, taint in scan.tainted_sites:
                    if _VALUE not in taint.kinds:
                        continue
                    key = (site.relpath, site.lineno, taint.label)
                    if key in seen:
                        continue
                    seen.add(key)
                    finding = _anchored_finding(
                        self,
                        by_path,
                        site,
                        f"{sink_kind} in {fn}() derive from "
                        f"nondeterministic {taint.label}",
                        (site.frame,) + tuple(
                            frame for frame in taint.frames if frame != site.frame
                        ),
                    )
                    if finding is not None:
                        yield finding
                # Set-iteration order only matters when it survives into
                # the sink's *output* — `sorted(...)` launders it.
                if (
                    _ORDER in scan.return_taint.kinds
                    and _VALUE not in scan.return_taint.kinds
                    and scan.return_taint.frames
                ):
                    taint = scan.return_taint
                    anchor_path, _, anchor_line = taint.frames[0].rpartition(":")
                    key = (anchor_path, int(anchor_line), taint.label)
                    if key not in seen:
                        seen.add(key)
                        module = by_path.get(anchor_path)
                        if module is not None:
                            yield module.finding(
                                self,
                                None,
                                f"{sink_kind} in {fn}() derive from "
                                f"nondeterministic {taint.label}",
                                line=int(anchor_line),
                                evidence=taint.frames,
                            )
                continue

            # Tainted arguments handed straight to a sink function.
            for site in graph.sites(fn):
                sink_targets = [
                    target for target in site.targets if _is_sink(graph, target)
                ]
                if not sink_targets:
                    continue
                call = _call_at(graph, fn, site)
                if call is None:
                    continue
                arg_taint = _NO_TAINT
                for arg in call.args:
                    arg_taint = arg_taint.merge(scan._expr(arg))
                for keyword in call.keywords:
                    arg_taint = arg_taint.merge(scan._expr(keyword.value))
                if not arg_taint.kinds:
                    continue
                sink_kind = _is_sink(graph, sink_targets[0])
                key = (site.relpath, site.lineno, arg_taint.label)
                if key in seen:
                    continue
                seen.add(key)
                finding = _anchored_finding(
                    self,
                    by_path,
                    site,
                    f"{fn}() passes nondeterministic {arg_taint.label} "
                    f"into {sink_targets[0]}() ({sink_kind})",
                    (site.frame,) + arg_taint.frames,
                )
                if finding is not None:
                    yield finding


def _call_at(graph: CallGraph, fn: str, site: CallSite) -> ast.Call | None:
    node = graph.nodes.get(fn)
    if node is None:
        return None
    for candidate in ast.walk(node):
        if (
            isinstance(candidate, ast.Call)
            and candidate.lineno == site.lineno
            and candidate.col_offset == site.col
        ):
            return candidate
    return None
