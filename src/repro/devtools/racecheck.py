"""Runtime race sanitizer: lockset tracking for hot shared state.

The static ``flow-*`` passes prove properties about call *chains*; this
module is their dynamic counterpart for data. When ``REPRO_RACE=1``,
the shared objects the serving stack mutates from multiple threads —
piggyback message cache entries, upstream connection pools, metrics
instruments, volume-store tables — are wrapped in
:class:`SharedStateProxy`, and every lock built through
:func:`repro.devtools.lockorder.make_lock` additionally reports to the
race monitor. Each proxied *write* is then checked Eraser-style:

* while a single thread writes, the object is in its **exclusive**
  phase and nothing is recorded;
* the first write from a second thread moves it to **shared** and
  initializes the candidate lockset to the locks that thread holds;
* every later write intersects the candidate set with the writer's
  held locks. When the intersection is empty *and* the write
  interleaves with a different thread's write, no common lock protects
  the object — a :class:`RaceError` is raised at the mutation site,
  naming the object, the operation, and both threads.

Reads are deliberately not checked: a read after ``Thread.join()`` is
synchronized by the join itself, which lockset analysis cannot see, and
flagging it would make every test's post-join assertion a false
positive. Unsynchronized *writes* are what corrupt state, and they are
exactly what this catches. For the same reason a clean ownership
handoff (build under one thread, mutate under another, never
interleaved) stays silent.

When ``REPRO_RACE`` is off, :func:`share` and :func:`wrap_lock` return
their argument unchanged — zero overhead, identical types.
"""

from __future__ import annotations

import os
import threading
from typing import Any
from collections.abc import Callable, Iterator

__all__ = [
    "RaceError",
    "RaceMonitor",
    "RaceLock",
    "SharedStateProxy",
    "enabled",
    "monitor",
    "share",
    "wrap_lock",
]

_ENV_SWITCH = "REPRO_RACE"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled() -> bool:
    """True when the environment asks for race instrumentation."""
    return os.environ.get(_ENV_SWITCH, "").strip().lower() in _TRUTHY


class RaceError(RuntimeError):
    """Two threads mutate shared state with no common lock held."""

    def __init__(
        self,
        obj_name: str,
        operation: str,
        thread: str,
        other_thread: str,
        held: frozenset[str],
        candidate_was: frozenset[str],
    ) -> None:
        self.obj_name = obj_name
        self.operation = operation
        self.thread = thread
        self.other_thread = other_thread
        self.held = held
        self.candidate_was = candidate_was
        super().__init__(
            f"unsynchronized write {obj_name}.{operation} from thread "
            f"{thread!r} (interleaving with {other_thread!r}): no common "
            f"lock protects the object — this thread holds "
            f"{sorted(held) or '{}'}, previous writers shared "
            f"{sorted(candidate_was) or '{}'}"
        )


class _ObjectState:
    """Eraser-style per-object phase + candidate lockset."""

    __slots__ = ("name", "guard", "owner", "shared", "candidate", "last_writer")

    def __init__(self, name: str) -> None:
        self.name = name
        self.guard = threading.Lock()
        self.owner: int | None = None
        self.shared = False
        self.candidate: frozenset[str] | None = None
        self.last_writer: int | None = None


class RaceMonitor:
    """Per-thread counted locksets plus per-object write checking."""

    def __init__(self) -> None:
        self._local = threading.local()

    # -- lockset bookkeeping (driven by RaceLock) --------------------------

    def _held(self) -> dict[str, int]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = {}
            self._local.held = held
        return held

    def note_acquired(self, name: str) -> None:
        held = self._held()
        held[name] = held.get(name, 0) + 1

    def note_released(self, name: str) -> None:
        held = self._held()
        count = held.get(name, 0)
        if count <= 1:
            held.pop(name, None)
        else:
            held[name] = count - 1

    def lockset(self) -> frozenset[str]:
        """Names of the locks the calling thread currently holds."""
        return frozenset(self._held())

    # -- write checking ----------------------------------------------------

    def check_write(self, state: _ObjectState, operation: str) -> None:
        """Record one write to *state*'s object; raise on a lockset race."""
        ident = threading.get_ident()
        locks = self.lockset()
        with state.guard:
            if state.owner is None:
                state.owner = ident
            if not state.shared:
                if ident == state.owner:
                    state.last_writer = ident
                    return
                # Second thread: the object is shared from now on. The
                # transition write itself never raises — Thread.start()
                # orders it after the builder's writes (a clean handoff),
                # and lockset analysis cannot see that edge. A real race
                # trips on the next interleaved write instead.
                state.shared = True
                state.candidate = locks
                state.last_writer = ident
                return
            else:
                assert state.candidate is not None
                state.candidate = state.candidate & locks
                previous, state.last_writer = state.last_writer, ident
                interleaved = previous is not None and previous != ident
            if state.candidate:
                return  # a common lock still protects every writer
            if not interleaved:
                # A single thread kept writing after a clean handoff —
                # only an *interleaving* unlocked write is a race.
                return
            other = "?" if previous is None else _thread_name(previous)
            raise RaceError(
                obj_name=state.name,
                operation=operation,
                thread=threading.current_thread().name,
                other_thread=other,
                held=locks,
                candidate_was=state.candidate if state.candidate is not None else frozenset(),
            )


def _thread_name(ident: int) -> str:
    for thread in threading.enumerate():
        if thread.ident == ident:
            return thread.name
    return f"thread-{ident}"


_MONITOR = RaceMonitor()


def monitor() -> RaceMonitor:
    """The process-wide monitor shared by every proxy and race lock."""
    return _MONITOR


class RaceLock:
    """Wraps any lock-shaped object, reporting holds to the race monitor.

    Composes with the lock-order layer: ``make_lock`` builds
    ``RaceLock(InstrumentedLock(threading.Lock()))`` when both switches
    are on, so one acquisition feeds both detectors.
    """

    __slots__ = ("_inner", "_name", "_monitor")

    def __init__(self, inner: Any, name: str, mon: RaceMonitor | None = None) -> None:
        self._inner = inner
        self._name = name
        self._monitor = mon if mon is not None else _MONITOR

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got: bool = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.note_acquired(self._name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.note_released(self._name)

    def __enter__(self) -> "RaceLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        locked: bool = self._inner.locked()
        return locked

    def __repr__(self) -> str:
        return f"<RaceLock {self._name!r} wrapping {self._inner!r}>"


# Mutating methods across the container types the serving stack shares
# (dict, OrderedDict, list, set, deque). Calling any of these through a
# proxy counts as a write.
_WRITE_METHODS = frozenset(
    {
        "pop",
        "popitem",
        "popleft",
        "clear",
        "update",
        "setdefault",
        "move_to_end",
        "append",
        "appendleft",
        "extend",
        "insert",
        "remove",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)


class SharedStateProxy:
    """Transparent wrapper that reports container mutations as writes.

    Read paths (``[]``, ``in``, ``len``, iteration, non-mutating
    methods) forward without recording, so the proxy never flags
    join-synchronized reads and costs nothing on the read-mostly hot
    paths.
    """

    __slots__ = ("_inner", "_state", "_monitor")

    def __init__(self, inner: Any, name: str, mon: RaceMonitor | None = None) -> None:
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_state", _ObjectState(name))
        object.__setattr__(self, "_monitor", mon if mon is not None else _MONITOR)

    # -- write dunders --

    def __setitem__(self, key: Any, value: Any) -> None:
        self._monitor.check_write(self._state, "__setitem__")
        self._inner[key] = value

    def __delitem__(self, key: Any) -> None:
        self._monitor.check_write(self._state, "__delitem__")
        del self._inner[key]

    # -- read dunders (plain forwards) --

    def __getitem__(self, key: Any) -> Any:
        return self._inner[key]

    def __contains__(self, key: Any) -> bool:
        return key in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._inner)

    def __bool__(self) -> bool:
        return bool(self._inner)

    def __eq__(self, other: object) -> bool:
        return bool(self._inner == other)

    def __ne__(self, other: object) -> bool:
        return bool(self._inner != other)

    def __hash__(self) -> int:  # proxies are identity-hashed, like locks
        return object.__hash__(self)

    def __repr__(self) -> str:
        return f"<SharedStateProxy {self._state.name!r} around {self._inner!r}>"

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if name in _WRITE_METHODS and callable(attr):
            mon: RaceMonitor = self._monitor
            state: _ObjectState = self._state
            bound: Callable[..., Any] = attr

            def checked(*args: Any, **kwargs: Any) -> Any:
                mon.check_write(state, name)
                return bound(*args, **kwargs)

            return checked
        return attr


def share(obj: Any, name: str) -> Any:
    """Wrap *obj* for race checking when ``REPRO_RACE`` is on.

    Call sites pass the container they are about to share across
    threads; with the switch off the object is returned unchanged, so
    the wiring has zero cost in production configurations.
    """
    if enabled():
        return SharedStateProxy(obj, name)
    return obj


def wrap_lock(lock: Any, name: str) -> Any:
    """Wrap an existing lock so holds feed the race monitor when on."""
    if enabled():
        return RaceLock(lock, name)
    return lock
