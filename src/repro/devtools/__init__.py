"""Developer tooling that keeps the repo's invariants true by construction.

The reproduction rests on two guarantees that ordinary tests only probe
after the fact:

* **bit-identical replay** — the reference engine
  (:func:`repro.analysis.prediction.replay`) and the interned engine
  (:mod:`repro.analysis.fastreplay`) must produce identical metrics, which
  requires every analysis path to be deterministic (no wall clock, no
  global RNG, no id()/set-order dependence);
* **deadlock- and leak-free wiring** — the threaded wire stack must never
  block on I/O while holding an engine lock, must acquire locks in one
  global order, and must close/join every socket, file, and thread.

:mod:`repro.devtools.lint` enforces both statically with an AST-walking
rule engine (``repro lint``); :mod:`repro.devtools.lockorder` enforces the
lock-ordering half dynamically by instrumenting the stack's locks during
stress tests (``REPRO_LOCKORDER=1``).
"""

from __future__ import annotations

__all__ = ["lint", "lockorder"]
