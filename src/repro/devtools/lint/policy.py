"""Per-path policy scoping: which rule family applies where.

Each family guards a different architectural property, so each is scoped
to the subtree where that property must hold:

* ``determinism`` — the replay substrate (analysis/traces/volumes) and
  the seeded workload generators that back the bit-identical
  fast-vs-reference guarantee;
* ``locks`` — the threaded wire stack (httpwire/proxy/server) whose
  contract is "no blocking I/O under an engine lock, one global order";
* ``resources`` — everything that creates sockets, files, or threads,
  including the benchmarks;
* ``api`` — cross-file invariants (metrics parity, codec parity) over the
  library source;
* ``telemetry`` — metric-registration hygiene everywhere instruments are
  registered (library source and benchmarks);
* ``aio`` — event-loop hygiene (no blocking calls in coroutines) for the
  asyncio wire stack;
* ``flow`` — whole-program interprocedural passes (transitive blocking
  reachability, lock-held-across-blocking, determinism taint) over the
  library source; these see every file so call chains resolve across
  package boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Policy", "DEFAULT_POLICY", "FAMILIES"]

FAMILIES = ("determinism", "locks", "resources", "api", "telemetry", "aio", "flow")


@dataclass(frozen=True, slots=True)
class Policy:
    """Maps rule families to repo-relative path prefixes (POSIX)."""

    scopes: tuple[tuple[str, tuple[str, ...]], ...]

    def applies(self, family: str, relpath: str) -> bool:
        for name, prefixes in self.scopes:
            if name != family:
                continue
            for prefix in prefixes:
                if not prefix or relpath == prefix or relpath.startswith(prefix + "/"):
                    return True
        return False

    def families(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.scopes)

    @classmethod
    def everywhere(cls, families: tuple[str, ...] = FAMILIES) -> "Policy":
        """A policy applying the given families to every linted file."""
        return cls(scopes=tuple((family, ("",)) for family in families))


DEFAULT_POLICY = Policy(
    scopes=(
        (
            "determinism",
            (
                "src/repro/analysis",
                "src/repro/traces",
                "src/repro/volumes",
                "src/repro/workloads",
            ),
        ),
        (
            "locks",
            (
                "src/repro/httpwire",
                "src/repro/proxy",
                "src/repro/server",
                "src/repro/lb",
            ),
        ),
        ("resources", ("src/repro", "benchmarks")),
        ("api", ("src/repro",)),
        ("telemetry", ("src/repro", "benchmarks")),
        (
            "aio",
            (
                "src/repro/httpwire/aio",
                "src/repro/httpmodel/aio.py",
                "src/repro/lb/aio.py",
            ),
        ),
        ("flow", ("src/repro",)),
    )
)
