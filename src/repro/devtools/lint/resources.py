"""Resource-hygiene rules: sockets, files, and threads must be reclaimed.

PR 1's stress suites assert zero leaked worker threads after teardown;
these rules keep new code from reintroducing leaks that only show up
under load: a socket or file created without a ``with``/``close()``, a
thread that is neither daemonic nor joined, and joins without a timeout
(which turn a wedged peer into a wedged test run).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .astutil import dotted_name, import_map, resolved_call_name
from .engine import Finding, ModuleRule, SourceModule, register

_SOCKET_FACTORIES = frozenset({"socket.socket", "socket.create_connection"})


def _functions(module: SourceModule) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _name_released(func: ast.AST, name: str) -> bool:
    """True when *name* is closed, returned, stored, or handed off."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            # sock.close() / sock.shutdown() / stack.enter_context(sock) /
            # self._track(sock): closing or transferring ownership.
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in ("close", "shutdown", "detach")
                and dotted_name(node.func.value) == name
            ):
                return True
            for arg in node.args:
                if isinstance(arg, ast.Name) and arg.id == name:
                    return True
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if isinstance(sub, ast.Name) and sub.id == name:
                    return True
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == name
                ):
                    return True
        elif isinstance(node, ast.withitem):
            expr = node.context_expr
            if isinstance(expr, ast.Name) and expr.id == name:
                return True
    return False


class _LifetimeRule(ModuleRule):
    """Shared shape: factory call assigned to a local must be reclaimed."""

    factories: frozenset[str] = frozenset()
    noun: str = "resource"

    def _is_factory(self, call: ast.Call, imports: dict[str, str]) -> bool:
        return resolved_call_name(call, imports) in self.factories

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = import_map(module.tree)
        for func in _functions(module):
            for node in ast.walk(func):
                if isinstance(node, ast.With):
                    continue
                if not (
                    isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)
                    and self._is_factory(node.value, imports)
                ):
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue  # attribute targets follow the object's lifecycle
                if self._inside_with(func, node) or _name_released(func, target.id):
                    continue
                yield module.finding(
                    self,
                    node.value,
                    f"{self.noun} {target.id!r} is never closed on any path; "
                    "use `with` or close() in a finally block",
                )

    @staticmethod
    def _inside_with(func: ast.AST, assign: ast.Assign) -> bool:
        """True when the factory call is a with-item (``with open(...) as f``)."""
        for node in ast.walk(func):
            if isinstance(node, ast.With):
                for item in node.items:
                    if item.context_expr is assign.value:
                        return True
        return False


@register
class SocketLifetimeRule(_LifetimeRule):
    id = "res-socket-lifetime"
    family = "resources"
    description = "Sockets must be closed on all paths (with / try-finally)."
    factories = _SOCKET_FACTORIES
    noun = "socket"


@register
class FileLifetimeRule(_LifetimeRule):
    id = "res-file-lifetime"
    family = "resources"
    description = "open() handles must be closed on all paths (with / try-finally)."
    factories = frozenset({"open"})
    noun = "file handle"

    def check(self, module: SourceModule) -> Iterable[Finding]:
        yield from super().check(module)
        # Also catch `open(path).read()`-style immediately-dropped handles.
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Call)
                and self._is_factory(node.value, imports)
            ):
                yield module.finding(
                    self,
                    node.value,
                    "open() result consumed inline and never closed; "
                    "use a `with` block",
                )


@register
class ThreadLifecycleRule(ModuleRule):
    id = "res-thread-lifecycle"
    family = "resources"
    description = (
        "Threads must be daemonic or joined by the function that owns them."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = import_map(module.tree)
        for func in _functions(module):
            has_join = any(
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                for node in ast.walk(func)
            )
            for node in ast.walk(func):
                if not (
                    isinstance(node, ast.Call)
                    and resolved_call_name(node, imports) == "threading.Thread"
                ):
                    continue
                daemonic = any(
                    keyword.arg == "daemon"
                    and isinstance(keyword.value, ast.Constant)
                    and keyword.value.value is True
                    for keyword in node.keywords
                )
                if daemonic or has_join:
                    continue
                yield module.finding(
                    self,
                    node,
                    "thread is neither daemon=True nor joined in this function",
                )


@register
class JoinTimeoutRule(ModuleRule):
    id = "res-join-timeout"
    family = "resources"
    description = (
        "join() must carry a timeout so a wedged thread cannot hang "
        "teardown forever (str.join, with its iterable argument, is exempt)."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
            ):
                continue
            # str.join always takes the iterable positionally; a zero-arg
            # join() is a thread/process join.
            if node.args:
                continue
            if any(keyword.arg == "timeout" for keyword in node.keywords):
                continue
            receiver = dotted_name(node.func.value) or "<expr>"
            yield module.finding(
                self, node, f"{receiver}.join() without a timeout can hang teardown"
            )
