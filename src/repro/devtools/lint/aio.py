"""Event-loop hygiene rules for the asyncio wire stack.

One blocking call inside a coroutine stalls *every* connection
multiplexed on the loop — the exact failure mode the async frontend
exists to avoid, and one that no functional test catches (everything
still works, just ten thousand times more serially).  These rules scan
``async def`` bodies under ``src/repro/httpwire/aio`` for the classic
offenders:

* synchronous sleeps, fsyncs, and socket construction/exchange calls
  (``aio-blocking-call``) — such work belongs on the handler executor
  via ``run_in_executor``;
* ``lock.acquire()`` that is not awaited (``aio-unawaited-acquire``) —
  a ``threading.Lock`` parks the loop thread, and an un-awaited
  ``asyncio.Lock.acquire()`` silently never acquires.

Receivers are recognized heuristically by name, mirroring the ``locks``
family: any receiver whose final name component contains ``lock``,
``sem``, or ``condition`` counts as a synchronization primitive.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .astutil import (
    annotate_parents,
    dotted_name,
    name_bindings,
    parent_of,
    resolved_call_name,
    walk_body,
)
from .engine import Finding, ModuleRule, SourceModule, register

# Calls that always block the calling thread, resolved through import
# aliases.  `socket.socket` construction is included: a raw socket in a
# coroutine is a sign the sync wire client leaked into the async stack.
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "socket.create_connection",
        "socket.socket",
        "select.select",
        "open",
    }
)

# Attribute calls that block on a socket (or hand bytes to the peer).
# Only flagged when *not* directly awaited, so async methods that happen
# to share a name (`await upstream.connect()`) stay clean.
_BLOCKING_ATTRS = frozenset(
    {
        "recv",
        "recv_into",
        "recvfrom",
        "sendall",
        "sendto",
        "accept",
        "connect",
        "connect_ex",
        "makefile",
    }
)

_PRIMITIVE_MARKERS = ("lock", "sem", "condition")


def _primitive_name(expr: ast.expr) -> str | None:
    """The receiver's dotted name when it looks like a sync primitive."""
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1].lower()
    if any(marker in leaf for marker in _PRIMITIVE_MARKERS):
        return dotted
    return None


def _async_bodies(tree: ast.Module) -> Iterator[tuple[ast.AsyncFunctionDef, ast.AST]]:
    """Yield (coroutine, node) for every node lexically inside an
    ``async def`` body, without crossing into nested function scopes
    (each nested coroutine is visited as its own root)."""
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            for inner in walk_body(node.body):
                yield node, inner


def _is_awaited(node: ast.Call) -> bool:
    parent = parent_of(node)
    return isinstance(parent, ast.Await)


@register
class AioBlockingCallRule(ModuleRule):
    id = "aio-blocking-call"
    family = "aio"
    description = (
        "No synchronous sleep/fsync/socket call may run inside a "
        "coroutine; offload blocking work with run_in_executor."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        # Full name-binding resolution (not just import aliases): catches
        # `import time as t; t.sleep(...)`, `from time import sleep`,
        # relative imports, and module-level aliases like
        # `_sleep = time.sleep`.
        imports = name_bindings(module.tree, package=module.package)
        annotate_parents(module.tree)
        for coroutine, inner in _async_bodies(module.tree):
            if not isinstance(inner, ast.Call):
                continue
            resolved = resolved_call_name(inner, imports)
            if resolved in _BLOCKING_CALLS:
                yield module.finding(
                    self,
                    inner,
                    f"blocking call {resolved}() inside "
                    f"coroutine {coroutine.name}()",
                )
                continue
            func = inner.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _BLOCKING_ATTRS
                and not _is_awaited(inner)
            ):
                yield module.finding(
                    self,
                    inner,
                    f"blocking socket call .{func.attr}() inside "
                    f"coroutine {coroutine.name}()",
                )


@register
class AioUnawaitedAcquireRule(ModuleRule):
    id = "aio-unawaited-acquire"
    family = "aio"
    description = (
        "Inside a coroutine, .acquire() on a lock/semaphore must be "
        "awaited (asyncio primitive) — a sync primitive blocks the loop."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        annotate_parents(module.tree)
        for coroutine, inner in _async_bodies(module.tree):
            if not (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Attribute)
                and inner.func.attr == "acquire"
            ):
                continue
            receiver = _primitive_name(inner.func.value)
            if receiver is None or _is_awaited(inner):
                continue
            yield module.finding(
                self,
                inner,
                f"un-awaited {receiver}.acquire() inside "
                f"coroutine {coroutine.name}()",
            )
