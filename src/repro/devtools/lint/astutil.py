"""Small AST helpers shared by the rule modules and the flow layer."""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "import_map",
    "name_bindings",
    "dotted_name",
    "resolve_dotted",
    "resolved_call_name",
    "annotate_parents",
    "walk_body",
    "receiver_text",
]


def import_map(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import they are bound to.

    ``import os.path`` binds ``os`` -> ``os``; ``import numpy as np`` binds
    ``np`` -> ``numpy``; ``from time import time as now`` binds
    ``now`` -> ``time.time``.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.partition(".")[0]] = alias.name.partition(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                bound = alias.asname or alias.name
                table[bound] = f"{node.module}.{alias.name}"
    return table


def _resolve_relative(module_part: str | None, level: int, package: str | None) -> str | None:
    """Absolute module named by ``from <dots><module_part> import ...``.

    *package* is the importing module's package (``repro.httpwire.aio``
    for ``repro.httpwire.aio.server``).  None when it cannot be resolved.
    """
    if level == 0:
        return module_part
    if package is None:
        return None
    parts = package.split(".")
    if level - 1 > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module_part:
        base.append(module_part)
    return ".".join(base) if base else None


def name_bindings(tree: ast.Module, package: str | None = None) -> dict[str, str]:
    """:func:`import_map` extended with name-binding resolution.

    Beyond plain and aliased imports this also resolves:

    * relative imports (``from . import journal``), when *package* — the
      importing module's package — is supplied;
    * module-level single-target aliases of dotted names
      (``_sleep = time.sleep``), folded through the table in source
      order so chains of aliases resolve.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.partition(".")[0]] = alias.name.partition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            resolved_module = _resolve_relative(node.module, node.level, package)
            if resolved_module is None:
                continue
            for alias in node.names:
                bound = alias.asname or alias.name
                table[bound] = f"{resolved_module}.{alias.name}"
    for stmt in tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target, value = stmt.targets[0], stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target, value = stmt.target, stmt.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        dotted = dotted_name(value)
        if dotted is None:
            continue
        table[target.id] = resolve_dotted(dotted, table)
    return table


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def resolve_dotted(dotted: str, bindings: dict[str, str]) -> str:
    """Resolve the head of a dotted name through a binding table."""
    head, _, rest = dotted.partition(".")
    resolved_head = bindings.get(head)
    if resolved_head is None:
        return dotted
    return f"{resolved_head}.{rest}" if rest else resolved_head


def resolved_call_name(node: ast.Call, imports: dict[str, str]) -> str | None:
    """The fully-qualified name a call resolves to, through import aliases.

    ``now()`` after ``from time import time as now`` resolves to
    ``time.time``; ``dt.datetime.now()`` after ``import datetime as dt``
    resolves to ``datetime.datetime.now``.  Pass a
    :func:`name_bindings` table to additionally resolve module-level
    aliases like ``_sleep = time.sleep``.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    return resolve_dotted(dotted, imports)


def annotate_parents(tree: ast.AST) -> None:
    """Attach a ``_repro_parent`` attribute to every node."""
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


def parent_of(node: ast.AST) -> ast.AST | None:
    return getattr(node, "_repro_parent", None)


def walk_body(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Walk statements without descending into nested function/class defs."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def receiver_text(node: ast.expr) -> str:
    """Best-effort textual name of a call receiver for heuristics."""
    dotted = dotted_name(node)
    if dotted is not None:
        return dotted
    return type(node).__name__
