"""Determinism rules for the replay substrate.

The fast and reference replay engines are only bit-identical because
nothing in :mod:`repro.analysis`, :mod:`repro.traces`, or
:mod:`repro.volumes` depends on wall-clock time, ambient entropy, the
process-global RNG, memory addresses, or set iteration order.  These
rules forbid each escape hatch; randomness must flow from a
``random.Random(seed)`` instance constructed from explicit config.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from .astutil import annotate_parents, dotted_name, import_map, parent_of, resolved_call_name
from .engine import Finding, ModuleRule, SourceModule, register

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

_ENTROPY = frozenset({"os.urandom", "uuid.uuid1", "uuid.uuid4", "secrets"})

# dict/set mutators whose first argument is a key.
_KEYED_METHODS = frozenset({"get", "setdefault", "pop", "add", "discard", "remove"})

# Builders that materialize iteration order from their argument.
_ORDER_SINKS = frozenset({"list", "tuple", "iter", "enumerate"})


def _module_calls(module: SourceModule) -> Iterator[tuple[ast.Call, str]]:
    imports = import_map(module.tree)
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            name = resolved_call_name(node, imports)
            if name is not None:
                yield node, name


@register
class WallClockRule(ModuleRule):
    id = "det-wall-clock"
    family = "determinism"
    description = (
        "Replay code must not read the wall clock or process timers; "
        "all time flows from trace timestamps."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node, name in _module_calls(module):
            if name in _WALL_CLOCK:
                yield module.finding(
                    self, node, f"nondeterministic clock call {name}() in replay code"
                )


@register
class EntropyRule(ModuleRule):
    id = "det-entropy"
    family = "determinism"
    description = "Replay code must not draw ambient entropy (os.urandom, uuid4, secrets)."

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node, name in _module_calls(module):
            if name in _ENTROPY or name.startswith("secrets."):
                yield module.finding(
                    self, node, f"entropy source {name}() is not replayable"
                )


@register
class GlobalRandomRule(ModuleRule):
    id = "det-global-random"
    family = "determinism"
    description = (
        "The process-global random module is shared mutable state; "
        "use a seeded random.Random instance."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node, name in _module_calls(module):
            if name.startswith("random.") and name not in (
                "random.Random",
                "random.SystemRandom",  # caught by det-entropy semantics below
            ):
                yield module.finding(
                    self,
                    node,
                    f"module-level {name}() mutates the global RNG; "
                    "draw from a seeded random.Random instead",
                )
            elif name == "random.SystemRandom":
                yield module.finding(
                    self, node, "random.SystemRandom is OS entropy, not replayable"
                )


@register
class UnseededRngRule(ModuleRule):
    id = "det-unseeded-rng"
    family = "determinism"
    description = "Every random.Random must be constructed with an explicit seed."

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node, name in _module_calls(module):
            if name == "random.Random" and not node.args and not node.keywords:
                yield module.finding(
                    self, node, "random.Random() without a seed is nondeterministic"
                )


@register
class IdKeyRule(ModuleRule):
    id = "det-id-key"
    family = "determinism"
    description = (
        "id() values differ across runs; keying containers on them makes "
        "any key-order-sensitive path nonreproducible."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        annotate_parents(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1
            ):
                continue
            parent = parent_of(node)
            keyed = False
            if isinstance(parent, ast.Subscript) and parent.slice is node:
                keyed = True
            elif isinstance(parent, ast.Dict) and node in parent.keys:
                keyed = True
            elif isinstance(parent, ast.Set):
                keyed = True
            elif isinstance(parent, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in parent.ops
            ):
                keyed = True
            elif (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Attribute)
                and parent.func.attr in _KEYED_METHODS
                and parent.args
                and parent.args[0] is node
            ):
                keyed = True
            if keyed:
                yield module.finding(
                    self,
                    node,
                    "container keyed by id(); use a stable interned index instead",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in ("set", "frozenset")
    return False


@register
class SetIterationRule(ModuleRule):
    id = "det-set-iteration"
    family = "determinism"
    description = (
        "Iterating a set materializes hash order, which varies across "
        "runs for str keys; sort it first."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            iter_expr: ast.expr | None = None
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                iter_expr = node.iter
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        iter_expr = generator.iter
                        break
            elif isinstance(node, ast.Call) and node.args and _is_set_expr(node.args[0]):
                func = node.func
                if isinstance(func, ast.Name) and func.id in _ORDER_SINKS:
                    iter_expr = node.args[0]
                elif isinstance(func, ast.Attribute) and func.attr == "join":
                    iter_expr = node.args[0]
            if iter_expr is not None:
                yield module.finding(
                    self,
                    iter_expr,
                    "set iteration order escapes into results; wrap in sorted(...)",
                )
