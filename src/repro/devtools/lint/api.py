"""API-invariant rules: cross-file parity checks.

Two invariants that differential tests only probe on exercised paths:

* **metrics parity** — the reference engine (``analysis/prediction.py``)
  and the interned engine (``analysis/fastreplay.py``) must each write
  every counter field of :class:`~repro.analysis.metrics.ReplayMetrics`;
  a field one engine forgets silently breaks bit-identical replay;
* **codec parity** — every ``key=`` attribute a ``format_*`` function in
  ``httpmodel/piggy_codec.py`` emits must be handled by the paired
  ``parse_*`` function, and vice versa, or headers stop round-tripping.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Sequence

from .engine import Finding, ProjectRule, SourceModule, register

_METRICS_PATH = "src/repro/analysis/metrics.py"
_ENGINE_PATHS = (
    "src/repro/analysis/prediction.py",
    "src/repro/analysis/fastreplay.py",
)
_CODEC_PATH = "src/repro/httpmodel/piggy_codec.py"

_KEY_RE = re.compile(r"(?:^|[^A-Za-z0-9_])([a-z][a-z0-9_]*)=")


def _counter_fields(module: SourceModule, class_name: str) -> set[str]:
    """Int-annotated dataclass fields of *class_name* (the replay counters)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            fields = set()
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and isinstance(stmt.annotation, ast.Name)
                    and stmt.annotation.id == "int"
                ):
                    fields.add(stmt.target.id)
            return fields
    return set()


def _written_metric_fields(module: SourceModule, receiver: str) -> set[str]:
    """Attributes assigned/augmented on a variable named *receiver*."""
    written = set()
    for node in ast.walk(module.tree):
        target = None
        if isinstance(node, ast.AugAssign):
            target = node.target
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == receiver
        ):
            written.add(target.attr)
    return written


@register
class ReplayMetricsParityRule(ProjectRule):
    id = "api-replay-metrics-parity"
    family = "api"
    description = (
        "Both replay engines must write every ReplayMetrics counter field."
    )
    metrics_path = _METRICS_PATH
    engine_paths = _ENGINE_PATHS

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        by_path = {module.relpath: module for module in modules}
        metrics_module = by_path.get(self.metrics_path)
        engines = [by_path.get(path) for path in self.engine_paths]
        if metrics_module is None or any(engine is None for engine in engines):
            return  # not all participants in scope: nothing to compare
        expected = _counter_fields(metrics_module, "ReplayMetrics")
        if not expected:
            yield metrics_module.finding(
                self, None, "ReplayMetrics has no int counter fields to check", line=1
            )
            return
        written = {
            engine.relpath: _written_metric_fields(engine, "metrics")
            for engine in engines
            if engine is not None
        }
        for path, fields in sorted(written.items()):
            engine_module = by_path[path]
            for missing in sorted(expected - fields):
                yield engine_module.finding(
                    self,
                    None,
                    f"engine never writes ReplayMetrics.{missing}; "
                    "fast/reference parity is broken",
                    line=1,
                )
            for unknown in sorted(fields - expected):
                yield engine_module.finding(
                    self,
                    None,
                    f"engine writes unknown metrics field {unknown!r}",
                    line=1,
                )


def _function_defs(module: SourceModule) -> dict[str, ast.FunctionDef]:
    return {
        node.name: node
        for node in module.tree.body
        if isinstance(node, ast.FunctionDef)
    }


def _format_keys(func: ast.FunctionDef) -> set[str]:
    """Attribute keys a format_* function emits (``f"maxpiggy={...}"``)."""
    keys = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            keys.update(_KEY_RE.findall(node.value))
    return keys


def _parse_keys(func: ast.FunctionDef) -> set[str]:
    """String literals a parse_* function compares its attribute key to."""
    keys = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        involved = any(
            isinstance(sub, ast.Name) and sub.id == "key"
            for sub in ast.walk(node)
        )
        if not involved:
            continue
        for comparator in [node.left, *node.comparators]:
            if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
                if re.fullmatch(r"[a-z][a-z0-9_]*", comparator.value):
                    keys.add(comparator.value)
    return keys


@register
class CodecParityRule(ProjectRule):
    id = "api-codec-parity"
    family = "api"
    description = (
        "Every attribute key format_* emits must be parsed by the paired "
        "parse_* function, and vice versa."
    )
    codec_path = _CODEC_PATH

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        codec = next(
            (module for module in modules if module.relpath == self.codec_path), None
        )
        if codec is None:
            return
        functions = _function_defs(codec)
        for name, format_func in sorted(functions.items()):
            if not name.startswith("format_"):
                continue
            parse_func = functions.get("parse_" + name[len("format_"):])
            if parse_func is None:
                yield codec.finding(
                    self,
                    None,
                    f"{name} has no paired parse_ function",
                    line=format_func.lineno,
                )
                continue
            emitted = _format_keys(format_func)
            parsed = _parse_keys(parse_func)
            if not emitted or not parsed:
                continue  # free-form codec: nothing comparable
            for key in sorted(emitted - parsed):
                yield codec.finding(
                    self,
                    None,
                    f"{name} emits {key!r} but {parse_func.name} never parses it",
                    line=format_func.lineno,
                )
            for key in sorted(parsed - emitted):
                yield codec.finding(
                    self,
                    None,
                    f"{parse_func.name} parses {key!r} but {name} never emits it",
                    line=parse_func.lineno,
                )
