"""``repro lint`` — AST-based invariant checker for this repo.

Public surface:

* :func:`run_lint` / :class:`LintReport` — run the engine programmatically;
* :class:`Policy` — per-path scoping of rule families;
* :class:`Baseline` — committed grandfather list (kept empty here);
* ``# repro: allow[rule-id]`` — per-line suppression syntax.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from __future__ import annotations

from .engine import (
    Baseline,
    Finding,
    LintReport,
    ModuleRule,
    ProjectRule,
    Rule,
    SourceModule,
    collect_files,
    register,
    registered_rules,
    run_lint,
)
from .policy import DEFAULT_POLICY, FAMILIES, Policy

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "SourceModule",
    "Policy",
    "DEFAULT_POLICY",
    "FAMILIES",
    "collect_files",
    "register",
    "registered_rules",
    "run_lint",
    "load_builtin_rules",
]


def load_builtin_rules() -> None:
    """Import every built-in rule module (idempotent via the registry)."""
    from . import aio, api, determinism, locks, resources, telemetry  # noqa: F401
    from ..flow import rules as flow_rules  # noqa: F401
