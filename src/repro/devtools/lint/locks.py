"""Lock-discipline rules for the threaded wire stack.

The stack's concurrency contract (docs/protocol.md): engine locks guard
*metadata only* — no socket, file-opening, upstream-exchange, or sleep
call may run while one is held; every pair of locks is acquired in one
global order; and a lock is either used as a context manager or its
``acquire()`` is immediately guarded by ``try/finally release()``.

Lock expressions are recognized heuristically by name: any ``with`` item
or call receiver whose final name component contains ``lock`` (so
``self._lock``, ``self._stats_lock``, ``accumulator.lock`` all count).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Sequence

from .astutil import dotted_name, import_map, resolved_call_name, walk_body
from .engine import Finding, ModuleRule, ProjectRule, SourceModule, register

# Attribute calls that block on the network or hand work to the peer.
_BLOCKING_ATTRS = frozenset(
    {
        "recv",
        "recv_into",
        "recvfrom",
        "sendall",
        "sendto",
        "accept",
        "connect",
        "connect_ex",
        "makefile",
        "request",
        "request_once",
        "urlopen",
    }
)

_BLOCKING_CALLS = frozenset(
    {"time.sleep", "socket.create_connection", "socket.socket", "open"}
)


def _lock_name(expr: ast.expr) -> str | None:
    """The lock's name when *expr* looks like a lock, else None."""
    dotted = dotted_name(expr)
    if dotted is None:
        return None
    leaf = dotted.rsplit(".", 1)[-1]
    return dotted if "lock" in leaf.lower() else None


def _with_lock_items(node: ast.With) -> list[str]:
    names = []
    for item in node.items:
        name = _lock_name(item.context_expr)
        if name is not None:
            names.append(name)
    return names


def _blocking_reason(call: ast.Call, imports: dict[str, str]) -> str | None:
    resolved = resolved_call_name(call, imports)
    if resolved in _BLOCKING_CALLS:
        return f"{resolved}()"
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in _BLOCKING_ATTRS:
            return f".{func.attr}()"
        if func.attr == "upstream":
            return "upstream exchange"
    if isinstance(func, ast.Name) and func.id == "upstream":
        return "upstream exchange"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Attribute | ast.Name)
        and dotted_name(func) in ("self.upstream",)
    ):
        return "upstream exchange"
    return None


@register
class BlockingCallUnderLockRule(ModuleRule):
    id = "lock-blocking-call"
    family = "locks"
    description = (
        "No socket/file/upstream/sleep call may run inside a `with <lock>` "
        "body; do the I/O after releasing the lock."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        imports = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.With):
                continue
            locks = _with_lock_items(node)
            if not locks:
                continue
            for inner in walk_body(node.body):
                if not isinstance(inner, ast.Call):
                    continue
                # `self.upstream(...)` called while holding the engine lock
                # is the exact deadlock/latency hazard PR 1 removed.
                reason = _blocking_reason(inner, imports)
                if reason is not None:
                    yield module.finding(
                        self,
                        inner,
                        f"blocking call {reason} while holding {locks[0]}",
                    )


@register
class BareAcquireRule(ModuleRule):
    id = "lock-bare-acquire"
    family = "locks"
    description = (
        "lock.acquire() must be immediately followed by try/finally "
        "release() (or replaced by a `with` block)."
    )

    def _release_in_finally(self, receiver: str, try_node: ast.Try) -> bool:
        for stmt in try_node.finalbody:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "release"
                    and dotted_name(node.func.value) == receiver
                ):
                    return True
        return False

    def check(self, module: SourceModule) -> Iterable[Finding]:
        guarded: set[int] = set()
        # Pass 1: acquire-expression statements directly followed by a
        # try/finally releasing the same receiver are the approved pattern.
        for node in ast.walk(module.tree):
            body = getattr(node, "body", None)
            if not isinstance(body, list):
                continue
            for stmt, follower in zip(body, body[1:]):
                if not (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                    and isinstance(stmt.value.func, ast.Attribute)
                    and stmt.value.func.attr == "acquire"
                ):
                    continue
                receiver = dotted_name(stmt.value.func.value)
                if (
                    receiver is not None
                    and isinstance(follower, ast.Try)
                    and follower.finalbody
                    and self._release_in_finally(receiver, follower)
                ):
                    guarded.add(id(stmt.value))  # repro: allow[det-id-key]
        # Pass 2: every other acquire() on a lock-named receiver is bare.
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and _lock_name(node.func.value) is not None
                and id(node) not in guarded  # repro: allow[det-id-key]
            ):
                yield module.finding(
                    self,
                    node,
                    f"bare {dotted_name(node.func.value)}.acquire(); "
                    "use `with` or try/finally release()",
                )


class _LockNesting(ast.NodeVisitor):
    """Collect (outer, inner) edges from lexically nested with-lock scopes."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.stack: list[str] = []
        self.edges: dict[tuple[str, str], tuple[str, int]] = {}

    def visit_With(self, node: ast.With) -> None:
        names = _with_lock_items(node)
        for name in names:
            for outer in self.stack:
                if outer != name:
                    edge = (outer, name)
                    self.edges.setdefault(edge, (self.module.relpath, node.lineno))
        self.stack.extend(names)
        self.generic_visit(node)
        for _ in names:
            self.stack.pop()


def _find_cycles(edges: dict[tuple[str, str], tuple[str, int]]) -> list[list[str]]:
    graph: dict[str, set[str]] = {}
    for outer, inner in edges:
        graph.setdefault(outer, set()).add(inner)
    cycles: list[list[str]] = []
    seen_cycles: set[frozenset[str]] = set()
    for start in sorted(graph):
        path = [start]
        on_path = {start}

        def dfs(node: str) -> None:
            for successor in sorted(graph.get(node, ())):
                if successor == start:
                    key = frozenset(path)
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(path + [start])
                elif successor not in on_path:
                    path.append(successor)
                    on_path.add(successor)
                    dfs(successor)
                    on_path.discard(successor)
                    path.pop()

        dfs(start)
    return cycles


@register
class LockOrderRule(ProjectRule):
    id = "lock-order"
    family = "locks"
    description = (
        "Nested `with <lock>` scopes define a global acquisition order; "
        "any cycle in that order is a potential deadlock."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        edges: dict[tuple[str, str], tuple[str, int]] = {}
        by_path = {module.relpath: module for module in modules}
        for module in modules:
            visitor = _LockNesting(module)
            visitor.visit(module.tree)
            for edge, location in visitor.edges.items():
                edges.setdefault(edge, location)
        for cycle in _find_cycles(edges):
            chain = " -> ".join(cycle)
            first_edge = (cycle[0], cycle[1])
            path, line = edges[first_edge]
            module = by_path[path]
            yield module.finding(
                self,
                None,
                f"inconsistent lock acquisition order: {chain}",
                line=line,
            )
