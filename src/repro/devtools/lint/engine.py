"""Core of the ``repro lint`` static-analysis framework.

The engine is deliberately small: a rule is a class with an ``id``, a
``family`` and a ``check`` hook; the runner parses every Python file in
scope once, hands the shared :class:`SourceModule` to each module rule,
and hands the whole parsed set to each project rule (rules that need a
cross-file view, e.g. global lock ordering or codec parity).

Suppression works per line with ``# repro: allow[rule-id]`` — on the
offending line itself or on a standalone comment line directly above it.
A committed JSON baseline (:class:`Baseline`) grandfathers known findings
by content fingerprint so the CI gate can be enabled before every legacy
violation is fixed; this repo keeps the baseline empty.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path

from .policy import Policy

__all__ = [
    "Finding",
    "Rule",
    "ModuleRule",
    "ProjectRule",
    "SourceModule",
    "Baseline",
    "LintReport",
    "register",
    "registered_rules",
    "run_lint",
    "collect_files",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\s-]+)\]")


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Interprocedural rules attach *evidence*: the call chain that
    establishes the violation, as ``path:line`` frames ordered from the
    entry point down to the offending operation.
    """

    rule: str
    family: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    snippet: str = ""
    evidence: tuple[str, ...] = ()

    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline.

        The digest covers only the rule and the offending line's text —
        never the path — so a fingerprint survives repo relocation; the
        repo-relative path scopes it as a plain prefix.
        """
        digest = hashlib.sha256(
            f"{self.rule}|{self.snippet.strip()}".encode()
        ).hexdigest()
        return f"{self.path}:{self.rule}:{digest[:16]}"

    def render(self) -> str:
        head = f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"
        if not self.evidence:
            return head
        frames = "\n".join(f"    {frame}" for frame in self.evidence)
        return f"{head}\n{frames}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "family": self.family,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint(),
            "evidence": list(self.evidence),
        }


class SourceModule:
    """One parsed source file shared by every rule that inspects it."""

    def __init__(self, root: Path, path: Path, source: str, tree: ast.Module) -> None:
        self.root = root
        self.path = path
        try:
            self.relpath = path.relative_to(root).as_posix()
        except ValueError:
            # Outside the root (explicit path argument): still produce a
            # relative path so fingerprints stay relocation-stable.
            self.relpath = Path(os.path.relpath(path, root)).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._suppressions = self._parse_suppressions()

    @property
    def module_name(self) -> str:
        """Dotted module name derived from the repo-relative path.

        ``src/repro/httpwire/aio/server.py`` -> ``repro.httpwire.aio.server``;
        ``__init__`` segments are dropped so packages name themselves.
        """
        parts = list(Path(self.relpath).parts)
        if parts and parts[0] in ("src", "lib"):
            parts = parts[1:]
        if parts and parts[-1].endswith(".py"):
            parts[-1] = parts[-1][: -len(".py")]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(part for part in parts if part)

    @property
    def package(self) -> str | None:
        """The module's containing package (itself, for ``__init__``)."""
        name = self.module_name
        if not name:
            return None
        if self.relpath.endswith("__init__.py"):
            return name
        return name.rsplit(".", 1)[0] if "." in name else None

    def _parse_suppressions(self) -> dict[int, frozenset[str]]:
        """Map line number -> rule patterns allowed on that line.

        A standalone ``# repro: allow[...]`` comment covers the next
        code line as well (skipping blanks and further comments), so
        multi-line statements can carry the waiver above themselves.
        When that next code line is a decorator, coverage extends
        through the decorator stack to the ``def``/``class`` line the
        finding actually anchors on.
        """
        table: dict[int, set[str]] = {}
        for number, text in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(text)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(1).split(",") if part.strip()}
            table.setdefault(number, set()).update(rules)
            if text.lstrip().startswith("#"):
                # Standalone comment: extend to the following code line.
                follower = number + 1
                while follower <= len(self.lines):
                    stripped = self.lines[follower - 1].strip()
                    if stripped and not stripped.startswith("#"):
                        break
                    follower += 1
                while follower <= len(self.lines):
                    stripped = self.lines[follower - 1].strip()
                    table.setdefault(follower, set()).update(rules)
                    if not stripped.startswith("@"):
                        break
                    # Decorated statement: keep walking down to the
                    # def/class line (covering decorator continuation
                    # lines on the way).
                    follower += 1
                    while follower <= len(self.lines):
                        next_stripped = self.lines[follower - 1].strip()
                        if next_stripped.startswith(("def ", "async def", "class ", "@")):
                            break
                        table.setdefault(follower, set()).update(rules)
                        follower += 1
        return {line: frozenset(rules) for line, rules in table.items()}

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when *rule* is waived on *line*.

        Patterns may be exact rule ids, ``*``, or globs over rule ids
        (``aio-*`` waives the whole family).
        """
        allowed = self._suppressions.get(line)
        if allowed is None:
            return False
        return any(
            pattern == rule or pattern == "*" or fnmatchcase(rule, pattern)
            for pattern in allowed
        )

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self,
        rule: "Rule",
        node: ast.AST | None,
        message: str,
        line: int | None = None,
        evidence: Sequence[str] = (),
    ) -> Finding:
        """Build a Finding anchored at *node* (or an explicit line)."""
        at_line = line if line is not None else getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) if line is None else 0
        return Finding(
            rule=rule.id,
            family=rule.family,
            path=self.relpath,
            line=at_line,
            col=col + 1,
            message=message,
            snippet=self.line_text(at_line),
            evidence=tuple(evidence),
        )


class Rule:
    """Base interface; concrete rules subclass ModuleRule or ProjectRule.

    Rules marked ``interprocedural`` are whole-program passes over the
    flow layer's call graph; they only run when ``run_lint`` is invoked
    with ``interprocedural=True`` (``repro lint --interprocedural``).
    """

    id: str = ""
    family: str = ""
    description: str = ""
    interprocedural: bool = False


class ModuleRule(Rule):
    """A rule checked one file at a time."""

    def check(self, module: SourceModule) -> Iterable[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule that needs every in-scope file at once (cross-file view)."""

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one instance of *cls* to the global registry."""
    rule = cls()
    if not rule.id or not rule.family:
        raise ValueError(f"rule {cls.__name__} must define id and family")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return cls


def registered_rules() -> list[Rule]:
    return sorted(_REGISTRY.values(), key=lambda rule: rule.id)


@dataclass(slots=True)
class Baseline:
    """Committed set of grandfathered finding fingerprints.

    Fingerprints are keyed by repo-relative path, so a committed
    baseline survives the repository being checked out anywhere.
    Legacy entries that carry an absolute path (written by older
    versions, or by runs with an absolute ``--root``) are migrated on
    load: the path component is rewritten relative to the repo root and
    ``migrated`` counts how many entries changed, so callers can
    persist the rewritten file.
    """

    fingerprints: frozenset[str] = frozenset()
    migrated: int = 0

    @staticmethod
    def _split_fingerprint(entry: str) -> tuple[str, str, str] | None:
        """``path:rule:digest`` components, or None for malformed entries."""
        head, sep, digest = entry.rpartition(":")
        if not sep:
            return None
        path, sep, rule = head.rpartition(":")
        if not sep:
            return None
        return path, rule, digest

    @classmethod
    def load(cls, path: Path, root: Path | None = None) -> "Baseline":
        data = json.loads(path.read_text(encoding="utf-8"))
        anchor = (root if root is not None else path.parent).resolve()
        entries: set[str] = set()
        migrated = 0
        for entry in data.get("fingerprints", ()):
            parts = cls._split_fingerprint(str(entry))
            if parts is not None:
                entry_path, rule, digest = parts
                if Path(entry_path).is_absolute():
                    relative = Path(os.path.relpath(entry_path, anchor)).as_posix()
                    entries.add(f"{relative}:{rule}:{digest}")
                    migrated += 1
                    continue
            entries.add(str(entry))
        return cls(fingerprints=frozenset(entries), migrated=migrated)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(fingerprints=frozenset(f.fingerprint() for f in findings))

    def save(self, path: Path) -> None:
        payload = {"version": 2, "fingerprints": sorted(self.fingerprints)}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def matches(self, finding: Finding) -> bool:
        return finding.fingerprint() in self.fingerprints


@dataclass(slots=True)
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json(self) -> dict[str, object]:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in self.findings],
            "parse_errors": [f.to_json() for f in self.parse_errors],
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "clean": self.clean,
            "rules": [
                {"id": rule.id, "family": rule.family, "description": rule.description}
                for rule in registered_rules()
            ],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.parse_errors + self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_checked} file(s)"
            f" ({self.suppressed} suppressed, {self.baselined} baselined)"
        )
        lines.append("repro lint: " + ("clean — " if self.clean else "") + summary)
        return "\n".join(lines)


_DEFAULT_SCAN = ("src", "benchmarks")
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "build", "dist"}


def collect_files(root: Path, paths: Sequence[Path] | None = None) -> list[Path]:
    """Python files to lint: the given paths, or src/ + benchmarks/."""
    targets: list[Path]
    if paths:
        targets = [path if path.is_absolute() else root / path for path in paths]
    else:
        targets = [root / name for name in _DEFAULT_SCAN]
    files: list[Path] = []
    for target in targets:
        if target.is_file() and target.suffix == ".py":
            files.append(target)
        elif target.is_dir():
            files.extend(
                found
                for found in sorted(target.rglob("*.py"))
                if not _SKIP_DIRS.intersection(found.relative_to(root).parts)
            )
    return sorted(set(files))


def _parse_modules(
    root: Path, files: Sequence[Path], report: LintReport
) -> list[SourceModule]:
    modules: list[SourceModule] = []
    for path in files:
        source = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            report.parse_errors.append(
                Finding(
                    rule="parse-error",
                    family="engine",
                    path=path.relative_to(root).as_posix(),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    message=f"cannot parse file: {exc.msg}",
                )
            )
            continue
        modules.append(SourceModule(root, path, source, tree))
    return modules


def _iter_raw_findings(
    modules: Sequence[SourceModule],
    policy: Policy,
    rules: Sequence[Rule],
    by_path: Mapping[str, SourceModule],
) -> Iterator[tuple[Finding, SourceModule | None]]:
    for rule in rules:
        if isinstance(rule, ModuleRule):
            for module in modules:
                if not policy.applies(rule.family, module.relpath):
                    continue
                for finding in rule.check(module):
                    yield finding, module
        elif isinstance(rule, ProjectRule):
            scoped = [m for m in modules if policy.applies(rule.family, m.relpath)]
            if not scoped:
                continue
            for finding in rule.check_project(scoped):
                yield finding, by_path.get(finding.path)


def _frame_suppressed(
    finding: Finding, by_path: Mapping[str, SourceModule]
) -> bool:
    """True when any evidence frame carries a waiver for the rule.

    An interprocedural finding is a whole call chain; allowing the rule
    on *any* frame of that chain (e.g. at the documented fsync-under-
    lock site in the durability journal) waives every chain through it.
    """
    for frame in finding.evidence:
        frame_path, _, frame_line = frame.rpartition(":")
        module = by_path.get(frame_path)
        if module is None or not frame_line.isdigit():
            continue
        if module.is_suppressed(int(frame_line), finding.rule):
            return True
    return False


def run_lint(
    root: Path,
    paths: Sequence[Path] | None = None,
    *,
    policy: Policy | None = None,
    baseline: Baseline | None = None,
    rules: Sequence[Rule] | None = None,
    interprocedural: bool = False,
) -> LintReport:
    """Lint *paths* (default: src/ + benchmarks/) under repo *root*.

    With ``interprocedural=True`` the whole-program flow passes (call
    graph construction plus the ``flow-*`` rules) run in addition to
    the per-module rules; they are skipped by default because graph
    construction is noticeably slower than single-file checks.
    """
    from . import load_builtin_rules
    from .policy import DEFAULT_POLICY

    load_builtin_rules()
    active_policy = policy if policy is not None else DEFAULT_POLICY
    if rules is not None:
        active_rules = list(rules)
    else:
        active_rules = [
            rule
            for rule in registered_rules()
            if interprocedural or not rule.interprocedural
        ]

    report = LintReport()
    files = collect_files(root, paths)
    modules = _parse_modules(root, files, report)
    report.files_checked = len(modules)
    by_path = {module.relpath: module for module in modules}

    kept: list[Finding] = []
    for finding, module in _iter_raw_findings(modules, active_policy, active_rules, by_path):
        if module is not None and module.is_suppressed(finding.line, finding.rule):
            report.suppressed += 1
            continue
        if finding.evidence and _frame_suppressed(finding, by_path):
            report.suppressed += 1
            continue
        if baseline is not None and baseline.matches(finding):
            report.baselined += 1
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.findings = kept
    return report
