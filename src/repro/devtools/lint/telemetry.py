"""Telemetry rules: metric registration hygiene.

The metrics catalogue in ``docs/observability.md`` is only trustworthy if
every instrument is registered with a *grep-able* literal name, the names
follow one convention, and no two modules claim the same name for
different purposes.  These rules pin all three properties at the
``REGISTRY.counter/gauge/histogram`` call sites:

* ``tel-literal-name`` — the name argument must be a string literal, not
  a variable or f-string, so ``git grep <metric>`` finds the owner;
* ``tel-name-format`` — names are ``snake_case`` (the Prometheus subset
  this repo emits: ``^[a-z][a-z0-9_]*$``);
* ``tel-duplicate-registration`` — one name, one call site.  Registering
  the same name twice with the same kind is runtime-legal (idempotent)
  but makes ownership ambiguous; with different kinds it raises at
  import.  Either way the fix is one shared module-level instrument.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable, Iterator, Sequence

from .astutil import dotted_name
from .engine import Finding, ModuleRule, ProjectRule, SourceModule, register

_REGISTER_METHODS = frozenset({"counter", "gauge", "histogram"})
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")


def _registration_calls(module: SourceModule) -> Iterator[ast.Call]:
    """Calls that look like instrument registrations on a metrics registry.

    Heuristic: a ``counter``/``gauge``/``histogram`` method call whose
    receiver is a dotted name ending in a component containing
    ``registry`` (case-insensitive) — matches the module singleton
    ``REGISTRY``, locals like ``registry``, and fields like
    ``self.registry`` or ``self._registry``.
    """
    for node in ast.walk(module.tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _REGISTER_METHODS
        ):
            continue
        receiver = dotted_name(node.func.value)
        if receiver is None:
            continue
        leaf = receiver.rsplit(".", 1)[-1]
        if "registry" in leaf.lower():
            yield node


def _name_arg(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "name":
            return keyword.value
    return None


@register
class LiteralNameRule(ModuleRule):
    id = "tel-literal-name"
    family = "telemetry"
    description = (
        "Metric names at registry.counter/gauge/histogram call sites must "
        "be string literals so every metric is grep-able to its owner."
    )

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for call in _registration_calls(module):
            name = _name_arg(call)
            if name is None:
                yield module.finding(
                    self, call, f"registry.{call.func.attr}() call without a metric name"  # type: ignore[union-attr]
                )
            elif not (isinstance(name, ast.Constant) and isinstance(name.value, str)):
                yield module.finding(
                    self,
                    name,
                    "metric name must be a string literal, not a computed value",
                )


@register
class NameFormatRule(ModuleRule):
    id = "tel-name-format"
    family = "telemetry"
    description = "Metric names are snake_case: ^[a-z][a-z0-9_]*$."

    def check(self, module: SourceModule) -> Iterable[Finding]:
        for call in _registration_calls(module):
            name = _name_arg(call)
            if (
                isinstance(name, ast.Constant)
                and isinstance(name.value, str)
                and _NAME_RE.match(name.value) is None
            ):
                yield module.finding(
                    self,
                    name,
                    f"metric name {name.value!r} is not snake_case "
                    "(^[a-z][a-z0-9_]*$)",
                )


@register
class DuplicateRegistrationRule(ProjectRule):
    id = "tel-duplicate-registration"
    family = "telemetry"
    description = (
        "Each metric name is registered at exactly one call site; share "
        "the module-level instrument instead of re-registering."
    )

    def check_project(self, modules: Sequence[SourceModule]) -> Iterable[Finding]:
        sites: dict[str, list[tuple[SourceModule, ast.expr]]] = {}
        for module in modules:
            for call in _registration_calls(module):
                name = _name_arg(call)
                if isinstance(name, ast.Constant) and isinstance(name.value, str):
                    sites.setdefault(name.value, []).append((module, name))
        for name, registrations in sorted(sites.items()):
            if len(registrations) <= 1:
                continue
            first_module, first_node = registrations[0]
            origin = f"{first_module.relpath}:{first_node.lineno}"
            for module, node in registrations[1:]:
                yield module.finding(
                    self,
                    node,
                    f"metric {name!r} already registered at {origin}; "
                    "share that instrument instead",
                )
