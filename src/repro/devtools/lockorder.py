"""Runtime lock-order detector: the dynamic twin of the ``lock-order`` rule.

The static rule only sees *lexically* nested ``with`` blocks; acquisition
chains that cross call boundaries (proxy engine -> upstream pool, accept
loop -> stats) are invisible to it.  This module closes the gap at run
time: when ``REPRO_LOCKORDER=1``, every lock the wire stack creates
through :func:`make_lock` / :func:`make_rlock` is wrapped so each
acquisition records a *name -> name* edge from every lock the thread
already holds.  A cycle in that graph means two code paths acquire the
same pair of locks in opposite orders — a latent deadlock — and raises
:class:`LockOrderError` immediately, with the offending chain, instead of
wedging a stress run.

Locks are named by their owning class attribute (``"HttpUpstream._lock"``)
so the graph talks about lock *roles*, not instances; reentrant
re-acquisition of the same role is ignored.  When the environment switch
is off, the factories return plain ``threading`` primitives with zero
overhead.
"""

from __future__ import annotations

import os
import threading
from typing import Any
from collections.abc import Iterator
from contextlib import contextmanager

__all__ = [
    "LockOrderError",
    "LockOrderMonitor",
    "InstrumentedLock",
    "enabled",
    "make_lock",
    "make_rlock",
    "monitor",
]

_ENV_SWITCH = "REPRO_LOCKORDER"
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def enabled() -> bool:
    """True when the environment asks for lock-order instrumentation."""
    return os.environ.get(_ENV_SWITCH, "").strip().lower() in _TRUTHY


class LockOrderError(RuntimeError):
    """Two code paths acquire the same locks in opposite orders."""

    def __init__(self, cycle: list[str]) -> None:
        self.cycle = list(cycle)
        super().__init__(
            "lock acquisition order cycle: " + " -> ".join(self.cycle)
        )


class LockOrderMonitor:
    """Global acquisition graph + per-thread held-lock stacks."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        # edge A -> B: some thread acquired B while holding A.
        self._edges: dict[str, set[str]] = {}
        self._local = threading.local()

    # -- per-thread stack -------------------------------------------------

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held(self) -> tuple[str, ...]:
        """Lock names the calling thread currently holds (outermost first)."""
        return tuple(self._stack())

    # -- recording --------------------------------------------------------

    def before_acquire(self, name: str) -> None:
        """Record edges for acquiring *name*; raise on an order cycle.

        Called *before* blocking on the underlying primitive so a
        would-be deadlock surfaces as an exception, not a hang.
        """
        stack = self._stack()
        if name in stack:
            return  # reentrant acquisition of the same lock role
        with self._guard:
            changed = False
            edges = self._edges
            for prior in stack:
                successors = edges.setdefault(prior, set())
                if name not in successors:
                    successors.add(name)
                    changed = True
            if changed or stack:
                cycle = self._cycle_through(name)
                if cycle is not None:
                    raise LockOrderError(cycle)

    def on_acquired(self, name: str) -> None:
        self._stack().append(name)

    def on_release(self, name: str) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == name:
                del stack[index]
                return

    # -- graph queries ----------------------------------------------------

    def _cycle_through(self, start: str) -> list[str] | None:
        """A path start -> ... -> start in the edge graph, if one exists."""
        path = [start]
        seen = {start}

        def dfs(node: str) -> list[str] | None:
            for successor in sorted(self._edges.get(node, ())):
                if successor == start:
                    return path + [start]
                if successor not in seen:
                    seen.add(successor)
                    path.append(successor)
                    found = dfs(successor)
                    if found is not None:
                        return found
                    path.pop()
            return None

        return dfs(start)

    def edges(self) -> dict[str, frozenset[str]]:
        """Snapshot of the acquisition graph (for tests and reports)."""
        with self._guard:
            return {name: frozenset(successors) for name, successors in self._edges.items()}

    def reset(self) -> None:
        with self._guard:
            self._edges.clear()
        self._local = threading.local()


_MONITOR = LockOrderMonitor()


def monitor() -> LockOrderMonitor:
    """The process-wide monitor shared by every instrumented lock."""
    return _MONITOR


class InstrumentedLock:
    """Wraps a threading lock, reporting acquisitions to the monitor.

    Mirrors the ``Lock``/``RLock`` surface the wire stack uses: context
    manager, ``acquire(blocking, timeout)``, ``release()``.
    """

    __slots__ = ("_inner", "_name", "_monitor")

    def __init__(self, inner: Any, name: str, mon: LockOrderMonitor | None = None) -> None:
        self._inner = inner
        self._name = name
        self._monitor = mon if mon is not None else _MONITOR

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._monitor.before_acquire(self._name)
        got = self._inner.acquire(blocking, timeout)
        if got:
            self._monitor.on_acquired(self._name)
        return got

    def release(self) -> None:
        self._inner.release()
        self._monitor.on_release(self._name)

    def __enter__(self) -> "InstrumentedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __repr__(self) -> str:
        return f"<InstrumentedLock {self._name!r} wrapping {self._inner!r}>"


def make_lock(name: str) -> Any:
    """A ``threading.Lock``, instrumented when REPRO_LOCKORDER is on.

    Composes with the race sanitizer: under ``REPRO_RACE=1`` the result
    is additionally wrapped in :class:`repro.devtools.racecheck.RaceLock`
    so one acquisition feeds both detectors.
    """
    from . import racecheck

    lock: Any = threading.Lock()
    if enabled():
        lock = InstrumentedLock(lock, name)
    return racecheck.wrap_lock(lock, name)


def make_rlock(name: str) -> Any:
    """A ``threading.RLock``, instrumented when REPRO_LOCKORDER is on.

    Same composition as :func:`make_lock`, reentrancy preserved: the
    race monitor counts holds per name, so nested acquires balance.
    """
    from . import racecheck

    lock: Any = threading.RLock()
    if enabled():
        lock = InstrumentedLock(lock, name)
    return racecheck.wrap_lock(lock, name)


@contextmanager
def instrumented(name: str, inner: Any = None) -> Iterator[InstrumentedLock]:
    """Context manager yielding a held instrumented lock (test helper)."""
    lock = InstrumentedLock(inner if inner is not None else threading.Lock(), name)
    with lock:
        yield lock
