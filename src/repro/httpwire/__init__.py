"""Loopback-socket demonstration of the piggybacking protocol."""

from .netclient import HttpConnection, fetch_once
from .netserver import PiggybackHttpServer, PlainHttpServer, synthetic_body
from .netproxy import HttpUpstream, PiggybackHttpProxy
from .netcenter import TransparentHttpVolumeCenter

__all__ = [
    "HttpConnection",
    "fetch_once",
    "PiggybackHttpServer",
    "PlainHttpServer",
    "synthetic_body",
    "HttpUpstream",
    "PiggybackHttpProxy",
    "TransparentHttpVolumeCenter",
]
