"""Loopback-socket demonstration of the piggybacking protocol."""

from .connbase import ThreadedWireServer, WireServerCore, WireServerStats
from .netclient import HttpConnection, fetch_once
from .netserver import PiggybackHttpServer, PlainHttpServer, synthetic_body
from .netproxy import HttpUpstream, PiggybackHttpProxy, UpstreamPolicy, UpstreamStats
from .netcenter import TransparentHttpVolumeCenter
from .loadgen import ClientState, LoadConfig, LoadReport, percentile, run_load
from .faults import Fault, FaultInjectingInterposer
from .backends import BACKENDS

__all__ = [
    "ThreadedWireServer",
    "WireServerCore",
    "WireServerStats",
    "BACKENDS",
    "ClientState",
    "HttpConnection",
    "fetch_once",
    "PiggybackHttpServer",
    "PlainHttpServer",
    "synthetic_body",
    "HttpUpstream",
    "PiggybackHttpProxy",
    "UpstreamPolicy",
    "UpstreamStats",
    "TransparentHttpVolumeCenter",
    "LoadConfig",
    "LoadReport",
    "percentile",
    "run_load",
    "Fault",
    "FaultInjectingInterposer",
]
