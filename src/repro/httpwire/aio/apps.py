"""Async wire frontends for the origin, proxy, and volume center.

Each class pairs a backend-neutral application core (the same mixin the
threaded frontend uses) with :class:`.server.AsyncWireServer`, so the two
backends share one implementation of request translation, admin
endpoints, and piggyback trailer handling — and therefore answer
byte-identical responses.

Offload policy per app:

* **origin** — the serving path is lock-free (epoch snapshots + the
  piggyback trailer cache), so handlers run inline on the loop by
  default; attaching an access logger or durable state (journal fsyncs)
  flips on executor offload so disk I/O never stalls the loop;
* **proxy / volume center** — the upstream exchange is blocking socket
  I/O on the pooled sync client, so handlers always offload.
"""

from __future__ import annotations

from collections.abc import Callable

from ...proxy.proxy import ProxyConfig
from ...server.server import PiggybackServer
from ...server.volume_center import TransparentVolumeCenter
from ..netcenter import VolumeCenterApp
from ..netproxy import PiggybackProxyApp, UpstreamPolicy
from ..netserver import PiggybackOriginApp, PlainOriginApp
from .server import AsyncWireServer

__all__ = [
    "AsyncPiggybackHttpServer",
    "AsyncPlainHttpServer",
    "AsyncPiggybackHttpProxy",
    "AsyncTransparentHttpVolumeCenter",
]


class AsyncPiggybackHttpServer(PiggybackOriginApp, AsyncWireServer):
    """Event-loop wire frontend for one :class:`PiggybackServer`."""

    def __init__(
        self,
        server: PiggybackServer,
        site_host: str,
        address: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
        access_logger=None,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_connections: int = 20000,
        durable_state=None,
    ):
        AsyncWireServer.__init__(
            self,
            address,
            port,
            io_timeout=io_timeout,
            idle_timeout=idle_timeout,
            max_connections=max_connections,
            # Disk I/O (access-log flushes, journal fsyncs) must not run
            # on the event loop; the pure in-memory path stays inline.
            offload_handler=access_logger is not None or durable_state is not None,
            name=f"origin:{site_host}",
        )
        self._init_origin_app(server, site_host, clock, access_logger, durable_state)


class AsyncPlainHttpServer(PlainOriginApp, AsyncWireServer):
    """Event-loop legacy origin: plain HTTP/1.1, no piggyback support."""

    def __init__(
        self,
        resources: dict[str, tuple[bytes, float]],
        address: str = "127.0.0.1",
        port: int = 0,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_connections: int = 20000,
    ):
        AsyncWireServer.__init__(
            self,
            address,
            port,
            io_timeout=io_timeout,
            idle_timeout=idle_timeout,
            max_connections=max_connections,
            name="legacy-origin",
        )
        self._init_plain_app(resources)


class AsyncPiggybackHttpProxy(PiggybackProxyApp, AsyncWireServer):
    """Event-loop wire frontend for one :class:`PiggybackProxy`."""

    def __init__(
        self,
        origins: dict[str, tuple[str, int]],
        config: ProxyConfig = ProxyConfig(name="wire-proxy"),
        address: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
        upstream_policy: UpstreamPolicy = UpstreamPolicy(),
        serve_stale_on_error: bool = True,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_connections: int = 20000,
        executor_workers: int = 32,
    ):
        AsyncWireServer.__init__(
            self,
            address,
            port,
            io_timeout=io_timeout,
            idle_timeout=idle_timeout,
            max_connections=max_connections,
            # The upstream exchange blocks on pooled sync sockets.
            offload_handler=True,
            executor_workers=executor_workers,
            name="piggyback-proxy",
        )
        self._init_proxy_app(
            origins, config, clock, upstream_policy, serve_stale_on_error
        )

    def stop(self, drain_timeout: float = 5.0) -> None:
        super().stop(drain_timeout)
        self.upstream.close()


class AsyncTransparentHttpVolumeCenter(VolumeCenterApp, AsyncWireServer):
    """Event-loop on-path intermediary injecting piggybacks."""

    def __init__(
        self,
        origins: dict[str, tuple[str, int]],
        center: TransparentVolumeCenter | None = None,
        address: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_connections: int = 20000,
        upstream_timeout: float = 10.0,
        executor_workers: int = 32,
    ):
        AsyncWireServer.__init__(
            self,
            address,
            port,
            io_timeout=io_timeout,
            idle_timeout=idle_timeout,
            max_connections=max_connections,
            # The origin round-trip blocks on a fresh sync connection.
            offload_handler=True,
            executor_workers=executor_workers,
            name="volume-center",
        )
        self._init_center_app(origins, center, clock, upstream_timeout)
