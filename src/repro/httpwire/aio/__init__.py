"""Event-loop wire stack: asyncio twins of the threaded servers/client.

Selectable everywhere via ``--backend threaded|async`` (see
:mod:`repro.httpwire.backends`).  The threaded stack remains the
differential oracle — both backends share the application cores and
must produce byte-identical responses.
"""

from .server import AsyncWireServer
from .client import AsyncHttpConnection, fetch_once_async
from .apps import (
    AsyncPiggybackHttpProxy,
    AsyncPiggybackHttpServer,
    AsyncPlainHttpServer,
    AsyncTransparentHttpVolumeCenter,
)
from .loadgen import run_load_async

__all__ = [
    "AsyncWireServer",
    "AsyncHttpConnection",
    "fetch_once_async",
    "AsyncPiggybackHttpServer",
    "AsyncPlainHttpServer",
    "AsyncPiggybackHttpProxy",
    "AsyncTransparentHttpVolumeCenter",
    "run_load_async",
]
