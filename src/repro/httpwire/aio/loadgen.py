"""Open-loop async load generator: thousands of clients, one thread.

The threaded runner in :mod:`repro.httpwire.loadgen` spends one OS
thread per client, which tops out around a few hundred clients — not
enough to saturate the event-loop server it is supposed to measure.
This runner multiplexes every client onto one asyncio loop: each client
is a per-connection coroutine state machine driving one persistent
:class:`~.client.AsyncHttpConnection`, firing on the same deterministic
Poisson arrival schedule the threaded runner uses.

Determinism and comparability are inherited rather than re-implemented:

* request streams come from the shared
  :class:`~repro.httpwire.loadgen.ClientState` (seeded RNG, IMS memory),
  so for a given seed both runners issue identical request sequences;
* results flow through the same ``_Accumulator``, so
  :class:`~repro.httpwire.loadgen.LoadReport` output is shaped (and
  formatted) identically across backends.

``LoadConfig.max_inflight`` bounds exchanges simultaneously in flight
across all clients (0 = unbounded): with target-RPS arrivals this is the
open-loop backpressure valve — arrivals past the bound queue on the
semaphore instead of stampeding a saturated server.

Client trace spans are deliberately not opened here: the tracer's span
context is thread-local, and interleaved coroutine await points would
corrupt parent linkage across clients sharing the loop thread.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence

from ...telemetry import REGISTRY, PeriodicFlusher
from ..loadgen import (
    _TEL_CLIENT_ERRORS,
    _TEL_CLIENT_REQUEST_SECONDS,
    _TEL_CLIENT_REQUESTS,
    _TEL_ERROR_KIND,
    ClientState,
    LoadConfig,
    LoadReport,
    Validator,
    _Accumulator,
    _open_loop_schedules,
    classify_error,
)
from .client import AsyncHttpConnection

__all__ = ["run_load_async"]


async def _client_run(
    state: ClientState,
    address: str,
    port: int,
    config: LoadConfig,
    accumulator: _Accumulator,
    validate: Validator | None,
    schedule: Sequence[float] | None,
    start_time: float,
    inflight: asyncio.Semaphore | None,
) -> None:
    """One client's request loop — the async twin of ``_Client.run``."""
    connection = AsyncHttpConnection(address, port, timeout=config.timeout)
    try:
        for sequence in range(config.requests_per_client):
            if schedule is not None:
                due = start_time + schedule[sequence]
                delay = due - time.monotonic()
                if delay > 0:
                    await asyncio.sleep(delay)
            if not config.keepalive:
                # Fresh connection per request; the server closes its
                # side after answering a Connection: close request.
                connection.close()
            url = state.next_url()
            request = state.build_request(url)
            measured = sequence >= config.warmup_requests
            _TEL_CLIENT_REQUESTS.inc()
            if inflight is not None:
                await inflight.acquire()
            try:
                fresh = not connection.connected
                begin = time.perf_counter()
                try:
                    response = await connection.request(request)
                except (
                    EOFError, TimeoutError, ConnectionError, OSError, ValueError
                ) as exc:
                    connection.close()
                    kind = classify_error(exc, fresh)
                    _TEL_CLIENT_ERRORS.inc()
                    _TEL_ERROR_KIND[kind].inc()
                    accumulator.record(
                        0.0, None, measured=measured, corrupted=False,
                        error_kind=kind,
                    )
                    continue
                latency = time.perf_counter() - begin
            finally:
                if inflight is not None:
                    inflight.release()
            _TEL_CLIENT_REQUEST_SECONDS.observe(latency)
            state.note_response(url, response)
            corrupted = bool(validate) and not validate(url, response)
            accumulator.record(
                latency, response, measured=measured, corrupted=corrupted
            )
    finally:
        connection.close()


async def _run(
    address: str,
    port: int,
    urls: Sequence[str],
    config: LoadConfig,
    accumulator: _Accumulator,
    validate: Validator | None,
) -> None:
    schedules = _open_loop_schedules(config) if config.mode == "open" else None
    inflight = (
        asyncio.Semaphore(config.max_inflight) if config.max_inflight > 0 else None
    )
    start_time = time.monotonic()
    tasks = [
        asyncio.create_task(
            _client_run(
                ClientState(index, urls, config),
                address,
                port,
                config,
                accumulator,
                validate,
                schedules[index] if schedules is not None else None,
                start_time,
                inflight,
            ),
            name=f"loadgen-{index}",
        )
        for index in range(config.clients)
    ]
    # Bounded drain mirroring the threaded runner: a wedged client fails
    # the run instead of hanging it.
    budget = max(30.0, config.requests_per_client * (config.timeout + 1.0))
    done, pending = await asyncio.wait(tasks, timeout=budget)
    for task in pending:
        task.cancel()
    if pending:
        await asyncio.gather(*pending, return_exceptions=True)
    for task in done:
        exc = task.exception()
        if exc is not None:
            raise exc


def run_load_async(
    address: str,
    port: int,
    urls: Sequence[str],
    config: LoadConfig = LoadConfig(),
    validate: Validator | None = None,
    *,
    flush_path: str | None = None,
    flush_interval: float = 0.5,
) -> LoadReport:
    """Run one async load pass and return the merged report.

    Same contract, knobs, and report shape as
    :func:`repro.httpwire.loadgen.run_load`; call it from sync code (it
    owns its event loop for the duration of the run).
    """
    if not urls:
        raise ValueError("need at least one URL to request")
    accumulator = _Accumulator()
    flusher = (
        PeriodicFlusher(
            [accumulator.registry, REGISTRY], flush_path, interval=flush_interval
        )
        if flush_path is not None
        else None
    )
    begin = time.perf_counter()
    if flusher is not None:
        flusher.start()
    try:
        asyncio.run(_run(address, port, urls, config, accumulator, validate))
    finally:
        if flusher is not None:
            flusher.stop()
    report = accumulator.report()
    report.mode = config.mode
    report.clients = config.clients
    report.duration = time.perf_counter() - begin
    if config.mode == "open":
        report.target_rps = config.rate
    return report
