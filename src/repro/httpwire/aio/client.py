"""Async HTTP/1.1 client with persistent connections.

Event-loop twin of :class:`~repro.httpwire.netclient.HttpConnection`:
one :class:`AsyncHttpConnection` holds one persistent TCP connection,
every operation is bounded by the connection timeout, and
:meth:`AsyncHttpConnection.request` transparently reconnects once when
the server closed the connection between exchanges — resending the same
serialized bytes, exactly like the sync client.  Shares the sync
client's ``wire_client_*`` telemetry instruments so both backends show
up in one snapshot.
"""

from __future__ import annotations

import asyncio

from ...httpmodel.aio import read_response_async
from ...httpmodel.messages import HttpRequest, HttpResponse

# Shared with the sync client: one instrument family for both backends.
from ..netclient import (
    _TEL_CLIENT_ERRORS,
    _TEL_CLIENT_REQUESTS,
    _TEL_CONNECT_SECONDS,
    _TEL_CONNECTS,
    _TEL_RECONNECTS,
)

__all__ = ["AsyncHttpConnection", "fetch_once_async"]

# StreamReader line limit matching the async server's.
_STREAM_LIMIT = 1 << 20


class AsyncHttpConnection:
    """A persistent async client connection to one host:port."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    @property
    def connected(self) -> bool:
        """Whether a live stream is currently held (best effort: a peer
        close is only discovered on the next exchange)."""
        return self._writer is not None

    async def _ensure_connected(self) -> None:
        if self._writer is not None:
            return
        with _TEL_CONNECT_SECONDS.time():
            self._reader, self._writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port, limit=_STREAM_LIMIT),
                self.timeout,
            )
        _TEL_CONNECTS.inc()

    async def request_once(self, message: HttpRequest) -> HttpResponse:
        """Send one request and read its response; no reconnect, no retry.

        Any failure (timeout, reset, parse error) propagates after the
        connection is closed, leaving it safe to retry on a fresh one.
        """
        return await self._exchange(message.serialize())

    async def _exchange(self, wire: bytes) -> HttpResponse:
        """Send pre-serialized request bytes and read one response."""
        await self._ensure_connected()
        _TEL_CLIENT_REQUESTS.inc()
        try:
            assert self._writer is not None and self._reader is not None
            self._writer.write(wire)
            await asyncio.wait_for(self._writer.drain(), self.timeout)
            return await asyncio.wait_for(read_response_async(self._reader), self.timeout)
        except BaseException:
            _TEL_CLIENT_ERRORS.inc()
            self.close()
            raise

    async def request(self, message: HttpRequest) -> HttpResponse:
        """Send one request and read its response, reconnecting once on
        a connection that the server closed between exchanges.

        The request is serialized once; the retry resends the same bytes.
        """
        wire = message.serialize()
        try:
            return await self._exchange(wire)
        except (EOFError, ConnectionError, BrokenPipeError):
            _TEL_RECONNECTS.inc()
            return await self._exchange(wire)

    def close(self) -> None:
        """Drop the connection; safe to call repeatedly and from sync code."""
        writer = self._writer
        self._reader = None
        self._writer = None
        if writer is not None:
            try:
                writer.close()
            except (ConnectionError, OSError, RuntimeError):
                pass

    async def __aenter__(self) -> "AsyncHttpConnection":
        await self._ensure_connected()
        return self

    async def __aexit__(self, *exc_info) -> None:
        self.close()


async def fetch_once_async(
    host: str, port: int, message: HttpRequest, timeout: float = 10.0
) -> HttpResponse:
    """Open a connection, perform one exchange, and close."""
    async with AsyncHttpConnection(host, port, timeout=timeout) as connection:
        return await connection.request(message)
