"""Event-loop wire frontend: one thread, one selector, C10K connections.

:class:`AsyncWireServer` is the asyncio twin of
:class:`~repro.httpwire.connbase.ThreadedWireServer`.  Where the threaded
frontend pins one worker thread per connection (capped at ``max_workers``,
so thousands of mostly-idle keep-alive clients exhaust the pool), this
frontend multiplexes every connection onto a single event loop — an idle
keep-alive connection costs one socket and a parked protocol object,
nothing more.

The two frontends share :class:`~repro.httpwire.connbase.WireServerCore`
(counters, ``/.repro/`` admin namespace, request dispatch with its 500
mapping and trace span), so for the same request stream they produce
byte-identical responses — the differential suite in
``tests/test_wire_aio_differential.py`` enforces this.

Threading model
---------------

The event loop runs on a dedicated daemon thread so the public surface —
``start()``, ``stop()``, ``drain()``, ``active_workers()``, the context
manager — stays synchronous and drop-in compatible with the threaded
server; callers never need an event loop of their own.  Cross-thread
control uses ``call_soon_threadsafe`` exclusively.

Handlers are synchronous (:meth:`WireServerCore._respond` and everything
under it).  By default they run inline on the loop thread, which is
correct for the origin's lock-free serving path (PR 5 made volume reads
epoch-snapshot based precisely so no handler blocks on a contended
lock).  Handlers that *do* block — the proxy's upstream exchange, the
volume center's origin round-trip, an origin with journal fsyncs or
access-log flushes — set ``offload_handler=True`` and run on a bounded
thread pool instead, keeping the loop free to shuffle bytes.

Hot-path design
---------------

Each connection is a raw :class:`asyncio.Protocol` feeding a small
owned buffer (:class:`_ConnReader`), not an ``asyncio.StreamReader``:
a full request head is claimed with one ``find`` over the buffer
instead of a coroutine round-trip per header line, and read timeouts
are enforced by one lazily rescheduled per-connection timer instead of
an ``asyncio.timeout`` context (a timer create/cancel pair) per read.
The timer refreshes its deadline on every received chunk, matching
the threaded stack's per-``recv`` ``settimeout`` semantics.  Together
these keep the event-loop stack at parity with threaded throughput even
at thread-friendly client counts — see
``benchmarks/bench_wire_scaling.py``.

Telemetry adds two loop-specific instruments: a
``wire_async_active_connections`` gauge and a
``wire_eventloop_lag_seconds`` gauge sampled by a heartbeat task (how
late a short sleep fires — the classic event-loop starvation signal).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import socket
import threading

from ...devtools.lockorder import make_lock
from ...httpmodel.aio import read_request_async
from ...httpmodel.messages import HttpParseError, HttpRequest, HttpResponse, _split_head
from ...telemetry import REGISTRY
from ..connbase import WireServerCore, WireServerStats

__all__ = ["AsyncWireServer"]

_TEL_ASYNC_ACTIVE = REGISTRY.gauge(
    "wire_async_active_connections",
    "connections currently multiplexed on async wire servers",
)
_TEL_LOOP_LAG = REGISTRY.gauge(
    "wire_eventloop_lag_seconds",
    "latest sampled event-loop scheduling lag (heartbeat overshoot)",
)

# Header-block size limit: generous, far above anything the sync stack
# sees in practice (which reads heads unbounded).
_STREAM_LIMIT = 1 << 20


class _ReadTimeout(TimeoutError):
    """Raised into a pending read by the connection watchdog."""


def _find_head_end(buffer: bytearray) -> int:
    """End offset of a complete head in *buffer*, or -1.

    Exactly mirrors the sync reader's line loop: lines split on ``\\n``,
    the head ends at the first line that is exactly ``\\r\\n`` or
    ``\\n`` — which is the head's first two bytes, or the first
    ``\\n\\r\\n`` / ``\\n\\n`` sequence, whichever comes first.
    """
    if buffer[:2] == b"\r\n":
        return 2
    if buffer[:1] == b"\n":
        return 1
    crlf = buffer.find(b"\n\r\n")
    lf = buffer.find(b"\n\n")
    if crlf == -1:
        return -1 if lf == -1 else lf + 2
    if lf == -1 or crlf < lf:
        return crlf + 3
    return lf + 2


class _ConnReader:
    """Minimal protocol-fed reader with the sync readers' semantics.

    Implements the surface :func:`~repro.httpmodel.aio.read_request_async`
    needs — ``read_head`` (fast path), ``readline``, ``readexactly`` —
    over one owned buffer, so claiming a buffered request costs a single
    scan, not a coroutine send per header line.
    """

    __slots__ = ("_loop", "_buffer", "_eof", "_exc", "_waiter", "_at_head")

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._buffer = bytearray()
        self._eof = False
        self._exc: BaseException | None = None
        self._waiter: asyncio.Future | None = None
        # True exactly while the serve task is parked inside read_head
        # waiting for bytes — i.e. the buffer sits at a message boundary
        # and the connection protocol may serve complete buffered
        # requests inline (see _WireConnection._serve_inline).
        self._at_head = False

    # -- protocol side -----------------------------------------------------

    def feed_data(self, data: bytes) -> None:
        self._buffer += data
        self._wake()

    def feed_eof(self) -> None:
        self._eof = True
        self._wake()

    def set_exception(self, exc: BaseException) -> None:
        self._exc = exc
        self._wake()

    def _wake(self) -> None:
        waiter = self._waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    async def _wait(self) -> None:
        self._waiter = self._loop.create_future()
        try:
            await self._waiter
        finally:
            self._waiter = None

    # -- reader side -------------------------------------------------------

    async def read_head(self) -> bytes:
        """One start line plus header block; the aio readers' fast path."""
        while True:
            end = _find_head_end(self._buffer)
            if end != -1:
                head = bytes(self._buffer[:end])
                del self._buffer[:end]
                return head
            if self._exc is not None:
                raise self._exc
            if len(self._buffer) > _STREAM_LIMIT:
                raise HttpParseError("header block exceeds stream limit")
            if self._eof:
                if not self._buffer:
                    raise EOFError("connection closed before message start")
                raise HttpParseError("connection closed inside header block")
            self._at_head = True
            try:
                await self._wait()
            finally:
                self._at_head = False

    async def readline(self) -> bytes:
        while True:
            index = self._buffer.find(b"\n")
            if index != -1:
                line = bytes(self._buffer[: index + 1])
                del self._buffer[: index + 1]
                return line
            if self._exc is not None:
                raise self._exc
            if len(self._buffer) > _STREAM_LIMIT:
                raise HttpParseError("line exceeds stream limit")
            if self._eof:
                # Partial final line (or b"" at clean EOF), like
                # StreamReader.readline / file.readline.
                line = bytes(self._buffer)
                self._buffer.clear()
                return line
            await self._wait()

    async def readexactly(self, count: int) -> bytes:
        while len(self._buffer) < count:
            if self._exc is not None:
                raise self._exc
            if self._eof:
                raise asyncio.IncompleteReadError(bytes(self._buffer), count)
            await self._wait()
        data = bytes(self._buffer[:count])
        del self._buffer[:count]
        return data


class _WireConnection(asyncio.BufferedProtocol):
    """One client connection: transport callbacks + watchdog state.

    A ``BufferedProtocol``: the transport recvs straight into the
    server's shared receive buffer (``get_buffer``/``buffer_updated``
    run back-to-back on the loop thread, so one buffer serves every
    connection) instead of allocating a fresh 256 KiB bytes object per
    recv — at high request rates that allocation is an mmap/munmap pair
    per request.
    """

    __slots__ = (
        "server",
        "transport",
        "reader",
        "task",
        "served",
        "reading",
        "read_timeout",
        "deadline",
        "paused",
        "_timer",
        "_unpause_waiter",
        "_tracked",
        "_out",
    )

    def __init__(self, server: "AsyncWireServer") -> None:
        self.server = server
        self.transport: asyncio.Transport | None = None
        self.reader: _ConnReader | None = None
        self.task: asyncio.Task | None = None
        self.served = 0
        self.reading = False
        self.read_timeout = server.io_timeout
        self.deadline = 0.0
        self.paused = False
        self._timer: asyncio.TimerHandle | None = None
        self._unpause_waiter: asyncio.Future | None = None
        self._tracked = False
        self._out = bytearray()  # inline fast path's reusable send buffer

    # -- transport callbacks -----------------------------------------------

    def connection_made(self, transport) -> None:
        server = self.server
        loop = server._loop
        assert loop is not None
        if not server._running:
            # Accepted in the instant between drain() and the listener
            # actually closing: refuse without counting.
            transport.abort()
            return
        if len(server._conn_tasks) >= server.max_connections:
            transport.abort()
            return
        self.transport = transport
        self.reader = _ConnReader(loop)
        self._tracked = True
        _TEL_ASYNC_ACTIVE.inc()
        server._count("connections_accepted")
        self.deadline = loop.time() + server.io_timeout
        self._timer = loop.call_later(server.io_timeout, self._on_timer)
        self.task = loop.create_task(server._serve_guard(self))
        server._conn_tasks.add(self.task)
        self.task.add_done_callback(server._conn_tasks.discard)

    def get_buffer(self, sizehint: int) -> memoryview:
        return self.server._recv_view

    def buffer_updated(self, nbytes: int) -> None:
        reader = self.reader
        assert reader is not None
        if self.reading:
            # Per-recv deadline refresh, mirroring the threaded stack's
            # socket ``settimeout`` (which bounds silence, not messages).
            assert self.server._loop is not None
            self.deadline = self.server._loop.time() + self.read_timeout
        reader._buffer += self.server._recv_view[:nbytes]
        if (
            reader._at_head
            and self.server._executor is None
            and not self.paused
        ):
            # The serve task is parked at a message boundary and handlers
            # run inline on this thread anyway: dispatch complete
            # buffered requests right here, skipping the future/task
            # wakeup per request.  Anything the fast path cannot prove
            # trivial (bodies, malformed heads, backpressure) falls
            # through to the serve task with identical semantics.
            self._serve_inline()
            return
        reader._wake()

    def _serve_inline(self) -> None:
        """Serve complete bodyless buffered requests on the hot path.

        Only runs while the serve task is parked inside ``read_head`` —
        the buffer provably sits at a message boundary, and nothing can
        resume the task while this (single-threaded) callback runs.
        Every deferral below wakes the task instead, whose slow path
        owns all error semantics, so the two paths stay byte-identical.
        """
        server = self.server
        reader = self.reader
        transport = self.transport
        assert reader is not None and transport is not None
        buffer = reader._buffer
        if not server._running or transport.is_closing():
            # Mirrors the serve loop's top-of-loop running check:
            # draining/stopped connections close without reading more.
            # Checked once, not per request: this callback never yields,
            # so no drain/stop can land mid-loop, and every close below
            # is followed by a return.
            transport.close()
            return
        while True:
            end = _find_head_end(buffer)
            if end == -1:
                if len(buffer) > _STREAM_LIMIT:
                    reader._wake()  # slow path raises the 400
                return  # partial head: stay parked, watchdog armed
            try:
                start_line, headers = _split_head(bytes(buffer[:end]))
            except HttpParseError:
                reader._wake()
                return
            parts = start_line.split()
            if (
                len(parts) != 3
                or not parts[2].upper().startswith("HTTP/")
                or headers.get("Content-Length") is not None
                or "chunked" in (headers.get("Transfer-Encoding") or "").lower()
            ):
                reader._wake()  # body-carrying or malformed: slow path
                return
            del buffer[:end]
            request = HttpRequest(
                method=parts[0], target=parts[1], headers=headers,
                body=b"", version=parts[2],
            )
            response = server._respond(request)
            out = self._out
            del out[:]
            response.serialize_into(out)
            # Passing the reusable buffer itself is safe: the selector
            # transport either sends it in full right away or copies the
            # unsent remainder into its own buffer before returning.
            transport.write(out)
            server._count("requests_served")
            self.served += 1
            if server._draining:
                transport.close()  # lame duck: answered, now close
                return
            if (headers.get("Connection") or "").lower() == "close":
                transport.close()
                return
            # Move the parked read onto the idle clock now that >=1
            # request is served.  Without an idle timeout the clock is
            # already right: buffer_updated refreshed the io_timeout
            # deadline when these bytes arrived.
            if server.idle_timeout is not None:
                self.begin_read(min(server.io_timeout, server.idle_timeout))
            if self.paused:
                # Write backpressure: let the serve task's _send wait
                # for the transport to unclog before reading on.
                if buffer:
                    reader._wake()
                return
            if not buffer:
                return  # all buffered requests served: stay parked

    def eof_received(self) -> bool:
        if self.reader is not None:
            self.reader.feed_eof()
        return False  # close our side too

    def connection_lost(self, exc: Exception | None) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.reader is not None:
            if exc is not None:
                self.reader.set_exception(exc)
            else:
                self.reader.feed_eof()
        if self.paused:
            self.paused = False
            waiter = self._unpause_waiter
            if waiter is not None and not waiter.done():
                waiter.set_result(None)
        if self._tracked:
            self._tracked = False
            _TEL_ASYNC_ACTIVE.dec()

    def pause_writing(self) -> None:
        self.paused = True

    def resume_writing(self) -> None:
        self.paused = False
        waiter = self._unpause_waiter
        if waiter is not None and not waiter.done():
            waiter.set_result(None)

    # -- watchdog ----------------------------------------------------------

    def begin_read(self, timeout: float) -> None:
        loop = self.server._loop
        assert loop is not None
        self.read_timeout = timeout
        self.deadline = loop.time() + timeout
        self.reading = True
        # Lazy timer: only rearm when the armed fire time would overshoot
        # the new deadline (e.g. a shorter idle timeout kicking in).  On a
        # busy keep-alive connection this fires once per timeout period,
        # not once per request.
        if self._timer is not None and self._timer.when() > self.deadline + 1e-3:
            self._timer.cancel()
            self._timer = loop.call_later(timeout, self._on_timer)

    def end_read(self) -> None:
        self.reading = False

    def _on_timer(self) -> None:
        loop = self.server._loop
        if loop is None or self.transport is None or self.transport.is_closing():
            self._timer = None
            return
        now = loop.time()
        if self.reading and now >= self.deadline:
            self._timer = None
            assert self.reader is not None
            self.reader.set_exception(_ReadTimeout())
            return
        target = self.deadline if self.reading else now + self.server.io_timeout
        self._timer = loop.call_later(max(target - now, 0.01), self._on_timer)

    # -- writing -----------------------------------------------------------

    async def wait_unpaused(self) -> None:
        assert self.server._loop is not None
        while self.paused:
            self._unpause_waiter = self.server._loop.create_future()
            try:
                await self._unpause_waiter
            finally:
                self._unpause_waiter = None

    def close(self) -> None:
        if self.transport is not None and not self.transport.is_closing():
            self.transport.close()


class AsyncWireServer(WireServerCore):
    """Single-threaded event-loop HTTP server, API-compatible with
    :class:`~repro.httpwire.connbase.ThreadedWireServer`."""

    def __init__(
        self,
        address: str = "127.0.0.1",
        port: int = 0,
        *,
        backlog: int = 128,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_connections: int = 20000,
        offload_handler: bool = False,
        executor_workers: int = 32,
        lag_interval: float = 0.25,
        name: str = "wire-async",
    ):
        if io_timeout <= 0:
            raise ValueError("io_timeout must be positive")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive when set")
        if max_connections < 1:
            raise ValueError("max_connections must be >= 1")
        self.io_timeout = io_timeout
        self.idle_timeout = idle_timeout
        self.max_connections = max_connections
        self.offload_handler = offload_handler
        self.lag_interval = lag_interval
        self.name = name
        self.wire_stats = WireServerStats()
        self._stats_lock = make_lock("AsyncWireServer._stats_lock")
        # Bind synchronously so .address/.port are known at construction,
        # exactly like the threaded frontend.
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((address, port))
        self._listener.listen(backlog)
        self._listener.setblocking(False)
        self.address, self.port = self._listener.getsockname()
        self._running = False
        self._draining = False
        # Shared receive buffer for every connection's recv_into (see
        # _WireConnection.get_buffer); 64 KiB keeps it under the
        # allocator's mmap threshold.
        self._recv_view = memoryview(bytearray(64 * 1024))
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.Server | None = None
        self._shutdown: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._executor: concurrent.futures.ThreadPoolExecutor | None = None
        if offload_handler:
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=executor_workers, thread_name_prefix=f"{name}:handler"
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> tuple[str, int]:
        """Start the loop thread and begin serving; returns (address, port)."""
        self._running = True
        self._started.clear()
        self._thread = threading.Thread(
            target=self._run_loop, name=f"{self.name}:loop", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10.0):
            raise RuntimeError(f"{self.name}: event loop failed to start")
        return self.address, self.port

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._amain())
        finally:
            # Unblock start() even if _amain failed before serving.
            self._started.set()
            self._loop = None

    async def _amain(self) -> None:
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._shutdown = asyncio.Event()
        self._server = await loop.create_server(
            lambda: _WireConnection(self), sock=self._listener
        )
        lag_task = asyncio.create_task(self._lag_monitor())
        self._started.set()
        try:
            await self._shutdown.wait()
        finally:
            lag_task.cancel()
            self._server.close()
            for task in list(self._conn_tasks):
                task.cancel()
            await asyncio.gather(*self._conn_tasks, lag_task, return_exceptions=True)
            try:
                await self._server.wait_closed()
            except (OSError, RuntimeError):  # pragma: no cover - teardown race
                pass

    def stop(self, drain_timeout: float = 5.0) -> None:
        """Stop serving, cancel live connections, join the loop thread."""
        self._running = False
        loop = self._loop
        if loop is not None:
            try:
                loop.call_soon_threadsafe(self._signal_shutdown)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout=drain_timeout + 5.0)
            self._thread = None
        else:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=False)

    def _signal_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    def drain(self) -> None:
        """Refuse new connections; let in-flight requests finish.

        Same lame-duck semantics as the threaded frontend: the listener
        closes (new connects are refused), every connection finishes the
        request it is currently answering — including the drain POST
        itself — and closes after responding.  Safe to call from any
        thread, including a handler-offload executor thread; idempotent.
        """
        self._draining = True
        self._running = False
        loop = self._loop
        if loop is not None:
            try:
                current = asyncio.get_running_loop()
            except RuntimeError:
                current = None
            if current is loop:
                # Inline handler on the loop thread: close before the
                # drain response goes out, matching the threaded stack's
                # ordering (listener is dead by the time the client reads
                # the drain acknowledgement).
                self._close_server()
                return
            try:
                # Executor/foreign thread: the callback is queued ahead of
                # the handler's resumption, so the listener still closes
                # before the drain response is written.
                loop.call_soon_threadsafe(self._close_server)
                return
            except RuntimeError:
                pass  # loop already closed; fall through to raw close
        try:
            self._listener.close()
        except OSError:
            pass

    def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def active_workers(self) -> int:
        """Connections currently being served (live serve tasks)."""
        return len(self._conn_tasks)

    # -- event-loop internals ----------------------------------------------

    async def _lag_monitor(self) -> None:
        """Heartbeat: publish how late a short sleep fires on this loop."""
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(self.lag_interval)
            _TEL_LOOP_LAG.set(max(0.0, loop.time() - before - self.lag_interval))

    async def _serve_guard(self, conn: _WireConnection) -> None:
        try:
            await self._serve_connection(conn)
        except asyncio.CancelledError:
            pass  # hard stop() — connection dropped mid-flight by design
        finally:
            conn.close()

    async def _serve_connection(self, conn: _WireConnection) -> None:
        """Per-connection request loop, mirroring the threaded serve loop.

        The control flow — error-to-counter mapping, keep-alive rules,
        drain lame-duck, idle reaping — matches
        ``ThreadedWireServer._serve_connection`` branch for branch.
        """
        reader = conn.reader
        assert reader is not None
        send_buffer = bytearray()
        while self._running:
            # conn.served (not a loop-local) so requests dispatched by
            # the protocol's inline fast path move this connection onto
            # the idle clock too.
            timeout = self.io_timeout
            if conn.served and self.idle_timeout is not None:
                timeout = min(self.io_timeout, self.idle_timeout)
            conn.begin_read(timeout)
            try:
                request = await read_request_async(reader)
            except EOFError:
                return
            except TimeoutError:
                if conn.served and self.idle_timeout is not None:
                    self._count("idle_reaped")
                else:
                    self._count("idle_timeouts")
                return
            except HttpParseError:
                self._count("bad_requests")
                await self._send(conn, HttpResponse(status=400), send_buffer)
                return
            except (ConnectionError, OSError):
                self._count("connection_errors")
                return
            finally:
                conn.end_read()
            response = await self._respond_async(request)
            if not await self._send(conn, response, send_buffer):
                return
            self._count("requests_served")
            conn.served += 1
            if self._draining:
                return  # lame duck: current request answered, now close
            if (request.headers.get("Connection") or "").lower() == "close":
                return

    async def _respond_async(self, request) -> HttpResponse:
        """Run the shared sync dispatch inline or on the handler pool.

        Inline keeps the fast lock-free origin path on the loop thread
        (one context switch fewer); offload moves blocking handlers —
        upstream socket exchanges, journal fsyncs — onto a bounded
        executor so the loop never stalls.  Each ``_respond`` call runs
        start-to-finish on one thread either way, so the tracer's
        thread-local span context stays coherent.
        """
        if self._executor is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(self._executor, self._respond, request)
        return self._respond(request)

    async def _send(
        self,
        conn: _WireConnection,
        response: HttpResponse,
        buffer: bytearray,
    ) -> bool:
        """Serialize and send; False on a dead or wedged client."""
        del buffer[:]
        response.serialize_into(buffer)
        transport = conn.transport
        if transport is None or transport.is_closing():
            self._count("connection_errors")
            return False
        try:
            transport.write(bytes(buffer))
            if conn.paused:
                # Transport buffer is over the high-water mark: only now
                # pay for a timer to bound the flush.
                async with asyncio.timeout(self.io_timeout):
                    await conn.wait_unpaused()
            if transport.is_closing():
                self._count("connection_errors")
                return False
            return True
        except (TimeoutError, ConnectionError, OSError):
            self._count("connection_errors")
            return False
