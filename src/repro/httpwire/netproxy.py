"""A real-socket caching proxy speaking the piggyback extension.

Clients send ordinary absolute-URI proxy requests; the proxy serves them
from its cache when fresh, otherwise forwards to the origin with a
``Piggy-filter`` header, absorbs the ``P-volume`` trailer of the answer
(coherency, prefetch, RPV bookkeeping — all via
:class:`~repro.proxy.proxy.PiggybackProxy`), and returns the body to the
client.  Bodies are kept in a side table because the policy-level cache
tracks metadata only.
"""

from __future__ import annotations

import socket
import threading
import time
from collections.abc import Callable

from ..core.protocol import OK, ProxyRequest, ServerResponse
from ..httpmodel.dates import format_http_date, parse_http_date
from ..httpmodel.headers import Headers
from ..httpmodel.messages import HttpParseError, HttpRequest, HttpResponse, read_request
from ..httpmodel.piggy_codec import (
    P_VOLUME_HEADER,
    PIGGY_FILTER_HEADER,
    PIGGY_REPORT_HEADER,
    PiggyCodecError,
    format_piggy_filter,
    format_piggy_report,
    parse_p_volume,
)
from ..proxy.proxy import ClientOutcome, PiggybackProxy, ProxyConfig
from .netclient import HttpConnection

__all__ = ["HttpUpstream", "PiggybackHttpProxy"]


class HttpUpstream:
    """Adapter: ProxyRequest -> real HTTP exchange -> ServerResponse.

    Resolves each URL's host through *origins* (host -> (address, port)),
    reuses persistent connections per origin, and records response bodies
    in :attr:`bodies` so the wire proxy can serve them to clients.
    """

    def __init__(self, origins: dict[str, tuple[str, int]], clock: Callable[[], float] | None = None):
        self.origins = origins
        self.clock = clock or time.time
        self.bodies: dict[str, bytes] = {}
        self._connections: dict[str, HttpConnection] = {}
        self._lock = threading.Lock()

    def close(self) -> None:
        with self._lock:
            for connection in self._connections.values():
                connection.close()
            self._connections.clear()

    def _connection_for(self, host: str) -> HttpConnection:
        origin = self.origins.get(host)
        if origin is None:
            raise KeyError(f"no origin registered for host {host!r}")
        with self._lock:
            connection = self._connections.get(host)
            if connection is None:
                connection = HttpConnection(*origin)
                self._connections[host] = connection
            return connection

    def __call__(self, request: ProxyRequest) -> ServerResponse:
        host, _, path = request.url.partition("/")
        http_request = HttpRequest(method="GET", target="/" + path)
        http_request.headers.set("Host", host)
        if request.if_modified_since is not None:
            http_request.headers.set(
                "If-Modified-Since", format_http_date(request.if_modified_since)
            )
        filter_value = format_piggy_filter(request.piggyback_filter)
        if filter_value is not None:
            http_request.headers.set("TE", "chunked")
            http_request.headers.set(PIGGY_FILTER_HEADER, filter_value)
        report_value = format_piggy_report(request.cache_hit_report)
        if report_value is not None:
            http_request.headers.set(PIGGY_REPORT_HEADER, report_value)
        http_request.headers.set("X-Proxy-Name", request.source)

        http_response = self._connection_for(host).request(http_request)

        last_modified = None
        lm_header = http_response.headers.get("Last-Modified")
        if lm_header is not None:
            try:
                last_modified = parse_http_date(lm_header)
            except ValueError:
                last_modified = None
        piggyback = None
        p_volume = http_response.trailers.get(P_VOLUME_HEADER)
        if p_volume is not None:
            try:
                piggyback = parse_p_volume(p_volume)
            except PiggyCodecError:
                piggyback = None  # a broken trailer must never break the fetch
        if http_response.status == OK:
            self.bodies[request.url] = http_response.body
        return ServerResponse(
            url=request.url,
            status=http_response.status,
            timestamp=self.clock(),
            last_modified=last_modified,
            size=len(http_response.body),
            piggyback=piggyback,
        )


class PiggybackHttpProxy:
    """Threaded wire frontend for one :class:`PiggybackProxy`."""

    def __init__(
        self,
        origins: dict[str, tuple[str, int]],
        config: ProxyConfig = ProxyConfig(name="wire-proxy"),
        address: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
    ):
        self.clock = clock or time.time
        self.upstream = HttpUpstream(origins, clock=self.clock)
        self.engine = PiggybackProxy(self.upstream, config=config)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((address, port))
        self._listener.listen(32)
        self.address, self.port = self._listener.getsockname()
        self._accept_thread: threading.Thread | None = None
        self._running = False
        self._engine_lock = threading.Lock()

    def start(self) -> tuple[str, int]:
        self._running = True
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="piggyback-proxy", daemon=True
        )
        self._accept_thread.start()
        return self.address, self.port

    def stop(self) -> None:
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        self.upstream.close()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "PiggybackHttpProxy":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            ).start()

    def _serve_connection(self, client: socket.socket) -> None:
        reader = client.makefile("rb")
        try:
            while True:
                try:
                    request = read_request(reader)
                except EOFError:
                    return
                except HttpParseError:
                    client.sendall(HttpResponse(status=400).serialize())
                    return
                client.sendall(self._respond(request).serialize())
                if (request.headers.get("Connection") or "").lower() == "close":
                    return
        except (ConnectionError, BrokenPipeError, OSError):
            return
        finally:
            try:
                reader.close()
                client.close()
            except OSError:
                pass

    def _canonical_url(self, request: HttpRequest) -> str | None:
        """Canonical host/path from an absolute-URI proxy request target."""
        target = request.target
        if target.lower().startswith("http://"):
            target = target[len("http://"):]
        elif target.startswith("/"):
            host = request.headers.get("Host")
            if host is None:
                return None
            target = host + target
        return target.lower().rstrip("/") if "/" in target else target.lower()

    def _respond(self, request: HttpRequest) -> HttpResponse:
        if request.method.upper() != "GET":
            return HttpResponse(status=501)
        url = self._canonical_url(request)
        if url is None:
            return HttpResponse(status=400)
        with self._engine_lock:
            result = self.engine.handle_client_get(url, self.clock())
        if result.outcome is ClientOutcome.FAILED:
            return HttpResponse(status=404)
        body = self.upstream.bodies.get(url, b"")
        headers = Headers()
        headers.set("Via", "1.1 repro-piggyback-proxy")
        headers.set("X-Cache", result.outcome.value)
        entry = self.engine.cache.entry(url)
        if entry is not None:
            headers.set("Last-Modified", format_http_date(entry.last_modified))
        return HttpResponse(status=200, headers=headers, body=body)
