"""A real-socket caching proxy speaking the piggyback extension.

Clients send ordinary absolute-URI proxy requests; the proxy serves them
from its cache when fresh, otherwise forwards to the origin with a
``Piggy-filter`` header, absorbs the ``P-volume`` trailer of the answer
(coherency, prefetch, RPV bookkeeping — all via
:class:`~repro.proxy.proxy.PiggybackProxy`), and returns the body to the
client.  Bodies are kept in a side table because the policy-level cache
tracks metadata only.

Concurrency and degradation model:

* :class:`HttpUpstream` keeps a *pool* of persistent connections per
  origin — parallel cache misses fetch in parallel instead of
  interleaving writes on one shared socket;
* every upstream exchange is bounded by a timeout and retried with
  exponential backoff (:class:`UpstreamPolicy`); a persistently failing
  origin yields a synthetic ``502`` response instead of an exception, so
  the proxy never wedges and never caches a broken fetch;
* when the origin fails but a previously fetched body exists, the proxy
  serves it stale (``X-Cache: stale`` plus a ``Warning`` header) — the
  client always receives a well-formed HTTP response.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from ..devtools.lockorder import make_lock
from ..devtools.racecheck import share
from ..core.protocol import NOT_FOUND, OK, ProxyRequest, ServerResponse
from ..httpmodel.dates import format_http_date, parse_http_date
from ..httpmodel.headers import Headers
from ..httpmodel.messages import HttpParseError, HttpRequest, HttpResponse
from ..httpmodel.piggy_codec import (
    P_VOLUME_HEADER,
    PIGGY_FILTER_HEADER,
    PIGGY_REPORT_HEADER,
    PiggyCodecError,
    format_piggy_filter,
    format_piggy_report,
    parse_p_volume,
)
from ..proxy.proxy import ClientOutcome, PiggybackProxy, ProxyConfig
from ..telemetry import REGISTRY, TRACE_HEADER, TRACER
from .connbase import ThreadedWireServer
from .netclient import HttpConnection

__all__ = [
    "UpstreamPolicy",
    "UpstreamStats",
    "HttpUpstream",
    "PiggybackProxyApp",
    "PiggybackHttpProxy",
]

BAD_GATEWAY = 502

_RETRYABLE = (EOFError, HttpParseError, ConnectionError, BrokenPipeError, OSError)

_TEL_UPSTREAM_EXCHANGES = REGISTRY.counter(
    "proxy_upstream_exchanges_total", "origin fetches attempted by the wire proxy"
)
_TEL_UPSTREAM_RETRIES = REGISTRY.counter(
    "proxy_upstream_retries_total", "origin fetch attempts beyond the first"
)
_TEL_UPSTREAM_FAILURES = REGISTRY.counter(
    "proxy_upstream_failures_total", "origin fetches degraded to a synthetic 502"
)
_TEL_UPSTREAM_SECONDS = REGISTRY.histogram(
    "proxy_upstream_fetch_seconds", "origin fetch latency including retries"
)
_TEL_STALE_RESPONSES = REGISTRY.counter(
    "proxy_stale_responses_total", "client requests answered from a stale body"
)
_TEL_POOL_REUSES = REGISTRY.counter(
    "proxy_upstream_pool_reuses_total",
    "origin exchanges served on a pooled persistent connection",
)
_TEL_POOL_CONNECTS = REGISTRY.counter(
    "proxy_upstream_pool_connects_total",
    "fresh origin connections opened because no pooled one was usable",
)
_TEL_POOL_RETIRED = REGISTRY.counter(
    "proxy_upstream_pool_retired_total",
    "pooled connections dropped as idle-expired or broken on reuse",
)


@dataclass(frozen=True, slots=True)
class UpstreamPolicy:
    """Timeout/retry knobs for origin exchanges."""

    timeout: float = 10.0
    max_attempts: int = 3
    backoff: float = 0.05
    backoff_factor: float = 2.0
    pool_size: int = 16
    idle_timeout: float = 30.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff < 0:
            raise ValueError("backoff must be non-negative")
        if self.pool_size < 1:
            raise ValueError("pool_size must be >= 1")
        if self.idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")


@dataclass(slots=True)
class UpstreamStats:
    """Counters for the proxy's origin-facing side."""

    exchanges: int = 0
    retries: int = 0
    failures: int = 0
    pool_reuses: int = 0
    pool_connects: int = 0
    pool_retired: int = 0

    @property
    def pool_reuse_rate(self) -> float:
        """Fraction of connection checkouts satisfied by the pool."""
        checkouts = self.pool_reuses + self.pool_connects
        if checkouts == 0:
            return 0.0
        return self.pool_reuses / checkouts


class HttpUpstream:
    """Adapter: ProxyRequest -> real HTTP exchange -> ServerResponse.

    Resolves each URL's host through *origins* (host -> (address, port)),
    draws persistent connections from a per-origin pool, and records
    response bodies in a side table so the wire proxy can serve them to
    clients (:meth:`body_for`).  Thread-safe.
    """

    def __init__(
        self,
        origins: dict[str, tuple[str, int]],
        clock: Callable[[], float] | None = None,
        policy: UpstreamPolicy = UpstreamPolicy(),
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.origins = origins
        self.clock = clock or time.time
        self.policy = policy
        self.stats = UpstreamStats()
        self._sleep = sleep
        self._bodies: dict[str, bytes] = share({}, "HttpUpstream._bodies")
        # host -> [(connection, idle_since)] with the freshest at the tail
        # (LIFO reuse); idle_since is a monotonic clock reading.
        self._pools: dict[str, list[tuple[HttpConnection, float]]] = share(
            {}, "HttpUpstream._pools"
        )
        self._lock = make_lock("HttpUpstream._lock")

    # Body side table ----------------------------------------------------

    @property
    def bodies(self) -> dict[str, bytes]:
        return self._bodies

    def body_for(self, url: str) -> bytes | None:
        with self._lock:
            return self._bodies.get(url)

    def _remember_body(self, url: str, body: bytes) -> None:
        with self._lock:
            self._bodies[url] = body

    # Connection pool ----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            pooled = [entry[0] for pool in self._pools.values() for entry in pool]
            self._pools.clear()
        for connection in pooled:
            connection.close()

    def _note(self, field: str, counter, amount: int = 1) -> None:
        """Bump one UpstreamStats field plus its global telemetry twin."""
        with self._lock:
            setattr(self.stats, field, getattr(self.stats, field) + amount)
        counter.inc(amount)

    def _connect(self, host: str) -> HttpConnection:
        origin = self.origins.get(host)
        if origin is None:
            raise KeyError(f"no origin registered for host {host!r}")
        self._note("pool_connects", _TEL_POOL_CONNECTS)
        return HttpConnection(*origin, timeout=self.policy.timeout)

    def _checkout(self, host: str) -> tuple[HttpConnection, bool]:
        """A usable connection for *host* plus whether it was pooled.

        Idle-expired pool entries encountered on the way are retired;
        their sockets are closed outside the lock.
        """
        if host not in self.origins:
            raise KeyError(f"no origin registered for host {host!r}")
        now = time.monotonic()
        expired: list[HttpConnection] = []
        connection: HttpConnection | None = None
        with self._lock:
            pool = self._pools.get(host)
            while pool:
                candidate, idle_since = pool.pop()
                if now - idle_since > self.policy.idle_timeout:
                    expired.append(candidate)
                    continue
                connection = candidate
                break
        for old in expired:
            old.close()
        if expired:
            self._note("pool_retired", _TEL_POOL_RETIRED, len(expired))
        if connection is not None:
            self._note("pool_reuses", _TEL_POOL_REUSES)
            return connection, True
        return self._connect(host), False

    def _checkin(self, host: str, connection: HttpConnection) -> None:
        now = time.monotonic()
        expired: list[HttpConnection] = []
        overflow: HttpConnection | None = None
        with self._lock:
            pool = self._pools.setdefault(host, [])
            # The oldest entries sit at the front; age them out so a
            # bursty load does not park dead sockets forever.
            while pool and now - pool[0][1] > self.policy.idle_timeout:
                expired.append(pool.pop(0)[0])
            if len(pool) < self.policy.pool_size:
                pool.append((connection, now))
            else:
                overflow = connection
        for old in expired:
            old.close()
        if expired:
            self._note("pool_retired", _TEL_POOL_RETIRED, len(expired))
        if overflow is not None:
            overflow.close()

    # Exchange -----------------------------------------------------------

    def _build_request(self, request: ProxyRequest, host: str, path: str) -> HttpRequest:
        http_request = HttpRequest(method="GET", target="/" + path)
        http_request.headers.set("Host", host)
        if request.if_modified_since is not None:
            http_request.headers.set(
                "If-Modified-Since", format_http_date(request.if_modified_since)
            )
        filter_value = format_piggy_filter(request.piggyback_filter)
        if filter_value is not None:
            http_request.headers.set("TE", "chunked")
            http_request.headers.set(PIGGY_FILTER_HEADER, filter_value)
        report_value = format_piggy_report(request.cache_hit_report)
        if report_value is not None:
            http_request.headers.set(PIGGY_REPORT_HEADER, report_value)
        http_request.headers.set("X-Proxy-Name", request.source)
        trace_header = TRACER.current_header()
        if trace_header is not None:
            http_request.headers.set(TRACE_HEADER, trace_header)
        return http_request

    def _attempt(self, host: str, http_request: HttpRequest) -> HttpResponse:
        """One logical fetch attempt against *host*.

        A *reused* pooled connection that fails was most likely closed by
        the origin while idle — keep-alive housekeeping, not an origin
        failure — so it is retired and the request retried immediately on
        a fresh connection without consuming one of the policy's retry
        attempts.  Only a failure on a fresh connection propagates to the
        caller's retry/backoff loop.
        """
        connection, reused = self._checkout(host)
        try:
            response = connection.request_once(http_request)
        except _RETRYABLE:
            connection.close()
            if not reused:
                raise
            self._note("pool_retired", _TEL_POOL_RETIRED)
            # Still an attempt beyond the first for observability, even
            # though it does not count against max_attempts.
            self._note("retries", _TEL_UPSTREAM_RETRIES)
            connection = self._connect(host)
            try:
                response = connection.request_once(http_request)
            except _RETRYABLE:
                connection.close()
                raise
        self._checkin(host, connection)
        return response

    def __call__(self, request: ProxyRequest) -> ServerResponse:
        with _TEL_UPSTREAM_SECONDS.time(), TRACER.span("proxy.upstream_fetch") as span:
            span.tag("url", request.url)
            return self._exchange(request)

    def _exchange(self, request: ProxyRequest) -> ServerResponse:
        host, _, path = request.url.partition("/")
        http_request = self._build_request(request, host, path)
        with self._lock:
            self.stats.exchanges += 1
        _TEL_UPSTREAM_EXCHANGES.inc()

        http_response = None
        delay = self.policy.backoff
        for attempt in range(self.policy.max_attempts):
            if attempt:
                with self._lock:
                    self.stats.retries += 1
                _TEL_UPSTREAM_RETRIES.inc()
                if delay > 0:
                    self._sleep(delay)
                delay *= self.policy.backoff_factor
            try:
                http_response = self._attempt(host, http_request)
            except KeyError:
                break  # unroutable host: no point retrying
            except _RETRYABLE:
                continue
            break
        if http_response is None:
            # Origin unreachable/garbled after all attempts: degrade to a
            # synthetic 502 the engine will treat as FAILED — never cached.
            with self._lock:
                self.stats.failures += 1
            _TEL_UPSTREAM_FAILURES.inc()
            return ServerResponse(
                url=request.url, status=BAD_GATEWAY, timestamp=self.clock()
            )

        last_modified = None
        lm_header = http_response.headers.get("Last-Modified")
        if lm_header is not None:
            try:
                last_modified = parse_http_date(lm_header)
            except ValueError:
                last_modified = None
        piggyback = None
        p_volume = http_response.trailers.get(P_VOLUME_HEADER)
        if p_volume is not None:
            try:
                piggyback = parse_p_volume(p_volume)
            except PiggyCodecError:
                piggyback = None  # a broken trailer must never break the fetch
        if http_response.status == OK:
            self._remember_body(request.url, http_response.body)
        return ServerResponse(
            url=request.url,
            status=http_response.status,
            timestamp=self.clock(),
            last_modified=last_modified,
            size=len(http_response.body),
            piggyback=piggyback,
        )


class PiggybackProxyApp:
    """Backend-neutral proxy logic: one :class:`PiggybackProxy` on HTTP.

    Shared by the threaded frontend below and the asyncio frontend in
    :mod:`repro.httpwire.aio` so both answer byte-identical responses.
    Note the upstream exchange is *blocking* socket I/O — the asyncio
    frontend runs :meth:`handle_request` on an executor thread.
    """

    def _init_proxy_app(
        self,
        origins: dict[str, tuple[str, int]],
        config: ProxyConfig,
        clock: Callable[[], float] | None,
        upstream_policy: UpstreamPolicy,
        serve_stale_on_error: bool,
    ) -> None:
        self.clock = clock or time.time
        self.upstream = HttpUpstream(origins, clock=self.clock, policy=upstream_policy)
        self.engine = PiggybackProxy(self.upstream, config=config)
        self.serve_stale_on_error = serve_stale_on_error
        self.stale_responses = 0
        self._stale_lock = make_lock("PiggybackHttpProxy._stale_lock")

    def _canonical_url(self, request: HttpRequest) -> str | None:
        """Canonical host/path from an absolute-URI proxy request target."""
        target = request.target
        if target.lower().startswith("http://"):
            target = target[len("http://"):]
        elif target.startswith("/"):
            host = request.headers.get("Host")
            if host is None:
                return None
            target = host + target
        return target.lower().rstrip("/") if "/" in target else target.lower()

    def handle_request(self, request: HttpRequest) -> HttpResponse:
        if request.method.upper() != "GET":
            return HttpResponse(status=501)
        url = self._canonical_url(request)
        if url is None:
            return HttpResponse(status=400)
        # The engine serializes its own metadata; the upstream exchange and
        # the body send below run without any proxy-wide lock.
        result = self.engine.handle_client_get(url, self.clock())
        if result.outcome is ClientOutcome.FAILED:
            return self._degraded_response(url, result.upstream_status)
        body = self.upstream.body_for(url) or b""
        headers = Headers()
        headers.set("Via", "1.1 repro-piggyback-proxy")
        headers.set("X-Cache", result.outcome.value)
        entry = self.engine.cache.entry(url)
        if entry is not None:
            headers.set("Last-Modified", format_http_date(entry.last_modified))
        return HttpResponse(status=200, headers=headers, body=body)

    def _degraded_response(self, url: str, upstream_status: int) -> HttpResponse:
        """Degrade gracefully: pass a real 404 through, serve stale when a
        previously fetched copy exists, otherwise answer 502."""
        if upstream_status == NOT_FOUND:
            return HttpResponse(status=404)
        stale = self.upstream.body_for(url) if self.serve_stale_on_error else None
        if stale is not None:
            with self._stale_lock:
                self.stale_responses += 1
            _TEL_STALE_RESPONSES.inc()
            headers = Headers()
            headers.set("Via", "1.1 repro-piggyback-proxy")
            headers.set("X-Cache", "stale")
            headers.set("Warning", '111 repro-piggyback-proxy "Revalidation Failed"')
            return HttpResponse(status=200, headers=headers, body=stale)
        return HttpResponse(status=BAD_GATEWAY)


class PiggybackHttpProxy(PiggybackProxyApp, ThreadedWireServer):
    """Threaded wire frontend for one :class:`PiggybackProxy`."""

    def __init__(
        self,
        origins: dict[str, tuple[str, int]],
        config: ProxyConfig = ProxyConfig(name="wire-proxy"),
        address: str = "127.0.0.1",
        port: int = 0,
        clock: Callable[[], float] | None = None,
        upstream_policy: UpstreamPolicy = UpstreamPolicy(),
        serve_stale_on_error: bool = True,
        io_timeout: float = 30.0,
        idle_timeout: float | None = None,
        max_workers: int = 64,
    ):
        ThreadedWireServer.__init__(
            self,
            address,
            port,
            io_timeout=io_timeout,
            idle_timeout=idle_timeout,
            max_workers=max_workers,
            name="piggyback-proxy",
        )
        self._init_proxy_app(
            origins, config, clock, upstream_policy, serve_stale_on_error
        )

    def stop(self, drain_timeout: float = 5.0) -> None:
        super().stop(drain_timeout)
        self.upstream.close()
